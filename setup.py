"""Legacy setuptools entry point (keeps editable installs working offline)."""

from setuptools import setup

setup()
