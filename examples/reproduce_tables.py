#!/usr/bin/env python3
"""Regenerate the paper's evaluation artefacts: Table I, Table II and Fig. 3.

By default the script uses the reduced laptop-scale configuration (27-tile
platform, six Rodinia applications, 3/4/5-objective scenarios, an evaluation
budget per run) and prints the same rows the paper reports.  ``--paper-scale``
switches to the full 64-tile / 1000-generation configuration of Section V
(this takes many hours).

Run with::

    python examples/reproduce_tables.py                  # everything, reduced scale
    python examples/reproduce_tables.py --table 1        # only Table I
    python examples/reproduce_tables.py --figure 3       # only Fig. 3
    python examples/reproduce_tables.py --apps BFS SRAD --objectives 3 5 --evaluations 800
"""

from __future__ import annotations

import argparse

from repro.core.config import MOELAConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.tables import (
    build_figure3,
    build_table1,
    build_table2,
    format_figure3,
    format_table,
    run_all_comparisons,
)
from repro.noc.platform import PlatformConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table", type=int, choices=(1, 2), action="append", dest="tables",
                        help="regenerate only the given table (repeatable)")
    parser.add_argument("--figure", type=int, choices=(3,), action="append", dest="figures",
                        help="regenerate only the given figure (repeatable)")
    parser.add_argument("--apps", nargs="+", default=None, help="applications (default: the paper's six)")
    parser.add_argument("--objectives", nargs="+", type=int, default=None, help="objective counts (default 3 4 5)")
    parser.add_argument("--evaluations", type=int, default=1200, help="evaluation budget per run")
    parser.add_argument("--population", type=int, default=16)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the full 4x4x4 platform and the paper's parameters (very slow)")
    return parser.parse_args()


def build_experiment(args: argparse.Namespace) -> ExperimentConfig:
    if args.paper_scale:
        return ExperimentConfig.paper_scale()
    base = ExperimentConfig.reduced()
    return ExperimentConfig(
        platform=PlatformConfig.small_3x3x3(),
        applications=tuple(a.upper() for a in args.apps) if args.apps else base.applications,
        objective_counts=tuple(args.objectives) if args.objectives else base.objective_counts,
        population_size=args.population,
        max_evaluations=args.evaluations,
        moela=MOELAConfig.reduced(),
    )


def main() -> None:
    args = parse_args()
    tables = set(args.tables or ([] if args.figures else [1, 2]))
    figures = set(args.figures or ([] if args.tables else [3]))
    if not args.tables and not args.figures:
        tables, figures = {1, 2}, {3}

    experiment = build_experiment(args)
    total_cells = len(experiment.applications) * len(experiment.objective_counts)
    print(
        f"running MOELA / MOEA/D / MOOS on {len(experiment.applications)} applications x "
        f"{len(experiment.objective_counts)} scenarios ({total_cells} cells, "
        f"{experiment.max_evaluations} evaluations per run) on platform {experiment.platform.name}"
    )
    runs = run_all_comparisons(experiment, progress=lambda msg: print(f"  {msg}", flush=True))

    if 1 in tables:
        print("\n" + format_table(build_table1(experiment, runs), value_format="{:8.2f}"))
    if 2 in tables:
        print("\n" + format_table(build_table2(experiment, runs), value_format="{:8.1f}"))
    if 3 in figures:
        print("\n" + format_figure3(build_figure3(experiment, runs)))

    print(
        "\nNote: absolute values differ from the paper (its campaigns run for up to 48 hours on a "
        "64-tile platform with gem5-GPU-derived traffic); see EXPERIMENTS.md for the paper-vs-"
        "measured discussion."
    )


if __name__ == "__main__":
    main()
