#!/usr/bin/env python3
"""Regenerate the paper's evaluation artefacts: Table I, Table II and Fig. 3.

The runs are declared through the :class:`repro.Study` façade (MOELA, MOEA/D
and MOOS on every requested application x scenario cell with matched budgets)
and the resulting run map feeds the same table/figure builders the paper
harness uses.  By default the script uses the reduced laptop-scale
configuration and prints the same rows the paper reports; ``--paper-scale``
switches to the full 64-tile configuration of Section V (many hours).

Run with::

    python examples/reproduce_tables.py                  # everything, reduced scale
    python examples/reproduce_tables.py --table 1        # only Table I
    python examples/reproduce_tables.py --figure 3       # only Fig. 3
    python examples/reproduce_tables.py --apps BFS SRAD --objectives 3 5 --evaluations 800
"""

from __future__ import annotations

import argparse

from repro import Study
from repro.experiments.tables import build_figure3, format_figure3, format_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table", type=int, choices=(1, 2), action="append", dest="tables",
                        help="regenerate only the given table (repeatable)")
    parser.add_argument("--figure", type=int, choices=(3,), action="append", dest="figures",
                        help="regenerate only the given figure (repeatable)")
    parser.add_argument("--apps", nargs="+", default=None, help="applications (default: the paper's six)")
    parser.add_argument("--objectives", nargs="+", type=int, default=None, help="objective counts (default 3 4 5)")
    parser.add_argument("--evaluations", type=int, default=1200, help="evaluation budget per run")
    parser.add_argument("--population", type=int, default=16)
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the full 4x4x4 platform and the paper's parameters (very slow)")
    return parser.parse_args()


def build_study(args: argparse.Namespace) -> Study:
    study = Study(preset="paper" if args.paper_scale else "reduced")
    study.algorithms("MOELA", "MOEA/D", "MOOS")
    if not args.paper_scale:
        study.platform("small").evaluations(args.evaluations).population_size(args.population)
    if args.apps:
        study.apps(*args.apps)
    if args.objectives:
        study.objectives(*args.objectives)
    return study


def main() -> None:
    args = parse_args()
    tables = set(args.tables or ([] if args.figures else [1, 2]))
    figures = set(args.figures or ([] if args.tables else [3]))
    if not args.tables and not args.figures:
        tables, figures = {1, 2}, {3}

    study = build_study(args)
    experiment = study.experiment()
    total_cells = len(experiment.applications) * len(experiment.objective_counts)
    print(
        f"running MOELA / MOEA/D / MOOS on {len(experiment.applications)} applications x "
        f"{len(experiment.objective_counts)} scenarios ({total_cells} cells, "
        f"{experiment.max_evaluations} evaluations per run) on platform {experiment.platform.name}"
    )
    study.on_event(lambda event: event.kind == "run_started" and print(
        f"  running {event.algorithm} on {event.application} / {event.num_objectives}-obj", flush=True))
    outcome = study.run()

    if 1 in tables:
        print("\n" + format_table(outcome.table1(), value_format="{:8.2f}"))
    if 2 in tables:
        print("\n" + format_table(outcome.table2(), value_format="{:8.1f}"))
    if 3 in figures:
        print("\n" + format_figure3(build_figure3(experiment, outcome.runs)))

    print(
        "\nNote: absolute values differ from the paper (its campaigns run for up to 48 hours on a "
        "64-tile platform with gem5-GPU-derived traffic); see EXPERIMENTS.md for the paper-vs-"
        "measured discussion."
    )


if __name__ == "__main__":
    main()
