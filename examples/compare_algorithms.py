#!/usr/bin/env python3
"""Compare MOELA against MOEA/D, MOOS, MOO-STAGE and NSGA-II on one workload.

Runs every requested optimiser on the same (application, scenario) problem
instance with a matched evaluation budget through the :class:`repro.Study`
front door, then reports the final front, the Pareto hypervolume, and the
speed-up / PHV-gain metrics of Section V.C.  Algorithm names are resolved
through the optimizer registry, so any registered spelling (``moead``,
``MOEA/D``, ``nsga2`` ...) — including third-party registrations — works.

Run with::

    python examples/compare_algorithms.py --app GAU --objectives 5 --evaluations 1000
"""

from __future__ import annotations

import argparse

from repro import Study, default_registry
from repro.experiments.metrics import common_reference_point, phv_gain, speedup_factor


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="GAU", help="Rodinia application (BP/BFS/GAU/HOT/PF/SC/SRAD)")
    parser.add_argument("--objectives", type=int, default=5, choices=(3, 4, 5))
    parser.add_argument("--evaluations", type=int, default=1000, help="evaluation budget per algorithm")
    parser.add_argument("--population", type=int, default=16)
    parser.add_argument("--platform", default="small", help="tiny / small / paper (or a full name)")
    parser.add_argument("--algorithms", nargs="+", default=["MOELA", "MOEA/D", "MOOS"],
                        help=f"subset of {default_registry().names()}")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    study = (
        Study(platform=args.platform, objectives=args.objectives)
        .apps(args.app)
        .algorithms(*args.algorithms)
        .evaluations(args.evaluations)
        .population_size(args.population)
        .on_event(lambda event: event.kind == "run_started"
                  and print(f"running {event.algorithm:<10} on {event.application} ...", flush=True))
    )
    outcome = study.run()
    results = {algorithm: outcome.result(algorithm) for algorithm in outcome.algorithms}

    reference = common_reference_point(list(results.values()))
    print(f"\n{'algorithm':<12}{'evals':>8}{'seconds':>10}{'front':>8}{'PHV':>14}")
    for algorithm, result in results.items():
        print(
            f"{algorithm:<12}{result.evaluations:>8}{result.elapsed_seconds:>10.1f}"
            f"{len(result.final_front()):>8}{result.final_hypervolume(reference):>14.4g}"
        )

    if "MOELA" in results:
        moela = results["MOELA"]
        print("\nMOELA vs baselines (Section V.C metrics):")
        for algorithm, result in results.items():
            if algorithm == "MOELA":
                continue
            gain = 100.0 * phv_gain(moela, result, reference)
            speedup = speedup_factor(result, moela, reference)
            print(f"  vs {algorithm:<10} PHV gain {gain:7.1f} %   speed-up {speedup:6.2f}x")


if __name__ == "__main__":
    main()
