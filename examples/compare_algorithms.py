#!/usr/bin/env python3
"""Compare MOELA against MOEA/D, MOOS, MOO-STAGE and NSGA-II on one workload.

Runs every optimiser on the same (application, scenario) problem instance with
a matched evaluation budget, then reports the Pareto hypervolume over time,
the final front size, and the speed-up / PHV-gain metrics of Section V.C.

Run with::

    python examples/compare_algorithms.py --app GAU --objectives 5 --evaluations 1000
"""

from __future__ import annotations

import argparse

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import common_reference_point, phv_gain, speedup_factor
from repro.experiments.runner import ALGORITHMS, make_problem, run_algorithm
from repro.moo.termination import Budget
from repro.noc.platform import PlatformConfig

PLATFORMS = {
    "tiny": PlatformConfig.tiny_2x2x2,
    "small": PlatformConfig.small_3x3x3,
    "paper": PlatformConfig.paper_4x4x4,
}


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="GAU", help="Rodinia application (BP/BFS/GAU/HOT/PF/SC/SRAD)")
    parser.add_argument("--objectives", type=int, default=5, choices=(3, 4, 5))
    parser.add_argument("--evaluations", type=int, default=1000, help="evaluation budget per algorithm")
    parser.add_argument("--population", type=int, default=16)
    parser.add_argument("--platform", choices=sorted(PLATFORMS), default="small")
    parser.add_argument("--algorithms", nargs="+", default=["MOELA", "MOEA/D", "MOOS"],
                        help=f"subset of {ALGORITHMS}")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    experiment = ExperimentConfig(
        platform=PLATFORMS[args.platform](),
        applications=(args.app.upper(),),
        objective_counts=(args.objectives,),
        population_size=args.population,
        max_evaluations=args.evaluations,
    )
    budget = Budget.evaluations(args.evaluations)

    results = {}
    for algorithm in args.algorithms:
        problem = make_problem(experiment, args.app, args.objectives)
        print(f"running {algorithm:<10} on {problem.name} ...", flush=True)
        results[algorithm] = run_algorithm(algorithm, problem, experiment, budget=budget)

    reference = common_reference_point(list(results.values()))
    print(f"\n{'algorithm':<12}{'evals':>8}{'seconds':>10}{'front':>8}{'PHV':>14}")
    for algorithm, result in results.items():
        print(
            f"{algorithm:<12}{result.evaluations:>8}{result.elapsed_seconds:>10.1f}"
            f"{len(result.final_front()):>8}{result.final_hypervolume(reference):>14.4g}"
        )

    if "MOELA" in results:
        moela = results["MOELA"]
        print("\nMOELA vs baselines (Section V.C metrics):")
        for algorithm, result in results.items():
            if algorithm == "MOELA":
                continue
            gain = 100.0 * phv_gain(moela, result, reference)
            speedup = speedup_factor(result, moela, reference)
            print(f"  vs {algorithm:<10} PHV gain {gain:7.1f} %   speed-up {speedup:6.2f}x")


if __name__ == "__main__":
    main()
