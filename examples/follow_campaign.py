#!/usr/bin/env python3
"""Non-blocking campaign execution: submit, poll progress, stream the log.

Demonstrates the async half of the campaign engine (CLI twin:
``python -m repro campaign --follow``):

* ``Study.submit()`` starts the sharded campaign on a background thread and
  returns a :class:`repro.CampaignExecution` handle immediately;
* while the grid runs — cells fanned out over a process pool — the caller is
  free to do other work, polling ``.progress()`` whenever convenient;
* every cell appends its events to the durable ``events.jsonl`` next to the
  manifest, so ``.events()`` streams per-iteration progress even from pool
  workers (callbacks alone cannot cross the process boundary);
* ``.wait()`` joins and returns the summary; ``Study.collect`` folds the
  shards into the usual :class:`~repro.study.study.StudyResult`;
* ``compact_campaign`` then rolls the finished shards into one indexed
  rollup file — tables read it transparently.

Run with ``PYTHONPATH=src python examples/follow_campaign.py``.
"""

from __future__ import annotations

import argparse
import tempfile

from repro import Study, compact_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", default=None,
                        help="campaign directory (default: a fresh temp dir)")
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool size for grid cells")
    args = parser.parse_args()
    output_dir = args.output_dir or tempfile.mkdtemp(prefix="repro-campaign-")

    study = (
        Study(preset="smoke")
        .apps("BFS", "BP")
        .algorithms("MOEA/D", "NSGA-II")
        .evaluations(60)
        .campaign(output_dir, max_workers=args.workers)
    )

    execution = study.submit()  # returns immediately; the grid runs behind it
    total = execution.progress()["cells"]
    print(f"submitted {total} cells to {output_dir}")
    print(f"durable event log: {output_dir}/events.jsonl\n")

    # Stream the durable log live: shard lifecycles and per-iteration events
    # from every pool worker, in append order.  The handle is single-consumer
    # (events()/progress()/wait() share one pump), so inside the loop we
    # derive progress from the yielded events instead of calling progress().
    done = 0
    for event in execution.events():
        if event.kind in ("shard_finished", "shard_skipped"):
            done += 1
        if event.kind in ("shard_started", "shard_finished", "campaign_finished"):
            print(f"  {event.describe()}   [progress: {done}/{total} cells]")

    summary = execution.wait()
    result = study.collect(summary)
    print(f"\nexecuted {len(summary.executed)} cells, skipped {len(summary.skipped)}")
    print(result.format_tables())

    rollup = compact_campaign(output_dir)
    print(f"\ncompacted {len(rollup.compacted)} shards into {rollup.rollup_path}")
    print("tables still render from the rollup: "
          f"python -m repro tables --output-dir {output_dir}")


if __name__ == "__main__":
    main()
