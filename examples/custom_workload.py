#!/usr/bin/env python3
"""Register and optimise a custom (non-Rodinia) application workload.

The paper's framework is application-driven: every objective is computed from
the communication-frequency matrix ``f_ij`` and per-PE power profile of the
target application.  This example shows how a user plugs in their own traffic
trace — here a synthetic "parameter-server" style machine-learning training
workload in which every GPU exchanges gradients with two hot LLC tiles — and
explores the design space for it.

Run with::

    python examples/custom_workload.py
"""

from __future__ import annotations

import numpy as np

from repro import MOELA, MOELAConfig, NocDesignProblem, PlatformConfig
from repro.moo.hypervolume import reference_point_from
from repro.moo.termination import Budget
from repro.workloads.registry import WorkloadRegistry
from repro.workloads.workload import Workload


def parameter_server_workload(config: PlatformConfig, seed: int) -> Workload:
    """Synthetic gradient-exchange workload: GPUs <-> two parameter-server LLCs."""
    rng = np.random.default_rng(seed)
    num = config.num_tiles
    traffic = np.zeros((num, num))

    servers = config.llc_ids[:2]
    for gpu in config.gpu_ids:
        for server in servers:
            push = 12.0 * rng.lognormal(sigma=0.2)
            traffic[gpu, server] += push          # gradient push
            traffic[server, gpu] += 0.8 * push    # model pull
    # CPUs orchestrate: light control traffic to every GPU and the servers.
    for cpu in config.cpu_ids:
        for gpu in config.gpu_ids:
            traffic[cpu, gpu] += 0.4
            traffic[gpu, cpu] += 0.2
        for server in servers:
            traffic[cpu, server] += 1.5
            traffic[server, cpu] += 3.0
    np.fill_diagonal(traffic, 0.0)

    power = np.where(
        [config.pe_type(pe).value == "GPU" for pe in range(num)], 2.2, 3.0
    ).astype(float)
    power[config.llc_ids] = 0.9
    return Workload(
        name="PARAM-SERVER",
        config=config,
        traffic=traffic,
        power=power,
        compute_cycles=1_400.0,
        metadata={"description": "synthetic data-parallel training phase"},
    )


def main() -> None:
    platform = PlatformConfig.small_3x3x3()

    registry = WorkloadRegistry()
    registry.register("PARAM-SERVER", parameter_server_workload)
    workload = registry.get("PARAM-SERVER", platform, seed=0)

    print(f"registered workload {workload.name}: {workload.total_traffic():.1f} flits/kcycle")
    print("traffic by class:")
    for klass, volume in sorted(workload.traffic_by_class().items()):
        if volume > 0:
            print(f"  {klass:<12} {volume:10.1f}")

    problem = NocDesignProblem(workload, scenario=4)
    result = MOELA(problem, MOELAConfig.reduced(seed=0), rng=0).run(Budget.evaluations(800))

    front = result.final_front()
    reference = reference_point_from(front)
    print(f"\nfound {len(front)} non-dominated designs "
          f"(hypervolume {result.final_hypervolume(reference):.4g}) "
          f"in {result.elapsed_seconds:.1f}s / {result.evaluations} evaluations")

    best_latency = front[:, 2].argmin()
    print("\ndesign with the lowest CPU-LLC latency:")
    for name, value in zip(problem.objective_names, front[best_latency]):
        print(f"  {name:<20} {value:.4g}")


if __name__ == "__main__":
    main()
