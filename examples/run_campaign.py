#!/usr/bin/env python3
"""Run a sharded (algorithm x application x scenario) comparison campaign.

The campaign engine fans the full grid out over a process pool, writes every
cell's result to its own JSON shard next to a manifest, and resumes a killed
campaign by running only the cells whose shard is missing.  This is the
one-command entry point to the paper's comparison grid; the defaults here are
laptop-scale, ``--paper`` switches to the full 4x4x4 platform (on which the
objective evaluator's own process-pool batch path auto-enables when the
campaign runs cells serially).

Run with::

    python examples/run_campaign.py --output-dir /tmp/campaign
    python examples/run_campaign.py --output-dir /tmp/campaign   # resumes / skips
    python examples/run_campaign.py --smoke --output-dir /tmp/campaign-smoke
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.runner import ALGORITHMS, campaign_status, load_campaign_results, run_campaign
from repro.experiments.tables import aggregate_campaign, format_table
from repro.moo.hypervolume import reference_point_from


def build_campaign(args: argparse.Namespace) -> CampaignConfig:
    if args.smoke:
        # Two algorithms on the tiny mesh-scale test platform: finishes in
        # seconds, exercises the full manifest/shard/resume path (the CI
        # smoke job runs exactly this).
        return replace(CampaignConfig.smoke(), max_workers=args.workers)
    experiment = ExperimentConfig.paper_scale() if args.paper else ExperimentConfig.reduced()
    return CampaignConfig(
        experiment=experiment,
        algorithms=tuple(args.algorithms) if args.algorithms else (),
        max_workers=args.workers,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", required=True, help="campaign directory (manifest + shards)")
    parser.add_argument("--workers", type=int, default=1, help="process-pool size for grid cells")
    parser.add_argument("--algorithms", nargs="*", help="subset of algorithms (default: all)")
    parser.add_argument("--paper", action="store_true", help="full paper-scale 4x4x4 campaign")
    parser.add_argument("--smoke", action="store_true", help="tiny 4-cell campaign for CI / demos")
    parser.add_argument(
        "--tables",
        action="store_true",
        help="after the campaign, fold the finished shards into the Table I/II "
        "builders (no cell is re-run)",
    )
    args = parser.parse_args()

    campaign = build_campaign(args)
    grid = (
        f"{len(tuple(campaign.algorithms) or ALGORITHMS)} "
        f"algorithms x {len(campaign.experiment.applications)} applications "
        f"x {len(campaign.experiment.objective_counts)} scenarios"
    )
    print(f"campaign: {grid} on {campaign.experiment.platform.name}, "
          f"{campaign.cell_budget} evaluations per cell, "
          f"workers={campaign.max_workers}, "
          f"parallel evaluation={campaign.resolve_parallel_evaluation()}")

    summary = run_campaign(campaign, args.output_dir)
    print(f"executed {len(summary.executed)} cells, skipped {len(summary.skipped)} "
          f"already-completed cells (delete a shard and re-run to redo one cell)")
    print(f"manifest: {summary.manifest_path}")

    status = campaign_status(summary.output_dir)
    assert all(status.values()), "campaign finished with incomplete cells"

    if summary.routing_cache:
        stats = summary.routing_cache
        print(f"routing cache: {stats['hits']} hits, {stats['misses']} misses, "
              f"{stats['incremental_repairs']} incremental repairs "
              f"(hit rate {stats['hit_rate']:.1%})")

    print("\nper-cell fronts (self-referenced hypervolume):")
    for cell, result in load_campaign_results(summary.output_dir):
        front = result.final_front()
        phv = result.final_hypervolume(reference_point_from(front))
        print(f"  {cell.key:<28} evaluations={result.evaluations:<7} "
              f"front={len(front):<3} phv={phv:.4g}")

    if args.tables:
        aggregate = aggregate_campaign(summary.output_dir)
        print(f"\ncampaign tables ({aggregate.target} vs {', '.join(aggregate.baselines)}):\n")
        print(format_table(aggregate.table1()))
        print()
        print(format_table(aggregate.table2()))


if __name__ == "__main__":
    main()
