#!/usr/bin/env python3
"""DEPRECATED shim: use ``python -m repro campaign`` instead.

This script used to hand-wire the sharded campaign runner; that logic now
lives behind the :class:`repro.Study` façade and the ``python -m repro``
CLI.  The old flags keep working — they are translated one-to-one onto the
``campaign`` subcommand — so existing automation (and muscle memory) does not
break, but new scripts should call the CLI directly::

    python -m repro campaign --output-dir /tmp/campaign
    python -m repro campaign --smoke --output-dir /tmp/campaign-smoke --tables
    python -m repro tables --output-dir /tmp/campaign
"""

from __future__ import annotations

import argparse
import sys

from repro.cli import main as cli_main


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output-dir", required=True, help="campaign directory (manifest + shards)")
    parser.add_argument("--workers", type=int, default=1, help="process-pool size for grid cells")
    parser.add_argument("--algorithms", nargs="*", help="subset of algorithms (default: all)")
    parser.add_argument("--paper", action="store_true", help="full paper-scale 4x4x4 campaign")
    parser.add_argument("--smoke", action="store_true", help="tiny 4-cell campaign for CI / demos")
    parser.add_argument("--tables", action="store_true",
                        help="after the campaign, fold the finished shards into the "
                        "Table I/II builders (no cell is re-run)")
    args = parser.parse_args()

    print("note: examples/run_campaign.py is deprecated; "
          "use `python -m repro campaign` instead", file=sys.stderr)

    argv = ["campaign", "--output-dir", args.output_dir,
            "--workers", str(args.workers), "--no-progress"]
    if args.algorithms:
        argv += ["--algorithms", *args.algorithms]
    if args.paper:
        argv.append("--paper")
    if args.smoke:
        argv.append("--smoke")
    if args.tables:
        argv.append("--tables")
    return cli_main(argv)


if __name__ == "__main__":
    sys.exit(main())
