#!/usr/bin/env python3
"""Quickstart: optimise a small 3D heterogeneous manycore platform with MOELA.

This example mirrors Fig. 1 of the paper: a 3x3x3 (27-tile) platform running a
Rodinia-like BFS workload is optimised for the first three objectives of
Section III (mean link utilisation, utilisation variance, CPU-LLC latency).
It is written against the :class:`repro.Study` front door — one fluent object
that resolves the optimiser through the registry, wires the budget, and
streams progress events while the search runs.  The script finishes in well
under a minute on a laptop.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import NocDesignProblem, PlatformConfig, Study, get_workload
from repro.moo.hypervolume import reference_point_from


def print_progress(event) -> None:
    """Streaming StudyEvent subscriber: one line every 10 iterations."""
    if event.kind == "iteration" and event.iteration % 10 == 0:
        print(f"  {event.describe()}")


def main() -> None:
    # 1. Describe the platform (Fig. 1 scale: 3 layers of 3x3 tiles).
    platform = PlatformConfig.small_3x3x3()
    print(f"platform: {platform.name} with {platform.num_tiles} tiles, "
          f"{platform.num_planar_links} planar links, {platform.num_vertical_links} TSVs")

    # 2. Peek at the generated application workload (gem5-GPU/McPAT substitute).
    workload = get_workload("BFS", platform, seed=1)
    print(f"workload: {workload.name}, total traffic {workload.total_traffic():.1f} flits/kcycle, "
          f"total PE power {workload.power.sum():.1f} W")

    # 3. Declare and run the study: MOELA on the 3-objective BFS problem.  The
    #    registry resolves "moela" (any spelling), the per-run budget comes
    #    from .evaluations(), and on_event streams structured progress.
    study = (
        Study(platform=platform, objectives=3, seed=1)
        .apps("BFS")
        .algorithm("moela")
        .evaluations(800)
        .on_event(print_progress)
    )
    result = study.run().result("MOELA")

    # 4. Inspect the outcome.  The problem object gives the objective labels
    #    (and, below, the full per-design report) — the lower-level API is
    #    unchanged and fully interoperable with the façade.
    problem = NocDesignProblem(workload, scenario=3)
    front = result.final_front()
    reference = reference_point_from(front)
    print(f"\nsearch finished: {result.evaluations} evaluations in {result.elapsed_seconds:.1f}s")
    print(f"non-dominated designs found: {len(front)}")
    print(f"Pareto hypervolume (self-referenced): {result.final_hypervolume(reference):.4g}")

    print("\nbest design per objective:")
    for index, name in enumerate(problem.objective_names):
        best = front[:, index].argmin()
        values = ", ".join(f"{v:.3g}" for v in front[best])
        print(f"  lowest {name:<18} -> ({values})")

    # 5. Full objective report of one Pareto design.
    best_design = result.pareto_designs()[0]
    report = problem.full_report(best_design)
    print("\nfull objective report of one Pareto design:")
    for key, value in report.items():
        print(f"  {key:<20} {value:.4g}")


if __name__ == "__main__":
    main()
