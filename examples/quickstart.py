#!/usr/bin/env python3
"""Quickstart: optimise a small 3D heterogeneous manycore platform with MOELA.

This example mirrors Fig. 1 of the paper: a 3x3x3 (27-tile) platform running a
Rodinia-like BFS workload is optimised for the first three objectives of
Section III (mean link utilisation, utilisation variance, CPU-LLC latency).
The script runs in well under a minute on a laptop.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MOELA, MOELAConfig, NocDesignProblem, PlatformConfig, get_workload
from repro.moo.hypervolume import reference_point_from
from repro.moo.termination import Budget


def main() -> None:
    # 1. Describe the platform (Fig. 1 scale: 3 layers of 3x3 tiles).
    platform = PlatformConfig.small_3x3x3()
    print(f"platform: {platform.name} with {platform.num_tiles} tiles, "
          f"{platform.num_planar_links} planar links, {platform.num_vertical_links} TSVs")

    # 2. Generate the application workload (gem5-GPU/McPAT substitute).
    workload = get_workload("BFS", platform, seed=1)
    print(f"workload: {workload.name}, total traffic {workload.total_traffic():.1f} flits/kcycle, "
          f"total PE power {workload.power.sum():.1f} W")

    # 3. Build the 3-objective design problem of Section III.
    problem = NocDesignProblem(workload, scenario=3)
    print(f"problem: {problem.name} with objectives {problem.objective_names}")

    # 4. Run MOELA with a reduced budget.
    config = MOELAConfig.reduced(seed=1)
    optimizer = MOELA(problem, config, rng=1)
    result = optimizer.run(Budget.evaluations(800))

    # 5. Inspect the outcome.
    front = result.final_front()
    reference = reference_point_from(front)
    print(f"\nsearch finished: {result.evaluations} evaluations in {result.elapsed_seconds:.1f}s")
    print(f"non-dominated designs found: {len(front)}")
    print(f"Pareto hypervolume (self-referenced): {result.final_hypervolume(reference):.4g}")

    print("\nbest design per objective:")
    for index, name in enumerate(problem.objective_names):
        best = front[:, index].argmin()
        values = ", ".join(f"{v:.3g}" for v in front[best])
        print(f"  lowest {name:<18} -> ({values})")

    best_design = result.pareto_designs()[0]
    report = problem.full_report(best_design)
    print("\nfull objective report of one Pareto design:")
    for key, value in report.items():
        print(f"  {key:<20} {value:.4g}")


if __name__ == "__main__":
    main()
