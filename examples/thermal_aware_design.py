#!/usr/bin/env python3
"""Thermal-aware design selection (the Fig. 3 workflow on a single application.)

The paper picks, from the final 5-objective population, the design with the
lowest EDP among those within 5 % of the coolest design's peak temperature.
This example runs that complete workflow for one application: a 5-objective
MOELA search, thermal-threshold filtering, and full performance/energy
simulation of the selected design versus the full 3D-mesh baseline.

Run with::

    python examples/thermal_aware_design.py --app HOT
"""

from __future__ import annotations

import argparse

from repro import MOELA, MOELAConfig, NocDesignProblem, PlatformConfig, get_workload
from repro.experiments.metrics import select_design_by_thermal_threshold
from repro.moo.termination import Budget
from repro.noc.mesh import mesh_design
from repro.simulation.simulator import NocSimulator


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", default="HOT", help="Rodinia application")
    parser.add_argument("--evaluations", type=int, default=900)
    parser.add_argument("--platform", choices=("tiny", "small", "paper"), default="small")
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    platform = {
        "tiny": PlatformConfig.tiny_2x2x2,
        "small": PlatformConfig.small_3x3x3,
        "paper": PlatformConfig.paper_4x4x4,
    }[args.platform]()
    workload = get_workload(args.app, platform, seed=2)
    problem = NocDesignProblem(workload, scenario=5)
    simulator = NocSimulator(workload)

    print(f"searching {problem.name} with a {args.evaluations}-evaluation budget ...")
    result = MOELA(problem, MOELAConfig.reduced(seed=2), rng=2).run(
        Budget.evaluations(args.evaluations)
    )

    selected, report = select_design_by_thermal_threshold(result, workload, simulator=simulator)
    mesh = mesh_design(platform)
    mesh_report = simulator.simulate(mesh).as_dict()

    print("\nselected design (lowest EDP within 5% of the coolest peak temperature):")
    for key in ("edp", "total_energy_mj", "execution_time_ms", "peak_temperature",
                "average_packet_latency_cycles"):
        print(f"  {key:<32} {report[key]:12.4g}   (mesh baseline: {mesh_report[key]:.4g})")

    improvement = 100.0 * (mesh_report["edp"] - report["edp"]) / mesh_report["edp"]
    print(f"\nEDP improvement of the optimised design over the full 3D mesh: {improvement:.1f} %")

    objectives = problem.full_report(selected)
    print("\nSection III objective values of the selected design:")
    for name, value in objectives.items():
        print(f"  {name:<20} {value:.4g}")


if __name__ == "__main__":
    main()
