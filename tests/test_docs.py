"""The docs tree must exist, stay linked, and keep its links unbroken."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"


class TestDocsTree:
    def test_required_pages_exist(self):
        for page in ("index.md", "architecture.md", "cli.md", "configuration.md",
                     "performance.md"):
            assert (DOCS / page).exists(), f"docs/{page} is missing"

    def test_readme_links_the_docs(self):
        readme = (REPO / "README.md").read_text()
        for page in ("docs/architecture.md", "docs/cli.md", "docs/configuration.md",
                     "docs/performance.md"):
            assert page in readme, f"README.md does not link {page}"

    def test_link_checker_passes(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "scripts" / "check_docs_links.py")],
            capture_output=True, text=True,
        )
        assert result.returncode == 0, f"broken docs links:\n{result.stdout}{result.stderr}"

    def test_architecture_page_covers_the_pipeline(self):
        content = (DOCS / "architecture.md").read_text()
        for topic in ("RoutingEngine", "MoveDelta", "events.jsonl", "rollup",
                      "submit_campaign", "incremental repair"):
            assert topic in content, f"architecture.md lost its {topic!r} coverage"

    def test_cli_page_documents_every_subcommand(self):
        content = (DOCS / "cli.md").read_text()
        for command in ("repro run", "repro campaign", "repro tables",
                        "repro compact", "repro list", "repro lint", "--follow"):
            assert command in content, f"cli.md does not document {command!r}"

    def test_linting_page_covers_rules_and_workflow(self):
        content = (DOCS / "linting.md").read_text()
        for topic in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
                      "repro: allow[", "lint-baseline.json", "--write-baseline"):
            assert topic in content, f"linting.md lost its {topic!r} coverage"

    def test_configuration_page_covers_the_declarative_schema(self):
        from repro.study.registry import default_registry
        from repro.study.study import _CAMPAIGN_KEYS, _STUDY_KEYS

        content = (DOCS / "configuration.md").read_text()
        for key in _STUDY_KEYS + _CAMPAIGN_KEYS:
            assert f"`{key}`" in content, f"configuration.md does not document key {key!r}"
        # Every built-in optimizer's declared hyperparameters appear.
        registry = default_registry()
        for name in registry.names():
            for option in registry.spec(name).hyperparameters:
                assert f"`{option}`" in content, (
                    f"configuration.md does not document {name}'s option {option!r}"
                )

    def test_performance_page_records_the_pool_decision(self):
        content = (DOCS / "performance.md").read_text()
        assert "PARALLEL_EVALUATION_MIN_TILES" in content
        assert "256" in content and "BENCH_routing.json" in content
