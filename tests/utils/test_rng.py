"""Tests for RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(5).integers(0, 1000, size=10)
        b = ensure_rng(5).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not-an-rng")

    def test_numpy_integer_seed_accepted(self):
        seed = np.int64(7)
        assert isinstance(ensure_rng(seed), np.random.Generator)


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(np.random.default_rng(0), 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rng(np.random.default_rng(0), 2)
        a = children[0].integers(0, 10_000, size=20)
        b = children[1].integers(0, 10_000, size=20)
        assert not np.array_equal(a, b)

    def test_spawn_is_reproducible_from_parent_seed(self):
        first = spawn_rng(np.random.default_rng(3), 2)[0].integers(0, 100, size=5)
        second = spawn_rng(np.random.default_rng(3), 2)[0].integers(0, 100, size=5)
        assert np.array_equal(first, second)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(np.random.default_rng(0), -1)
