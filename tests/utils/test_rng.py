"""Tests for RNG helpers."""

import warnings

import numpy as np
import pytest

from repro.utils.rng import RngLike, UnseededRngWarning, ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator_and_warns(self):
        with pytest.warns(UnseededRngWarning):
            assert isinstance(ensure_rng(None), np.random.Generator)

    def test_allow_unseeded_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            generator = ensure_rng(None, allow_unseeded=True)
        assert isinstance(generator, np.random.Generator)

    def test_seeded_inputs_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ensure_rng(7)
            ensure_rng(np.random.default_rng(0))

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(5).integers(0, 1000, size=10)
        b = ensure_rng(5).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert ensure_rng(generator) is generator

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not-an-rng")

    def test_numpy_integer_seed_accepted(self):
        seed = np.int64(7)
        assert isinstance(ensure_rng(seed), np.random.Generator)

    def test_rnglike_is_a_runtime_union(self):
        # A real PEP 604 alias, not a string: usable in isinstance checks.
        assert isinstance(3, RngLike)
        assert isinstance(np.random.default_rng(0), RngLike)
        assert isinstance(None, RngLike)
        assert not isinstance("seed", RngLike)


class TestSpawnRng:
    def test_spawn_count(self):
        children = spawn_rng(np.random.default_rng(0), 4)
        assert len(children) == 4

    def test_children_are_independent_streams(self):
        children = spawn_rng(np.random.default_rng(0), 2)
        a = children[0].integers(0, 10_000, size=20)
        b = children[1].integers(0, 10_000, size=20)
        assert not np.array_equal(a, b)

    def test_spawn_is_reproducible_from_parent_seed(self):
        first = spawn_rng(np.random.default_rng(3), 2)[0].integers(0, 100, size=5)
        second = spawn_rng(np.random.default_rng(3), 2)[0].integers(0, 100, size=5)
        assert np.array_equal(first, second)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(np.random.default_rng(0), -1)
