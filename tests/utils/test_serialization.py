"""Tests for JSON serialisation of designs and results."""

import json

import numpy as np
import pytest

from repro.moo.result import OptimizationResult, SearchSnapshot
from repro.noc.constraints import ConstraintChecker
from repro.utils.serialization import (
    design_from_dict,
    design_to_dict,
    load_design,
    load_result,
    platform_to_dict,
    result_from_dict,
    result_to_dict,
    save_design,
    save_result,
    write_json_atomic,
)


class TestDesignSerialization:
    def test_round_trip_in_memory(self, tiny_designs):
        design = tiny_designs[0]
        rebuilt = design_from_dict(design_to_dict(design))
        assert rebuilt == design

    def test_round_trip_via_file(self, tiny_config, tiny_designs, tmp_path):
        path = save_design(tiny_designs[1], tmp_path / "design.json")
        rebuilt = load_design(path)
        assert rebuilt == tiny_designs[1]
        assert ConstraintChecker(tiny_config).is_feasible(rebuilt)

    def test_payload_is_plain_json(self, tiny_designs):
        payload = design_to_dict(tiny_designs[0])
        assert json.loads(json.dumps(payload)) == payload

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError):
            design_from_dict({"placement": [0, 1]})


class TestPlatformSerialization:
    def test_platform_dict_fields(self, tiny_config):
        payload = platform_to_dict(tiny_config)
        assert payload["n"] == tiny_config.n
        assert payload["num_planar_links"] == tiny_config.num_planar_links
        json.dumps(payload)


class TestResultSerialization:
    def _result(self, designs):
        history = [SearchSnapshot(0, 5, 0.1, [[1.0, 2.0]]), SearchSnapshot(1, 10, 0.2, [[0.5, 1.5]])]
        return OptimizationResult(
            algorithm="MOELA",
            problem_name="toy",
            designs=list(designs),
            objectives=np.array([[1.0, 2.0], [2.0, 1.0]]),
            history=history,
            evaluations=10,
            elapsed_seconds=0.2,
        )

    def test_result_summary_fields(self, tiny_designs):
        payload = result_to_dict(self._result(tiny_designs[:2]))
        assert payload["algorithm"] == "MOELA"
        assert payload["evaluations"] == 10
        assert len(payload["history"]) == 2
        assert len(payload["designs"]) == 2
        json.dumps(payload)

    def test_result_with_reference_includes_hypervolume(self, tiny_designs):
        payload = result_to_dict(self._result(tiny_designs[:2]), reference=np.array([5.0, 5.0]))
        assert payload["hypervolume"] > 0
        assert payload["reference_point"] == [5.0, 5.0]

    def test_save_result_writes_json(self, tiny_designs, tmp_path):
        path = save_result(self._result(tiny_designs[:2]), tmp_path / "result.json")
        loaded = json.loads(path.read_text())
        assert loaded["problem"] == "toy"

    def test_result_round_trips_in_memory(self, tiny_designs):
        result = self._result(tiny_designs[:2])
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.algorithm == result.algorithm
        assert rebuilt.problem_name == result.problem_name
        assert rebuilt.evaluations == result.evaluations
        np.testing.assert_array_equal(rebuilt.objectives, result.objectives)
        assert rebuilt.designs == result.designs
        assert [s.evaluations for s in rebuilt.history] == [s.evaluations for s in result.history]
        for snap_r, snap_o in zip(rebuilt.history, result.history):
            np.testing.assert_array_equal(snap_r.front, snap_o.front)

    def test_result_round_trips_via_file_exactly(self, tiny_designs, tmp_path):
        """JSON's repr-based float encoding preserves binary64 values losslessly."""
        result = self._result(tiny_designs[:2])
        result.objectives[0, 0] = 1.0 / 3.0  # a value with no short decimal form
        path = save_result(result, tmp_path / "result.json", reference=np.array([5.0, 5.0]))
        rebuilt = load_result(path)
        np.testing.assert_array_equal(rebuilt.objectives, result.objectives)
        assert rebuilt.metadata["hypervolume"] == result.final_hypervolume(np.array([5.0, 5.0]))

    def test_result_from_dict_rejects_missing_fields(self):
        with pytest.raises(ValueError):
            result_from_dict({"algorithm": "MOELA"})


class TestAtomicWrite:
    def test_writes_payload_and_removes_temp(self, tmp_path):
        path = write_json_atomic({"a": 1}, tmp_path / "out.json")
        assert json.loads(path.read_text()) == {"a": 1}
        assert list(tmp_path.iterdir()) == [path]

    def test_replaces_existing_file(self, tmp_path):
        target = tmp_path / "out.json"
        write_json_atomic({"a": 1}, target)
        write_json_atomic({"a": 2}, target)
        assert json.loads(target.read_text()) == {"a": 2}
