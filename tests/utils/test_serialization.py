"""Tests for JSON serialisation of designs and results."""

import json

import numpy as np
import pytest

from repro.moo.result import OptimizationResult, SearchSnapshot
from repro.noc.constraints import ConstraintChecker
from repro.utils.serialization import (
    design_from_dict,
    design_to_dict,
    load_design,
    platform_to_dict,
    result_to_dict,
    save_design,
    save_result,
)


class TestDesignSerialization:
    def test_round_trip_in_memory(self, tiny_designs):
        design = tiny_designs[0]
        rebuilt = design_from_dict(design_to_dict(design))
        assert rebuilt == design

    def test_round_trip_via_file(self, tiny_config, tiny_designs, tmp_path):
        path = save_design(tiny_designs[1], tmp_path / "design.json")
        rebuilt = load_design(path)
        assert rebuilt == tiny_designs[1]
        assert ConstraintChecker(tiny_config).is_feasible(rebuilt)

    def test_payload_is_plain_json(self, tiny_designs):
        payload = design_to_dict(tiny_designs[0])
        assert json.loads(json.dumps(payload)) == payload

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError):
            design_from_dict({"placement": [0, 1]})


class TestPlatformSerialization:
    def test_platform_dict_fields(self, tiny_config):
        payload = platform_to_dict(tiny_config)
        assert payload["n"] == tiny_config.n
        assert payload["num_planar_links"] == tiny_config.num_planar_links
        json.dumps(payload)


class TestResultSerialization:
    def _result(self, designs):
        history = [SearchSnapshot(0, 5, 0.1, [[1.0, 2.0]]), SearchSnapshot(1, 10, 0.2, [[0.5, 1.5]])]
        return OptimizationResult(
            algorithm="MOELA",
            problem_name="toy",
            designs=list(designs),
            objectives=np.array([[1.0, 2.0], [2.0, 1.0]]),
            history=history,
            evaluations=10,
            elapsed_seconds=0.2,
        )

    def test_result_summary_fields(self, tiny_designs):
        payload = result_to_dict(self._result(tiny_designs[:2]))
        assert payload["algorithm"] == "MOELA"
        assert payload["evaluations"] == 10
        assert len(payload["history"]) == 2
        assert len(payload["designs"]) == 2
        json.dumps(payload)

    def test_result_with_reference_includes_hypervolume(self, tiny_designs):
        payload = result_to_dict(self._result(tiny_designs[:2]), reference=np.array([5.0, 5.0]))
        assert payload["hypervolume"] > 0
        assert payload["reference_point"] == [5.0, 5.0]

    def test_save_result_writes_json(self, tiny_designs, tmp_path):
        path = save_result(self._result(tiny_designs[:2]), tmp_path / "result.json")
        loaded = json.loads(path.read_text())
        assert loaded["problem"] == "toy"
