"""Tests for validation helpers."""

import pytest

from repro.utils.validation import require, require_positive, require_probability


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="custom message"):
            require(False, "custom message")


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(1, "x")
        require_positive(0.5, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5, None])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError):
            require_positive(value, "x")


class TestRequireProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        require_probability(value, "p")

    @pytest.mark.parametrize("value", [-0.1, 1.1, None])
    def test_rejects_outside_unit_interval(self, value):
        with pytest.raises(ValueError):
            require_probability(value, "p")
