"""Tests for the shared NamedRegistry helper and its two front-line users.

The duplicate/unknown error contract is asserted once against NamedRegistry
directly, then again through the workload and scenario registries, which both
delegate to it — a regression here means the registries drifted apart.
"""

import pytest

from repro.scenarios.registry import ScenarioRegistry
from repro.scenarios.models import Identity
from repro.utils.registry import NamedRegistry
from repro.workloads.registry import WorkloadRegistry


class TestNamedRegistry:
    def test_register_get_round_trip(self):
        registry: NamedRegistry[int] = NamedRegistry("thing")
        registry.register("a", 1)
        assert registry.get("a") == 1
        assert "a" in registry and "b" not in registry
        assert len(registry) == 1

    def test_duplicate_raises_unless_overwrite(self):
        registry: NamedRegistry[int] = NamedRegistry("thing")
        registry.register("a", 1)
        with pytest.raises(ValueError, match="thing 'a' is already registered"):
            registry.register("a", 2)
        registry.register("a", 2, overwrite=True)
        assert registry.get("a") == 2

    def test_unknown_lookup_lists_available_sorted(self):
        registry: NamedRegistry[int] = NamedRegistry("thing")
        registry.register("b", 2)
        registry.register("a", 1)
        with pytest.raises(KeyError, match=r"unknown thing 'c'; available: \['a', 'b'\]"):
            registry.get("c")

    def test_normalizer_applies_to_registration_and_lookup(self):
        registry: NamedRegistry[int] = NamedRegistry("thing", normalize=str.upper)
        registry.register("abc", 1)
        assert registry.get("ABC") == 1
        assert registry.canonical("aBc") == "ABC"
        assert "abc" in registry
        with pytest.raises(ValueError, match="already registered"):
            registry.register("ABC", 2)

    def test_names_and_iteration_sorted(self):
        registry: NamedRegistry[int] = NamedRegistry("thing")
        for name in ("z", "a", "m"):
            registry.register(name, 0)
        assert registry.names() == ["a", "m", "z"]
        assert list(registry) == ["a", "m", "z"]

    def test_non_string_membership_is_false(self):
        registry: NamedRegistry[int] = NamedRegistry("thing")
        registry.register("1", 1)
        assert 1 not in registry


class TestContractSharedByRealRegistries:
    """Both registries surface NamedRegistry's exact messages."""

    def _factory(self, config, seed):  # pragma: no cover - never called
        raise AssertionError

    def test_workload_registry_duplicate_message(self):
        registry = WorkloadRegistry()
        registry.register("custom", self._factory)
        # The message echoes the caller's spelling; the collision is canonical.
        with pytest.raises(ValueError, match="application 'CUSTOM' is already registered"):
            registry.register("CUSTOM", self._factory)

    def test_workload_registry_unknown_message(self, tiny_config):
        registry = WorkloadRegistry()
        with pytest.raises(KeyError, match="unknown application 'missing'; available:"):
            registry.get("missing", tiny_config)

    def test_scenario_registry_duplicate_message(self):
        registry = ScenarioRegistry()
        registry.register(Identity)
        with pytest.raises(ValueError, match="scenario model 'identity' is already registered"):
            registry.register(Identity)

    def test_scenario_registry_unknown_message(self):
        registry = ScenarioRegistry()
        with pytest.raises(KeyError, match="unknown scenario model 'identity'; available:"):
            registry.get("identity")
