"""Tests for the ``python -m repro`` command-line front door."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_registered_optimizers(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("MOELA", "MOEA/D", "MOOS", "MOO-STAGE", "NSGA-II"):
            assert name in out

    def test_verbose_lists_hyperparameters(self, capsys):
        assert main(["list", "-v"]) == 0
        assert "population_size" in capsys.readouterr().out

    def test_verbose_prints_full_schema_per_optimizer(self, capsys):
        assert main(["list", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "hyperparameters:" in out
        assert "aliases:" in out  # MOEA/D registers alias spellings
        assert "docs/configuration.md" in out  # pointer to the schema docs


class TestHelpEpilogs:
    @pytest.mark.parametrize("command", [[], ["run"], ["campaign"], ["tables"],
                                         ["compact"], ["robustness"], ["list"]])
    def test_help_points_at_the_docs(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([*command, "--help"])
        assert excinfo.value.code == 0
        assert "docs/cli.md" in capsys.readouterr().out


class TestRun:
    def test_single_run_via_flags(self, capsys):
        code = main([
            "run", "--preset", "smoke", "--platform", "tiny", "--apps", "BFS",
            "--objectives", "3", "--algorithms", "nsga2", "--evaluations", "30",
            "--no-progress",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "NSGA-II" in out and "routing cache" in out

    def test_comparison_renders_tables_and_progress(self, capsys):
        code = main([
            "run", "--preset", "smoke", "--platform", "tiny", "--apps", "BFS",
            "--objectives", "3", "--algorithms", "moead", "nsga2",
            "--evaluations", "30",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "run started" in out  # streamed progress events

    def test_config_file_drives_the_run(self, tmp_path, capsys):
        config = tmp_path / "study.json"
        config.write_text(json.dumps({
            "preset": "smoke",
            "platform": "tiny",
            "applications": ["BFS"],
            "objectives": [3],
            "algorithms": ["NSGA-II"],
            "evaluations": 30,
        }))
        assert main(["run", "--config", str(config), "--no-progress"]) == 0
        assert "NSGA-II" in capsys.readouterr().out

    def test_unknown_algorithm_fails_cleanly(self, capsys):
        code = main([
            "run", "--preset", "smoke", "--algorithms", "WARP-DRIVE",
            "--no-progress",
        ])
        assert code == 2
        assert "available: MOELA" in capsys.readouterr().err

    def test_unknown_config_key_fails_cleanly(self, tmp_path, capsys):
        config = tmp_path / "study.json"
        config.write_text(json.dumps({"preset": "smoke", "colour": "blue"}))
        assert main(["run", "--config", str(config), "--no-progress"]) == 2
        assert "unknown study keys" in capsys.readouterr().err


@pytest.fixture()
def campaign_dir(tmp_path):
    return tmp_path / "campaign"


class TestCampaignAndTables:
    def _campaign(self, campaign_dir, *extra):
        return main([
            "campaign", "--preset", "smoke", "--apps", "BFS",
            "--algorithms", "MOEA/D", "NSGA-II", "--evaluations", "30",
            "--output-dir", str(campaign_dir), "--no-progress", *extra,
        ])

    def test_campaign_runs_resumes_and_renders_tables(self, campaign_dir, capsys):
        assert self._campaign(campaign_dir) == 0
        out = capsys.readouterr().out
        assert "executed 2 cells, skipped 0" in out
        assert (campaign_dir / "manifest.json").exists()

        assert self._campaign(campaign_dir, "--tables") == 0
        out = capsys.readouterr().out
        assert "executed 0 cells, skipped 2" in out
        assert "Table I" in out

        assert main(["tables", "--output-dir", str(campaign_dir)]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out

    def test_campaign_streams_shard_events(self, campaign_dir, capsys):
        # Progress streaming is on by default (no --no-progress here).
        code = main([
            "campaign", "--preset", "smoke", "--apps", "BP",
            "--algorithms", "NSGA-II", "--evaluations", "30",
            "--output-dir", str(campaign_dir / "events"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign started" in out and "shard finished" in out

    def test_campaign_settings_from_config_file_are_respected(self, tmp_path, capsys):
        """max_workers / output_dir from the config's campaign section apply
        when the matching flags are not passed."""
        config = tmp_path / "study.json"
        config.write_text(json.dumps({
            "preset": "smoke",
            "applications": ["BFS"],
            "algorithms": ["NSGA-II"],
            "evaluations": 30,
            "campaign": {"output_dir": str(tmp_path / "out"), "max_workers": 2},
        }))
        assert main(["campaign", "--config", str(config), "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "workers=2" in out
        assert (tmp_path / "out" / "manifest.json").exists()

    def test_campaign_config_routing_warm_start_is_respected(self, tmp_path, capsys):
        """A config file's `campaign.routing_warm_start = true` must survive
        the CLI's settings plumbing: the store directory is created and the
        manifest aggregates store counters."""
        config = tmp_path / "study.json"
        config.write_text(json.dumps({
            "preset": "smoke",
            "applications": ["BFS"],
            "algorithms": ["NSGA-II"],
            "evaluations": 30,
            "campaign": {
                "output_dir": str(tmp_path / "out"),
                "routing_warm_start": True,
            },
        }))
        assert main(["campaign", "--config", str(config), "--no-progress"]) == 0
        capsys.readouterr()
        assert list((tmp_path / "out" / "routing_store").glob("*.npz"))
        manifest = json.loads((tmp_path / "out" / "manifest.json").read_text())
        assert manifest["routing_cache"]["store_saves"] >= 1

    def test_campaign_follow_streams_worker_events(self, campaign_dir, capsys):
        """--follow on a pooled campaign renders per-iteration events that
        crossed the process boundary through the event log."""
        code = main([
            "campaign", "--preset", "smoke", "--apps", "BFS", "BP",
            "--algorithms", "MOEA/D", "NSGA-II", "--evaluations", "30",
            "--workers", "2", "--output-dir", str(campaign_dir), "--follow",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "following" in out and "events.jsonl" in out
        assert "shard started" in out and "shard finished" in out
        assert "iteration" in out  # pooled per-iteration events streamed live
        assert "executed 4 cells" in out
        assert (campaign_dir / "events.jsonl").exists()

    def test_compact_subcommand_rolls_and_tables_read_the_rollup(self, campaign_dir, capsys):
        assert self._campaign(campaign_dir) == 0
        capsys.readouterr()
        assert main(["tables", "--output-dir", str(campaign_dir)]) == 0
        before = capsys.readouterr().out

        assert main(["compact", "--output-dir", str(campaign_dir)]) == 0
        out = capsys.readouterr().out
        assert "rollup" in out and "2 cells indexed" in out
        assert not list(campaign_dir.glob("cell_*.json"))

        assert main(["tables", "--output-dir", str(campaign_dir)]) == 0
        assert capsys.readouterr().out == before  # byte-for-byte from the rollup

    def test_compact_with_nothing_completed_fails_cleanly(self, tmp_path, capsys):
        (tmp_path / "manifest.json").write_text(json.dumps({
            "format": "repro-campaign/1", "cells": [],
        }))
        assert main(["compact", "--output-dir", str(tmp_path)]) == 1
        assert "no completed cells" in capsys.readouterr().err

    def test_campaign_config_event_log_false_is_honored(self, tmp_path, capsys):
        """A config file's `campaign.event_log = false` must survive the CLI's
        settings plumbing (flags merely override, never silently reset)."""
        config = tmp_path / "study.json"
        config.write_text(json.dumps({
            "preset": "smoke",
            "applications": ["BFS"],
            "algorithms": ["NSGA-II"],
            "evaluations": 30,
            "campaign": {"output_dir": str(tmp_path / "out"), "event_log": False},
        }))
        assert main(["campaign", "--config", str(config), "--no-progress"]) == 0
        assert (tmp_path / "out" / "manifest.json").exists()
        assert not (tmp_path / "out" / "events.jsonl").exists()

    def test_follow_overrides_config_event_log_false(self, tmp_path, capsys):
        """--follow streams the durable log by definition, so the explicit
        flag outranks a config file's campaign.event_log = false."""
        config = tmp_path / "study.json"
        config.write_text(json.dumps({
            "preset": "smoke",
            "applications": ["BFS"],
            "algorithms": ["NSGA-II"],
            "evaluations": 30,
            "campaign": {"output_dir": str(tmp_path / "out"), "event_log": False},
        }))
        assert main(["campaign", "--config", str(config), "--follow"]) == 0
        out = capsys.readouterr().out
        assert "enables the event log" in out
        assert (tmp_path / "out" / "events.jsonl").exists()

    def test_campaign_without_output_dir_fails(self, capsys):
        assert main(["campaign", "--preset", "smoke", "--no-progress"]) == 2
        assert "--output-dir" in capsys.readouterr().err

    def test_tables_on_empty_directory_fails(self, tmp_path, capsys):
        (tmp_path / "manifest.json").write_text(json.dumps({
            "format": "repro-campaign/1", "cells": [],
        }))
        assert main(["tables", "--output-dir", str(tmp_path)]) == 1
        assert "no completed shards" in capsys.readouterr().err


class TestScenarioFlagsAndRobustness:
    FAULT = "link_failure(k=1,mode=remove)"
    CANONICAL = "link_failure(k=1,mode=remove,derate_factor=0.5)"

    def _faulted_campaign(self, campaign_dir):
        return main([
            "campaign", "--preset", "smoke", "--apps", "BFS",
            "--algorithms", "MOEA/D", "NSGA-II", "--evaluations", "30",
            "--scenarios", "identity", self.FAULT,
            "--output-dir", str(campaign_dir), "--no-progress",
        ])

    def test_campaign_scenarios_flag_widens_the_grid(self, campaign_dir, capsys):
        assert self._faulted_campaign(campaign_dir) == 0
        out = capsys.readouterr().out
        assert "2 fault scenarios" in out
        assert "executed 4 cells" in out
        manifest = json.loads((campaign_dir / "manifest.json").read_text())
        faulted = [c for c in manifest["cells"] if "scenario" in c]
        assert len(faulted) == 2
        assert {c["scenario"] for c in faulted} == {self.CANONICAL}

    def test_robustness_renders_map_and_certificate(self, campaign_dir, capsys):
        assert self._faulted_campaign(campaign_dir) == 0
        capsys.readouterr()
        assert main(["robustness", "--output-dir", str(campaign_dir)]) == 0
        out = capsys.readouterr().out
        assert "Sensitivity map" in out
        assert "Robustness certificate" in out
        assert "Worst case:" in out
        assert self.CANONICAL in out

    def test_certificate_only_skips_the_map(self, campaign_dir, capsys):
        assert self._faulted_campaign(campaign_dir) == 0
        capsys.readouterr()
        assert main([
            "robustness", "--output-dir", str(campaign_dir),
            "--certificate-only", "--quantiles", "0.5", "0.75",
        ]) == 0
        out = capsys.readouterr().out
        assert "Sensitivity map" not in out
        assert "q75" in out

    def test_run_with_fault_scenarios_fails_cleanly(self, capsys):
        code = main([
            "run", "--preset", "smoke", "--apps", "BFS", "--algorithms", "nsga2",
            "--evaluations", "30", "--scenarios", "identity", self.FAULT,
            "--no-progress",
        ])
        assert code == 2
        assert "campaign mode" in capsys.readouterr().err

    def test_unknown_scenario_fails_cleanly(self, capsys):
        code = main([
            "campaign", "--preset", "smoke", "--scenarios", "meteor_strike",
            "--output-dir", "unused", "--no-progress",
        ])
        assert code == 2
        assert "unknown scenario model" in capsys.readouterr().err

    def test_robustness_without_identity_cells_fails_cleanly(self, campaign_dir, capsys):
        assert main([
            "campaign", "--preset", "smoke", "--apps", "BFS",
            "--algorithms", "NSGA-II", "--evaluations", "30",
            "--scenarios", self.FAULT,
            "--output-dir", str(campaign_dir), "--no-progress",
        ]) == 0
        capsys.readouterr()
        assert main(["robustness", "--output-dir", str(campaign_dir)]) == 2
        assert "no completed 'identity' cells" in capsys.readouterr().err


class TestExplain:
    @pytest.fixture()
    def designs(self, tiny_config, tmp_path):
        """A feasible and an infeasible tiny design, saved as JSON files."""
        import numpy as np

        from repro.noc.constraints import random_design
        from repro.noc.design import NocDesign
        from repro.utils.serialization import save_design

        design = random_design(tiny_config, np.random.default_rng(0))
        broken = NocDesign(placement=design.placement, links=design.links[:-2])
        return (
            save_design(design, tmp_path / "ok.json"),
            save_design(broken, tmp_path / "broken.json"),
        )

    def test_feasible_design_exits_zero(self, designs, capsys):
        ok, _ = designs
        assert main(["explain", str(ok)]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_infeasible_design_renders_violations_and_exits_one(self, designs, capsys):
        _, broken = designs
        assert main(["explain", str(broken)]) == 1
        out = capsys.readouterr().out
        assert "violation(s)" in out and "-budget]" in out

    def test_platform_is_inferred_from_tile_count(self, designs, capsys):
        """8 tiles can only be tiny-2x2x2; --platform is optional."""
        _, broken = designs
        assert main(["explain", str(broken)]) == main(
            ["explain", str(broken), "--platform", "tiny"]
        )
        capsys.readouterr()

    def test_json_rendering_round_trips(self, designs, capsys):
        _, broken = designs
        assert main(["explain", str(broken), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["feasible"] is False
        assert payload["report"]["violations"]

    def test_repair_prints_transcript_and_exits_zero(self, designs, capsys):
        _, broken = designs
        assert main(["explain", str(broken), "--repair", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "repair walk (seed 3)" in out and "repaired" in out

    def test_repair_json_carries_the_plan(self, designs, capsys):
        _, broken = designs
        assert main(["explain", str(broken), "--repair", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["repair"]["feasible"] is True
        assert payload["repair"]["steps"]

    def test_unknown_platform_fails_cleanly(self, designs, capsys):
        ok, _ = designs
        assert main(["explain", str(ok), "--platform", "mega"]) == 2
        assert "unknown platform" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["explain", str(tmp_path / "absent.json")]) == 2
        assert "error" in capsys.readouterr().err
