"""Tests for the optimizer registry (canonicalization, specs, plug-ins)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import make_problem
from repro.moo.base import PopulationOptimizer
from repro.moo.termination import Budget
from repro.study.registry import (
    OptimizerRegistry,
    OptimizerSpec,
    canonical_key,
    default_registry,
)


@pytest.fixture(scope="module")
def smoke_experiment():
    return ExperimentConfig.smoke()


class TestCanonicalKey:
    @pytest.mark.parametrize(
        ("spelling", "key"),
        [
            ("MOEA/D", "MOEAD"),
            ("MOEAD", "MOEAD"),
            ("moea-d", "MOEAD"),
            ("MOO-STAGE", "MOOSTAGE"),
            ("moo_stage", "MOOSTAGE"),
            ("NSGA-II", "NSGAII"),
            ("moela", "MOELA"),
        ],
    )
    def test_alias_spellings_fold_together(self, spelling, key):
        assert canonical_key(spelling) == key

    def test_rejects_empty_names(self):
        with pytest.raises(ValueError):
            canonical_key("--/--")


class TestDefaultRegistry:
    def test_baselines_self_register(self):
        registry = default_registry()
        assert registry.names() == ("MOELA", "MOEA/D", "MOOS", "MOO-STAGE", "NSGA-II")

    @pytest.mark.parametrize("spelling", ["MOEAD", "moea/d", "MOEA-D"])
    def test_aliases_resolve_to_canonical(self, spelling):
        assert default_registry().canonical(spelling) == "MOEA/D"

    def test_nsga2_alias(self):
        assert default_registry().canonical("nsga2") == "NSGA-II"

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="available: MOELA, MOEA/D"):
            default_registry().spec("SIMULATED-ANNEALING")

    def test_contains(self):
        registry = default_registry()
        assert "moead" in registry and "NOPE" not in registry

    def test_specs_declare_population_size(self):
        registry = default_registry()
        for name in registry.names():
            assert "population_size" in registry.spec(name).hyperparameters

    def test_default_budget_wires_experiment_evaluations(self, smoke_experiment):
        spec = default_registry().spec("MOELA")
        budget = spec.budget_for(smoke_experiment)
        assert budget.max_evaluations == smoke_experiment.max_evaluations

    def test_unknown_hyperparameter_rejected(self, smoke_experiment):
        spec = default_registry().spec("NSGA-II")
        problem = make_problem(smoke_experiment, "BFS", 3)
        with pytest.raises(ValueError, match="unknown hyperparameters"):
            spec.create(problem, smoke_experiment, seed=1, warp_factor=9)

    def test_hyperparameter_override_reaches_optimizer(self, smoke_experiment):
        problem = make_problem(smoke_experiment, "BFS", 3)
        optimizer = default_registry().create(
            "nsga-ii", problem, smoke_experiment, seed=1, population_size=4
        )
        assert optimizer.population_size == 4


class TestRegistration:
    def _spec(self, name="CUSTOM", **kwargs):
        return OptimizerSpec(name=name, factory=lambda *a, **k: None, **kwargs)

    def test_register_and_lookup(self):
        registry = OptimizerRegistry()
        registry.register(self._spec(aliases=("CST",)))
        assert registry.canonical("custom") == "CUSTOM"
        assert registry.canonical("cst") == "CUSTOM"
        assert len(registry) == 1

    def test_duplicate_rejected_without_overwrite(self):
        registry = OptimizerRegistry()
        registry.register(self._spec())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(self._spec())
        registry.register(self._spec(), overwrite=True)

    def test_alias_collision_rejected(self):
        registry = OptimizerRegistry()
        registry.register(self._spec())
        with pytest.raises(ValueError, match="collides"):
            registry.register(self._spec(name="OTHER", aliases=("CUSTOM",)))

    def test_unregister_removes_all_keys(self):
        registry = OptimizerRegistry()
        registry.register(self._spec(aliases=("CST",)))
        registry.unregister("cst")
        assert "custom" not in registry and "cst" not in registry

    def test_third_party_optimizer_runs_end_to_end(self, smoke_experiment):
        """A registered spec dispatches through run_algorithm like a builtin."""
        from repro.experiments.runner import run_algorithm
        from repro.study.registry import register_optimizer

        class RandomWalk(PopulationOptimizer):
            name = "RANDOM-WALK"

            def step(self, iteration, budget):
                brood = [
                    self.problem.neighbor(design, self.rng) for design in self.designs
                ][: self.brood_limit(budget, self.population_size)]
                if brood:
                    self.evaluate_batch(brood)

        spec = OptimizerSpec(
            name="RANDOM-WALK",
            factory=lambda problem, experiment, seed, **options: RandomWalk(
                problem, population_size=experiment.population_size, rng=seed, **options
            ),
            hyperparameters={"population_size": "walkers"},
        )
        register_optimizer(spec)
        try:
            problem = make_problem(smoke_experiment, "BFS", 3)
            result = run_algorithm(
                "random-walk", problem, smoke_experiment, budget=Budget.evaluations(30)
            )
            assert result.algorithm == "RANDOM-WALK"
            assert result.evaluations == 30
        finally:
            default_registry().unregister("RANDOM-WALK")
