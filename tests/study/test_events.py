"""Tests for the streaming progress-event protocol (StudyEvent)."""

import numpy as np
import pytest

from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.runner import campaign_cells, make_problem, run_algorithm, run_campaign
from repro.moo.termination import Budget
from repro.study.events import EVENT_KINDS, StudyEvent
from repro.study.study import Study

from dataclasses import replace


@pytest.fixture(scope="module")
def smoke_experiment():
    return ExperimentConfig.smoke()


class TestStudyEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            StudyEvent(kind="telegram")

    def test_describe_mentions_identity_and_counters(self):
        event = StudyEvent(
            kind="iteration",
            algorithm="MOELA",
            application="BFS",
            num_objectives=3,
            iteration=4,
            evaluations=120,
            payload={"front_size": 5},
        )
        text = event.describe()
        assert "MOELA" in text and "BFS/3-obj" in text
        assert "iteration 4" in text and "evaluations=120" in text and "front=5" in text


class TestOptimizerEvents:
    """Acceptance criterion: events arrive ordered with monotonic evaluation
    counts while leaving results unchanged."""

    @pytest.mark.parametrize("algorithm", ["MOELA", "MOEA/D", "NSGA-II"])
    def test_events_ordered_monotonic_and_result_unchanged(self, smoke_experiment, algorithm):
        budget = Budget.evaluations(60)
        silent = run_algorithm(
            algorithm, make_problem(smoke_experiment, "BFS", 3), smoke_experiment, budget=budget
        )

        events: list[StudyEvent] = []
        observed = run_algorithm(
            algorithm,
            make_problem(smoke_experiment, "BFS", 3),
            smoke_experiment,
            budget=budget,
            on_event=events.append,
        )

        # Subscribing must not perturb the seeded search.
        assert observed.evaluations == silent.evaluations
        assert np.array_equal(observed.objectives, silent.objectives)
        assert len(observed.history) == len(silent.history)

        # Ordering: run_started, then iterations, then run_finished.
        assert [e.kind for e in events[:1]] == ["run_started"]
        assert events[-1].kind == "run_finished"
        assert all(e.kind == "iteration" for e in events[1:-1])
        assert len(events) >= 3

        # Identity and monotonic counters.
        for event in events:
            assert event.kind in EVENT_KINDS
            assert event.algorithm == observed.algorithm
            assert event.application == "BFS"
            assert event.num_objectives == 3
            assert event.payload["front_size"] >= 1
        evaluation_counts = [e.evaluations for e in events]
        assert all(a <= b for a, b in zip(evaluation_counts, evaluation_counts[1:]))
        assert evaluation_counts[-1] == observed.evaluations
        iterations = [e.iteration for e in events[1:-1]]
        assert iterations == sorted(iterations)

    def test_events_carry_routing_cache_counters(self, smoke_experiment):
        events: list[StudyEvent] = []
        run_algorithm(
            "MOEA/D",
            make_problem(smoke_experiment, "BFS", 3),
            smoke_experiment,
            budget=Budget.evaluations(40),
            on_event=events.append,
        )
        final = events[-1].payload["routing_cache"]
        assert final["enabled"] is True
        assert final["requests"] > 0


class TestCampaignEvents:
    def test_campaign_streams_shard_lifecycle(self, tmp_path):
        campaign = CampaignConfig(
            experiment=replace(ExperimentConfig.smoke(), applications=("BFS", "BP")),
            algorithms=("MOEA/D", "NSGA-II"),
            max_evaluations=40,
        )
        events: list[StudyEvent] = []
        run_campaign(campaign, tmp_path, on_event=events.append)

        kinds = [e.kind for e in events]
        assert kinds[0] == "campaign_started"
        assert kinds[-1] == "campaign_finished"
        assert kinds.count("shard_started") == 4
        assert kinds.count("shard_finished") == 4
        # Inline campaigns forward the per-iteration optimiser events too.
        assert kinds.count("run_started") == 4 and "iteration" in kinds

        finished = [e for e in events if e.kind == "shard_finished"]
        assert {e.payload["key"] for e in finished} == {
            cell.key for cell in campaign_cells(campaign)
        }
        for event in finished:
            assert event.evaluations == 40
            assert "routing_cache" in event.payload
        summary = events[-1].payload
        assert summary["executed"] == 4 and summary["skipped"] == 0
        assert summary["routing_cache"]["requests"] > 0

    def test_resumed_campaign_emits_shard_skipped(self, tmp_path):
        campaign = CampaignConfig(
            experiment=ExperimentConfig.smoke(),
            algorithms=("NSGA-II",),
            max_evaluations=30,
        )
        run_campaign(campaign, tmp_path)
        events: list[StudyEvent] = []
        run_campaign(campaign, tmp_path, on_event=events.append)
        kinds = [e.kind for e in events]
        assert kinds == ["campaign_started", "shard_skipped", "campaign_finished"]


class TestStudyLevelEvents:
    def test_study_brackets_runs_with_study_events(self):
        events: list[StudyEvent] = []
        (
            Study(platform="tiny", objectives=3, preset="smoke")
            .apps("BFS")
            .algorithms("NSGA-II")
            .evaluations(30)
            .on_event(events.append)
            .run()
        )
        kinds = [e.kind for e in events]
        assert kinds[0] == "study_started" and kinds[-1] == "study_finished"
        assert "run_started" in kinds and "run_finished" in kinds
        assert events[0].payload["algorithms"] == ["NSGA-II"]
