"""Tests for the durable JSONL event log (writer, tailer, crash tolerance)."""

import json

import pytest

from repro.study.event_log import (
    EVENT_LOG_NAME,
    EventLogReader,
    EventLogWriter,
    read_event_log,
)
from repro.study.events import StudyEvent


def _event(kind="iteration", **overrides):
    defaults = dict(
        kind=kind,
        algorithm="MOELA",
        application="BFS",
        num_objectives=3,
        iteration=2,
        evaluations=40,
        elapsed_seconds=1.25,
        payload={"front_size": 5, "key": "MOELA_BFS_3obj"},
    )
    defaults.update(overrides)
    return StudyEvent(**defaults)


class TestEventSerialization:
    def test_round_trip_preserves_every_field(self):
        event = _event()
        clone = StudyEvent.from_dict(event.to_dict())
        assert clone == event

    def test_none_fields_are_omitted_and_restored(self):
        event = StudyEvent(kind="campaign_started", payload={"cells": 4})
        data = event.to_dict()
        assert "algorithm" not in data and "iteration" not in data
        clone = StudyEvent.from_dict(data)
        assert clone.algorithm is None and clone.iteration is None
        assert clone == event

    def test_to_dict_is_json_serialisable(self):
        json.dumps(_event().to_dict())

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            StudyEvent.from_dict({"kind": "carrier-pigeon"})


class TestWriterReader:
    def test_append_then_replay(self, tmp_path):
        path = tmp_path / EVENT_LOG_NAME
        with EventLogWriter(path, origin="campaign") as writer:
            writer.append(_event("run_started", iteration=0))
            writer.append(_event("iteration"))
            writer.append(_event("run_finished", iteration=9))
        records = read_event_log(path)
        assert [r.event.kind for r in records] == ["run_started", "iteration", "run_finished"]
        assert all(r.origin == "campaign" for r in records)
        assert [r.seq for r in records] == [0, 1, 2]

    def test_writer_is_usable_as_event_callback(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = EventLogWriter(path, origin="x")
        writer(_event())  # __call__ aliases append
        writer.close()
        assert len(read_event_log(path)) == 1

    def test_interleaved_writers_keep_per_origin_monotonic_seq(self, tmp_path):
        path = tmp_path / "log.jsonl"
        a = EventLogWriter(path, origin="cell-A")
        b = EventLogWriter(path, origin="cell-B")
        a.append(_event()); b.append(_event()); a.append(_event()); b.append(_event())
        a.close(); b.close()
        records = read_event_log(path)
        for origin in ("cell-A", "cell-B"):
            seqs = [r.seq for r in records if r.origin == origin]
            assert seqs == sorted(seqs) == list(range(len(seqs)))

    def test_poll_is_incremental(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = EventLogWriter(path, origin="w")
        reader = EventLogReader(path)
        assert reader.poll() == []
        writer.append(_event())
        assert len(reader.poll()) == 1
        assert reader.poll() == []
        writer.append(_event()); writer.append(_event())
        assert len(reader.poll()) == 2
        writer.close()

    def test_start_at_end_skips_history(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = EventLogWriter(path, origin="w")
        writer.append(_event("run_started", iteration=0))
        reader = EventLogReader(path, start_at_end=True)
        assert reader.poll() == []
        writer.append(_event("run_finished", iteration=3))
        assert [r.event.kind for r in reader.poll()] == ["run_finished"]
        writer.close()

    def test_missing_file_polls_empty(self, tmp_path):
        assert EventLogReader(tmp_path / "absent.jsonl").poll() == []


class TestCrashTolerance:
    def test_trailing_partial_line_is_not_consumed_until_complete(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = EventLogWriter(path, origin="w")
        writer.append(_event())
        writer.close()
        full_line = path.read_bytes()
        # Simulate an append cut mid-write: a torn line with no newline.
        with open(path, "ab") as handle:
            handle.write(full_line[: len(full_line) // 2].rstrip(b"\n"))
        reader = EventLogReader(path)
        assert len(reader.poll()) == 1  # only the complete first line
        assert reader.corrupt_lines == 0

    def test_torn_middle_line_is_skipped_and_counted(self, tmp_path):
        """A writer killed mid-write followed by a resumed campaign's appends
        produces one corrupted joined line; replay skips exactly that one."""
        path = tmp_path / "log.jsonl"
        writer = EventLogWriter(path, origin="first-run")
        writer.append(_event("run_started", iteration=0))
        writer.append(_event())
        writer.close()
        data = path.read_bytes()
        path.write_bytes(data[:-10])  # tear the last line's tail off
        resumed = EventLogWriter(path, origin="second-run")
        resumed.append(_event("run_finished", iteration=5))
        resumed.close()
        reader = EventLogReader(path)
        records = reader.poll()
        assert [r.event.kind for r in records] == ["run_started", "run_finished"]
        assert reader.corrupt_lines == 1
