"""Tests for the Study façade: equivalence, round-trips, campaigns, plug-ins."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.config import CampaignConfig
from repro.experiments.runner import make_problem, run_algorithm, run_campaign
from repro.moo.base import PopulationOptimizer
from repro.moo.termination import Budget
from repro.study.registry import OptimizerSpec, default_registry, register_optimizer
from repro.study.study import PLATFORM_FACTORIES, Study, resolve_platform

#: Study used by most tests: tiny platform, one app, 60 evaluations per run.
def smoke_study(*algorithms: str) -> Study:
    study = Study(platform="tiny", objectives=3, preset="smoke").apps("BFS").evaluations(60)
    if algorithms:
        study.algorithms(*algorithms)
    return study


def assert_results_identical(a, b):
    """Bit-identical OptimizationResults (objectives, history, counters)."""
    assert a.algorithm == b.algorithm
    assert a.evaluations == b.evaluations
    assert np.array_equal(a.objectives, b.objectives)
    assert len(a.history) == len(b.history)
    for snap_a, snap_b in zip(a.history, b.history):
        assert snap_a.iteration == snap_b.iteration
        assert snap_a.evaluations == snap_b.evaluations
        assert np.array_equal(snap_a.front, snap_b.front)


class TestResolvePlatform:
    @pytest.mark.parametrize("name", ["tiny", "TINY_2x2x2", "tiny-2x2x2"])
    def test_names_resolve(self, name):
        assert resolve_platform(name) == PLATFORM_FACTORIES["tiny"]()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown platform"):
            resolve_platform("mega")


class TestStudyValidation:
    def test_unknown_algorithm_raises_with_available_names(self):
        with pytest.raises(ValueError, match="available: MOELA, MOEA/D"):
            smoke_study().algorithm("SIMULATED-ANNEALING")

    def test_unknown_hyperparameter_raises(self):
        with pytest.raises(ValueError, match="unknown hyperparameters"):
            smoke_study().algorithm("nsga2", warp_factor=9)

    def test_duplicate_algorithm_rejected(self):
        with pytest.raises(ValueError, match="already part of the study"):
            smoke_study().algorithm("moead").algorithm("MOEA/D")

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            Study(preset="warp")

    def test_from_dict_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown study keys"):
            Study.from_dict({"preset": "smoke", "colour": "blue"})

    def test_from_dict_unknown_algorithm_raises(self):
        with pytest.raises(ValueError, match="available: MOELA"):
            Study.from_dict({"algorithms": ["NOPE"]})

    def test_from_dict_unknown_campaign_key_raises(self):
        with pytest.raises(ValueError, match="unknown campaign keys"):
            Study.from_dict({"campaign": {"output_dir": "x", "turbo": True}})

    def test_campaign_requires_output_dir(self):
        with pytest.raises(ValueError, match="output_dir"):
            Study.from_dict({"campaign": {"max_workers": 2}})


class TestSeededEquivalence:
    """Acceptance criterion: Study runs are bit-identical to run_algorithm."""

    @pytest.mark.parametrize("algorithm", ["MOELA", "MOEA/D", "MOOS", "MOO-STAGE", "NSGA-II"])
    def test_study_matches_legacy_run_algorithm(self, algorithm):
        study = smoke_study(algorithm)
        via_study = study.run().result(algorithm)

        experiment = study.experiment()
        problem = make_problem(experiment, "BFS", 3)
        legacy = run_algorithm(
            algorithm, problem, experiment, budget=Budget.evaluations(60)
        )
        assert_results_identical(via_study, legacy)

    def test_experiment_reflects_overrides(self):
        experiment = smoke_study().experiment()
        assert experiment.platform.name == "tiny-2x2x2"
        assert experiment.applications == ("BFS",)
        assert experiment.objective_counts == (3,)
        assert experiment.max_evaluations == 60


class TestRoundTrip:
    """Acceptance criterion: from_dict(to_dict()) reproduces seeded results."""

    def test_round_trip_identical_results_for_every_registered_optimizer(self):
        for algorithm in default_registry().names():
            study = smoke_study(algorithm)
            clone = Study.from_dict(study.to_dict())
            assert clone.to_dict() == study.to_dict()
            assert_results_identical(
                study.run().result(algorithm), clone.run().result(algorithm)
            )

    def test_round_trip_preserves_options(self):
        study = smoke_study().algorithm("nsga2", population_size=4, mutation_probability=0.5)
        payload = study.to_dict()
        assert payload["algorithms"] == [
            {"name": "NSGA-II", "options": {"population_size": 4, "mutation_probability": 0.5}}
        ]
        clone = Study.from_dict(payload)
        a = study.run().result("NSGA-II")
        b = clone.run().result("NSGA-II")
        assert_results_identical(a, b)
        assert a.objectives.shape[0] == 4

    def test_round_trip_through_json_and_toml_files(self, tmp_path):
        study = smoke_study("MOEA/D")
        json_path = tmp_path / "study.json"
        json_path.write_text(json.dumps(study.to_dict()))
        assert Study.from_file(json_path).to_dict() == study.to_dict()

        toml_path = tmp_path / "study.toml"
        toml_path.write_text(
            'preset = "smoke"\nplatform = "tiny"\nobjectives = [3]\n'
            'applications = ["BFS"]\nalgorithms = ["MOEA/D"]\nevaluations = 60\n'
        )
        assert Study.from_file(toml_path).to_dict() == study.to_dict()

    def test_custom_platform_round_trips_as_dict(self):
        """Custom platforms serialise field-by-field — including the
        energy/thermal/frequency constants, which must survive the trip."""
        platform = replace(
            PLATFORM_FACTORIES["tiny"](), router_stages=3, link_energy_per_flit=2.25
        )
        study = Study(platform=platform, preset="smoke")
        payload = study.to_dict()
        assert isinstance(payload["platform"], dict)
        rebuilt = Study.from_dict(payload).experiment().platform
        assert rebuilt == platform
        assert rebuilt.link_energy_per_flit == 2.25

    def test_custom_platform_reusing_a_factory_name_still_serialises_fields(self):
        platform = replace(PLATFORM_FACTORIES["tiny"](), link_energy_per_flit=2.25)
        assert platform.name == "tiny-2x2x2"
        payload = Study(platform=platform, preset="smoke").to_dict()
        assert isinstance(payload["platform"], dict)

    def test_unset_fields_stay_absent(self):
        assert smoke_study().to_dict() == {
            "preset": "smoke",
            "platform": "tiny-2x2x2",
            "objectives": [3],
            "applications": ["BFS"],
            "evaluations": 60,
        }


class TestStudyResult:
    def test_result_accessor_disambiguation(self):
        result = smoke_study("MOEA/D", "NSGA-II").run()
        assert result.result("moead").algorithm == "MOEA/D"
        with pytest.raises(KeyError):
            result.result("MOELA")

    def test_iteration_yields_every_run(self):
        result = smoke_study("MOEA/D", "NSGA-II").run()
        rows = list(result)
        assert {(app, m, name) for app, m, name, _ in rows} == {
            ("BFS", 3, "MOEA/D"),
            ("BFS", 3, "NSGA-II"),
        }

    def test_tables_and_cache_summary(self):
        result = smoke_study("MOEA/D", "NSGA-II").run()
        assert result.target == "MOEA/D"
        text = result.format_tables()
        assert "Table I" in text and "Table II" in text
        stats = result.routing_cache_summary()
        assert stats["requests"] > 0 and 0.0 <= stats["hit_rate"] <= 1.0

    def test_cache_summary_does_not_double_count_shared_engines(self):
        """Inline runs share one engine per (app, m) group and each result's
        snapshot is cumulative, so the fold must use the group's last
        snapshot — not the sum of every algorithm's snapshot."""
        result = smoke_study("MOEA/D", "NSGA-II").run()
        group = result.runs[("BFS", 3)]
        last = list(group.values())[-1].metadata["routing_cache"]
        expected = sum(int(last[k]) for k in ("hits", "misses", "incremental_repairs"))
        assert result.routing_cache_summary()["requests"] == expected

    def test_summary_rows(self):
        rows = smoke_study("MOEA/D").run().summary_rows()
        assert len(rows) == 1 and rows[0]["algorithm"] == "MOEA/D"


class TestStudyCampaign:
    def test_campaign_mode_produces_unified_result(self, tmp_path):
        study = (
            Study(preset="smoke")
            .apps("BFS", "BP")
            .algorithms("MOEA/D", "NSGA-II")
            .evaluations(40)
            .campaign(tmp_path / "campaign")
        )
        result = study.run()
        assert result.campaign is not None
        assert len(result.campaign.executed) == 4
        assert sorted(result.runs) == [("BFS", 3), ("BP", 3)]
        assert result.routing_cache_summary()["hit_rate"] > 0

        resumed = Study.from_dict(study.to_dict()).run()
        assert resumed.campaign.executed == []
        assert len(resumed.campaign.skipped) == 4

    def test_campaign_cells_match_direct_config(self, tmp_path):
        """Study campaigns resume directories written by CampaignConfig.smoke()."""
        direct = CampaignConfig.smoke()
        run_campaign(direct, tmp_path)
        study = (
            Study(preset="smoke")
            .apps("BFS", "BP")
            .algorithms("MOEA/D", "NSGA-II")
            .evaluations(60)
            .campaign(tmp_path)
        )
        result = study.run()
        assert result.campaign.executed == []
        assert len(result.campaign.skipped) == 4

    def test_campaign_rejects_per_algorithm_options(self, tmp_path):
        study = smoke_study().algorithm("nsga2", population_size=4).campaign(tmp_path)
        with pytest.raises(ValueError, match="does not support per-algorithm"):
            study.run()


class RandomRestart(PopulationOptimizer):
    """Minimal custom optimizer used by the end-to-end plug-in test."""

    name = "RANDOM-RESTART"

    def step(self, iteration, budget):
        brood = [
            self.problem.random_design(self.rng)
            for _ in range(self.brood_limit(budget, self.population_size))
        ]
        if brood:
            self.evaluate_batch(brood)


class TestThirdPartyOptimizer:
    """Acceptance criterion: a custom optimizer runs through Study AND a
    campaign shard without modifying repro/experiments."""

    @pytest.fixture()
    def registered(self):
        spec = OptimizerSpec(
            name="RANDOM-RESTART",
            factory=lambda problem, experiment, seed, **options: RandomRestart(
                problem, population_size=experiment.population_size, rng=seed
            ),
        )
        register_optimizer(spec)
        yield spec
        default_registry().unregister("RANDOM-RESTART")

    def test_spec_default_budget_honored_by_study(self, tmp_path):
        """The façade defers to the spec's default budget wiring (it must not
        silently re-derive a budget the registration overrode)."""
        spec = OptimizerSpec(
            name="SHORT-WALK",
            factory=lambda problem, experiment, seed, **options: RandomRestart(
                problem, population_size=experiment.population_size, rng=seed
            ),
            default_budget=lambda experiment: Budget.evaluations(18),
        )
        register_optimizer(spec)
        try:
            result = smoke_study("short-walk").run().result("SHORT-WALK")
            assert result.evaluations == 18
        finally:
            default_registry().unregister("SHORT-WALK")

    def test_runs_through_study_and_campaign_shard(self, registered, tmp_path):
        result = smoke_study("random-restart").run().result("RANDOM-RESTART")
        assert result.evaluations == 60

        study = (
            Study(preset="smoke")
            .apps("BFS")
            .algorithms("RANDOM-RESTART", "NSGA-II")
            .evaluations(40)
            .campaign(tmp_path)
        )
        outcome = study.run()
        assert len(outcome.campaign.executed) == 2
        shard = outcome.runs[("BFS", 3)]["RANDOM-RESTART"]
        assert shard.algorithm == "RANDOM-RESTART"
        assert shard.evaluations == 40


class TestScenarios:
    FAULT = "link_failure(k=1,mode=remove,derate_factor=0.5)"

    def test_scenarios_round_trip_canonicalised(self):
        study = smoke_study("nsga2").scenarios("identity", "link_failure(k=1)")
        payload = study.to_dict()
        assert payload["scenarios"] == ["identity", self.FAULT]
        assert Study.from_dict(payload).to_dict()["scenarios"] == payload["scenarios"]

    def test_unset_scenarios_stay_absent(self):
        assert "scenarios" not in smoke_study("nsga2").to_dict()

    def test_unknown_scenario_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario model"):
            Study.from_dict({"scenarios": ["meteor_strike"]})

    def test_invalid_scenario_parameters_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            smoke_study("nsga2").scenarios("link_failure(k=0)")

    def test_duplicate_scenarios_rejected_at_experiment_build(self):
        study = smoke_study("nsga2").scenarios("identity", "link_failure(k=1)", "link_failure(k=1)")
        with pytest.raises(ValueError, match="duplicate scenario models"):
            study.experiment()

    def test_inline_run_refuses_fault_scenarios(self):
        study = smoke_study("nsga2").scenarios("identity", self.FAULT)
        with pytest.raises(ValueError, match="campaign mode"):
            study.run()

    def test_campaign_with_scenario_axis_and_rollup_analytics(self, tmp_path):
        study = (
            smoke_study("nsga2")
            .evaluations(40)
            .scenarios("identity", self.FAULT)
            .campaign(tmp_path)
        )
        result = study.run()
        assert len(result.campaign.executed) == 2  # identity + faulted cell
        certificate = result.robustness()
        assert len(certificate.records) == 1
        assert certificate.records[0].scenario == self.FAULT
        sensitivity = result.sensitivity()
        assert {e.scenario for e in sensitivity.entries} == {self.FAULT}

    def test_robustness_requires_campaign_mode(self):
        result = smoke_study("nsga2").run()
        with pytest.raises(ValueError, match="campaign"):
            result.robustness()
        with pytest.raises(ValueError, match="campaign"):
            result.sensitivity()

    def test_scenarios_key_accepted_in_study_files(self, tmp_path):
        config = tmp_path / "study.json"
        config.write_text(json.dumps({
            "preset": "smoke",
            "applications": ["BFS"],
            "algorithms": ["NSGA-II"],
            "evaluations": 40,
            "scenarios": ["identity", "link_failure(k=1)"],
        }))
        study = Study.from_file(config)
        assert study.experiment().scenario_models == ("identity", self.FAULT)
