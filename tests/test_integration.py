"""End-to-end integration tests across the whole stack.

These tests exercise the full pipeline (workload generation -> NoC design
problem -> optimisers -> metrics -> tables) at the smallest scale that still
goes through every code path the benchmark harness uses.
"""

import numpy as np
import pytest

from repro.core.config import MOELAConfig
from repro.core.moela import MOELA
from repro.core.problem import NocDesignProblem
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import common_reference_point, phv_gain, speedup_factor
from repro.experiments.runner import compare_algorithms
from repro.experiments.tables import build_figure3, build_table1, build_table2, run_all_comparisons
from repro.moo.moead import MOEAD
from repro.moo.termination import Budget
from repro.simulation.simulator import NocSimulator
from repro.workloads.registry import get_workload


class TestEndToEndSearch:
    def test_moela_full_pipeline_on_tiny_platform(self, tiny_problem_5obj):
        config = MOELAConfig.smoke()
        result = MOELA(tiny_problem_5obj, config, rng=3).run(Budget.evaluations(150))
        # Final designs are feasible, objective history is recorded, the front
        # is non-empty and every objective is finite.
        assert len(result.history) >= 2
        assert np.all(np.isfinite(result.objectives))
        front = result.pareto_front()
        assert 1 <= len(front) <= len(result.designs)
        for design in result.pareto_designs():
            assert tiny_problem_5obj.is_feasible(design)

    def test_moela_and_moead_share_problem_and_are_comparable(self, tiny_workload):
        problem = NocDesignProblem(tiny_workload, scenario=3)
        budget = Budget.evaluations(150)
        moela = MOELA(problem, MOELAConfig.smoke(), rng=1).run(budget)
        moead = MOEAD(problem, population_size=6, neighborhood_size=3, rng=1).run(budget)
        reference = common_reference_point([moela, moead])
        assert moela.final_hypervolume(reference) > 0
        assert moead.final_hypervolume(reference) > 0
        assert np.isfinite(phv_gain(moela, moead, reference))
        assert speedup_factor(moead, moela, reference) >= 0

    def test_selected_design_can_be_simulated(self, tiny_problem):
        result = MOELA(tiny_problem, MOELAConfig.smoke(), rng=2).run(Budget.evaluations(100))
        simulator = NocSimulator(tiny_problem.workload)
        report = simulator.simulate(result.pareto_designs()[0])
        assert report.edp > 0


class TestHarnessIntegration:
    def test_smoke_experiment_produces_all_artifacts(self):
        experiment = ExperimentConfig.smoke()
        runs = run_all_comparisons(experiment)
        table1 = build_table1(experiment, runs)
        table2 = build_table2(experiment, runs)
        figure3 = build_figure3(experiment, runs)
        assert table1.cells and table2.cells and figure3.cells
        # Every run stayed within the evaluation budget (plus initial population slack).
        for results in runs.values():
            for result in results.values():
                assert result.evaluations <= experiment.max_evaluations + experiment.population_size + 8

    def test_comparison_runs_share_the_same_workload(self):
        experiment = ExperimentConfig.smoke()
        results = compare_algorithms(["MOELA", "MOEA/D"], experiment, "BFS", 3)
        workload = get_workload("BFS", experiment.platform, seed=experiment.seed)
        for result in results.values():
            assert result.problem_name.startswith(workload.name)
