"""Property-based tests (hypothesis) for constraint reports and repair operators.

Three families of invariants back the feasibility subsystem
(:mod:`repro.noc.constraints` + :mod:`repro.noc.repair`):

* the structural repair operators (``repair_links``,
  ``_restore_connectivity``) always return designs that respect the link
  budgets, the router degree cap and connectivity, without touching the
  placement;
* violation reports are *pure*: the same design always produces a
  byte-identical report (REP003 — no iteration-order or RNG leakage into
  serialized artifacts);
* report ordering is deterministic and canonical (severity, then code, then
  message), so diffs between two reports are meaningful.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.constraints import (
    ConstraintChecker,
    _restore_connectivity,
    _violation_sort_key,
    is_connected,
    random_design,
    repair_links,
)
from repro.noc.design import NocDesign
from repro.noc.links import link_kind
from repro.noc.platform import PlatformConfig
from repro.noc.repair import repair_design

TINY = PlatformConfig.tiny_2x2x2()
CHECKER = ConstraintChecker(TINY)


def _damaged_design(seed: int, drop: int, duplicate: bool) -> NocDesign:
    """A feasible design degraded by dropping links and/or duplicating one."""
    rng = np.random.default_rng(seed)
    design = random_design(TINY, rng)
    links = list(design.links[: len(design.links) - drop])
    if duplicate and links:
        links.append(links[0])
    return NocDesign(placement=design.placement, links=tuple(links))


def _assert_structurally_feasible(design: NocDesign, config: PlatformConfig) -> None:
    """Budget + degree + connectivity invariants, asserted explicitly."""
    grid = config.grid
    kinds = [link_kind(link, grid).value for link in design.links]
    assert kinds.count("planar") <= config.num_planar_links
    assert kinds.count("vertical") <= config.num_vertical_links
    assert int(design.degrees().max(initial=0)) <= config.max_router_degree
    assert is_connected(design)


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    drop=st.integers(min_value=0, max_value=6),
    duplicate=st.booleans(),
)
def test_repair_links_respects_budgets_degree_and_connectivity(seed, drop, duplicate):
    damaged = _damaged_design(seed, drop, duplicate)
    repaired = repair_links(damaged, TINY, np.random.default_rng(seed))
    _assert_structurally_feasible(repaired, TINY)
    assert CHECKER.is_feasible(repaired)
    assert repaired.placement == damaged.placement


@given(seed=st.integers(min_value=0, max_value=5_000), drop=st.integers(min_value=1, max_value=4))
def test_restore_connectivity_never_disconnects(seed, drop):
    rng = np.random.default_rng(seed)
    design = random_design(TINY, rng)
    # Disconnect by dropping links, then refill the budgets with random legal
    # links (which need not reconnect the network).
    damaged = NocDesign(placement=design.placement, links=design.links[: len(design.links) - drop])
    restored = _restore_connectivity(damaged, TINY, rng)
    assert is_connected(restored)
    assert restored.placement == damaged.placement
    # Restoring an already-connected design must keep it connected.
    again = _restore_connectivity(restored, TINY, rng)
    assert is_connected(again)


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    drop=st.integers(min_value=0, max_value=6),
    duplicate=st.booleans(),
)
def test_reports_are_pure(seed, drop, duplicate):
    """Same design, any checker instance, any time: byte-identical report."""
    design = _damaged_design(seed, drop, duplicate)
    first = ConstraintChecker(TINY).report(design)
    second = ConstraintChecker(TINY).report(design)
    assert first == second
    assert first.to_json() == second.to_json()
    assert first.to_dict() == second.to_dict()


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    drop=st.integers(min_value=0, max_value=6),
    duplicate=st.booleans(),
)
def test_report_ordering_is_canonical(seed, drop, duplicate):
    """Violations arrive sorted by (severity rank, code, message) — REP003."""
    report = CHECKER.report(_damaged_design(seed, drop, duplicate))
    assert list(report.violations) == sorted(report.violations, key=_violation_sort_key)
    for violation in report.violations:
        # details are canonical sorted (key, value) pairs — directly hashable
        # and byte-stable under json serialization.
        assert list(violation.details) == sorted(violation.details)
        hash(violation)


@given(seed=st.integers(min_value=0, max_value=2_000), drop=st.integers(min_value=1, max_value=5))
def test_repair_plans_replay_deterministically(seed, drop):
    """The same seed and design always produce the identical RepairPlan."""
    damaged = _damaged_design(seed, drop, duplicate=False)
    first = repair_design(damaged, TINY, seed=seed)
    second = repair_design(damaged, TINY, seed=seed)
    assert first.to_dict() == second.to_dict()
    if first.feasible:
        assert CHECKER.is_feasible(first.design)
