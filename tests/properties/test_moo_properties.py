"""Property-based tests (hypothesis) for the MOO substrate invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.moo.archive import ParetoArchive
from repro.moo.dominance import dominates, fast_non_dominated_sort, non_dominated_mask
from repro.moo.hypervolume import hypervolume, hypervolume_contribution
from repro.moo.scalarization import tchebycheff, weighted_distance
from repro.moo.weights import uniform_weights

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

objective_matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(min_value=1, max_value=12), st.integers(min_value=2, max_value=4)),
    elements=st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False),
)


@given(objectives=objective_matrices)
@SETTINGS
def test_non_dominated_points_are_mutually_incomparable(objectives):
    front = objectives[non_dominated_mask(objectives)]
    for i in range(len(front)):
        for j in range(len(front)):
            if i != j:
                assert not dominates(front[i], front[j])


@given(objectives=objective_matrices)
@SETTINGS
def test_fast_non_dominated_sort_partitions_indices(objectives):
    fronts = fast_non_dominated_sort(objectives)
    flat = sorted(i for front in fronts for i in front)
    assert flat == list(range(len(objectives)))


@given(objectives=objective_matrices)
@SETTINGS
def test_hypervolume_nonnegative_and_bounded_by_reference_box(objectives):
    reference = objectives.max(axis=0) + 1.0
    ideal = objectives.min(axis=0)
    value = hypervolume(objectives, reference)
    assert value >= 0.0
    assert value <= float(np.prod(reference - ideal)) + 1e-9


@given(objectives=objective_matrices)
@SETTINGS
def test_hypervolume_monotone_under_adding_a_dominating_point(objectives):
    reference = objectives.max(axis=0) + 1.0
    base = hypervolume(objectives, reference)
    better_point = objectives.min(axis=0) * 0.5
    extended = np.vstack([objectives, better_point])
    assert hypervolume(extended, reference) >= base - 1e-12


@given(objectives=objective_matrices)
@SETTINGS
def test_hypervolume_contribution_matches_set_difference(objectives):
    if len(objectives) < 2:
        return
    point, front = objectives[0], objectives[1:]
    reference = objectives.max(axis=0) + 1.0
    expected = hypervolume(np.vstack([front, point]), reference) - hypervolume(front, reference)
    np.testing.assert_allclose(
        hypervolume_contribution(point, front, reference), expected, rtol=1e-9, atol=1e-9
    )


@given(
    objectives=arrays(
        dtype=np.float64,
        shape=st.integers(min_value=2, max_value=5),
        elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    ),
    weight_seed=st.integers(min_value=0, max_value=1_000),
)
@SETTINGS
def test_scalarizations_are_nonnegative_and_zero_at_reference(objectives, weight_seed):
    rng = np.random.default_rng(weight_seed)
    weight = rng.dirichlet(np.ones(len(objectives)))
    reference = objectives.copy()
    assert weighted_distance(objectives, weight, reference) == 0.0
    assert tchebycheff(objectives, weight, reference) >= 0.0
    shifted = objectives + 1.0
    assert weighted_distance(shifted, weight, reference) >= 0.0
    assert tchebycheff(shifted, weight, reference) >= 0.0


@given(num_objectives=st.integers(min_value=2, max_value=5), count=st.integers(min_value=2, max_value=40))
@SETTINGS
def test_uniform_weights_live_on_simplex(num_objectives, count):
    weights = uniform_weights(num_objectives, count, rng=0)
    assert weights.shape == (count, num_objectives)
    assert np.all(weights >= -1e-12)
    assert np.allclose(weights.sum(axis=1), 1.0)


@given(objectives=objective_matrices)
@SETTINGS
def test_archive_members_are_mutually_non_dominated(objectives):
    archive = ParetoArchive()
    for idx, row in enumerate(objectives):
        archive.add(idx, row)
    stored = archive.objectives
    for i in range(len(stored)):
        for j in range(len(stored)):
            if i != j:
                assert not dominates(stored[i], stored[j])
