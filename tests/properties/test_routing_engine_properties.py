"""Property-based tests (hypothesis): the RoutingEngine is route-exact.

The central claim of the routing cache: for *any* sequence of moves, the
tables the engine serves (cache hits, incremental repairs and fresh builds
alike) are identical to a fresh all-pairs Dijkstra build — same paths, same
hop counts, same incidence matrices, and the same disconnection errors.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.noc.constraints import random_design
from repro.noc.design import NocDesign
from repro.noc.links import Link
from repro.noc.mesh import mesh_design
from repro.noc.moves import MoveGenerator
from repro.noc.platform import PlatformConfig
from repro.noc.routing import RoutingTables
from repro.noc.routing_engine import RoutingEngine

TINY = PlatformConfig.tiny_2x2x2()
SMALL = PlatformConfig.small_3x3x3()
TINY_MOVES = MoveGenerator(TINY)
SMALL_MOVES = MoveGenerator(SMALL)

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def assert_engine_matches_fresh(engine_tables: RoutingTables, fresh: RoutingTables) -> None:
    np.testing.assert_array_equal(engine_tables._predecessors, fresh._predecessors)
    assert (engine_tables.pair_link_incidence() != fresh.pair_link_incidence()).nnz == 0
    assert (engine_tables.pair_tile_incidence() != fresh.pair_tile_incidence()).nnz == 0
    np.testing.assert_array_equal(engine_tables.pair_hops(), fresh.pair_hops())
    np.testing.assert_array_equal(engine_tables.pair_lengths(), fresh.pair_lengths())
    np.testing.assert_array_equal(engine_tables.reachable_pairs(), fresh.reachable_pairs())


@given(seed=st.integers(min_value=0, max_value=10_000), steps=st.integers(min_value=1, max_value=8))
@SETTINGS
def test_random_move_sequences_yield_fresh_dijkstra_routes(seed, steps):
    """Chained random moves: every engine answer equals a fresh build."""
    rng = np.random.default_rng(seed)
    engine = RoutingEngine(TINY.grid)
    design = random_design(TINY, rng)
    engine.tables(design)
    for _ in range(steps):
        design = TINY_MOVES.random_neighbor(design, rng)
        assert_engine_matches_fresh(engine.tables(design), RoutingTables(design, TINY.grid))


@given(seed=st.integers(min_value=0, max_value=5_000), steps=st.integers(min_value=1, max_value=5))
@SETTINGS
def test_move_sequences_on_small_platform(seed, steps):
    """Same exactness on the 27-tile platform (longer routes, more ties)."""
    rng = np.random.default_rng(seed)
    engine = RoutingEngine(SMALL.grid)
    design = random_design(SMALL, rng)
    engine.tables(design)
    for _ in range(steps):
        design = SMALL_MOVES.random_neighbor(design, rng)
        assert_engine_matches_fresh(engine.tables(design), RoutingTables(design, SMALL.grid))


@given(seed=st.integers(min_value=0, max_value=10_000))
@SETTINGS
def test_repaired_tables_raise_identical_disconnection_errors(seed):
    """Isolating a tile via an incremental repair reports the same error."""
    rng = np.random.default_rng(seed)
    engine = RoutingEngine(SMALL.grid, max_repair_fraction=1.0)
    design = mesh_design(SMALL)
    engine.tables(design)
    victim = int(rng.integers(1, SMALL.num_tiles))
    links = tuple(l for l in design.links if victim not in l.endpoints())
    broken = NocDesign(placement=design.placement, links=links)
    # Annotate by hand so the engine takes the incremental-repair path.
    from repro.noc.design import MoveDelta, annotate_move

    broken = annotate_move(broken, MoveDelta.between(design, broken, "isolate"))
    repaired = engine.tables(broken)
    assert engine.incremental_repairs == 1
    fresh = RoutingTables(broken, SMALL.grid)
    assert not repaired.is_reachable(0, victim)
    with pytest.raises(ValueError, match="no route"):
        repaired.path_links(0, victim)
    with pytest.raises(ValueError, match="no route"):
        fresh.path_links(0, victim)
    assert_engine_matches_fresh(repaired, fresh)


@given(
    seed=st.integers(min_value=0, max_value=5_000),
    num_changes=st.integers(min_value=1, max_value=4),
)
@SETTINGS
def test_multi_link_deltas_repair_exactly(seed, num_changes):
    """Composite deltas (several links changed at once) stay exact."""
    rng = np.random.default_rng(seed)
    design = random_design(SMALL, rng)
    current = design
    for _ in range(num_changes):
        candidate = SMALL_MOVES.rewire_link(current, rng)
        if candidate is not None:
            current = candidate
    if current is design:
        return
    parent_tables = RoutingTables(design, SMALL.grid)
    repaired = parent_tables.incremental_update(current.links)
    assert_engine_matches_fresh(repaired, RoutingTables(current, SMALL.grid))


@given(seed=st.integers(min_value=0, max_value=10_000))
@SETTINGS
def test_sample_paths_identical_tile_by_tile(seed):
    """Spot-check concrete path walks, not just the batch tables."""
    rng = np.random.default_rng(seed)
    engine = RoutingEngine(TINY.grid)
    design = random_design(TINY, rng)
    engine.tables(design)
    child = TINY_MOVES.random_neighbor(design, rng)
    served = engine.tables(child)
    fresh = RoutingTables(child, TINY.grid)
    for src in range(child.num_tiles):
        for dst in range(child.num_tiles):
            assert served.path_tiles(src, dst) == fresh.path_tiles(src, dst)
            assert served.path_links(src, dst) == fresh.path_links(src, dst)
            assert served.hops(src, dst) == fresh.hops(src, dst)
