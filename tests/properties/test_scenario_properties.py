"""Property-based tests (hypothesis) for the scenario-model contracts.

Three contracts make scenario models safe to slot into cache keys and shard
manifests: transforms are pure seeded functions (same seed -> byte-identical
output, different seeds -> different victims), a ``remove``-mode transform
either returns a connected design or raises the documented ``ScenarioError``
(never a silently disconnected topology), and every model round-trips both
its canonical key and its ``to_dict`` payload.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.noc.constraints import is_connected, random_design
from repro.noc.platform import PlatformConfig
from repro.scenarios.models import (
    HotspotInjection,
    Identity,
    LinkFailure,
    ScenarioError,
    ThermalDerating,
    TrafficMorph,
)
from repro.scenarios.registry import parse_scenario
from repro.workloads.registry import get_workload

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TINY = PlatformConfig.tiny_2x2x2()

#: Reasonable, always-valid parameter draws for every model kind.
link_failures = st.builds(
    LinkFailure,
    k=st.integers(min_value=1, max_value=3),
    mode=st.sampled_from(("remove", "derate")),
    derate_factor=st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
)
thermal_deratings = st.builds(
    ThermalDerating,
    factor=st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
    region=st.sampled_from(("all", "upper", "lower")),
)
hotspot_injections = st.builds(
    HotspotInjection,
    intensity=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    num_hot=st.integers(min_value=1, max_value=3),
)
traffic_morphs = st.builds(
    TrafficMorph,
    scale=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
    skew=st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
)
any_model = st.one_of(
    st.builds(Identity), link_failures, thermal_deratings, hotspot_injections, traffic_morphs
)
design_seeds = st.integers(min_value=0, max_value=2**31 - 1)
scenario_seeds = st.integers(min_value=0, max_value=2**31 - 1)


def design_for(seed: int):
    return random_design(TINY, np.random.default_rng(seed))


@given(model=link_failures, design_seed=design_seeds, seed=scenario_seeds)
@SETTINGS
def test_design_transform_pure_seeded(model, design_seed, seed):
    design = design_for(design_seed)
    first = model.transform_design(design, seed)
    second = model.transform_design(design, seed)
    assert first == second
    first_factors = model.link_load_factors(design, seed)
    second_factors = model.link_load_factors(design, seed)
    if first_factors is None:
        assert second_factors is None
    else:
        assert np.array_equal(first_factors, second_factors)


@given(design_seed=design_seeds, seed_a=scenario_seeds, seed_b=scenario_seeds)
@SETTINGS
def test_different_seeds_pick_different_victims_eventually(design_seed, seed_a, seed_b):
    """Same-seed equality plus a drift witness across a handful of seeds."""
    design = design_for(design_seed)
    model = LinkFailure(k=1, mode="derate")
    a = model.link_load_factors(design, seed_a)
    b = model.link_load_factors(design, seed_b)
    if seed_a == seed_b:
        assert np.array_equal(a, b)
    else:
        # A single pair may collide (k=1 of ~12 links); across 16 consecutive
        # seeds the victim choice must vary or the stream is not seeded.
        picks = {tuple(model.link_load_factors(design, s)) for s in range(seed_a, seed_a + 16)}
        assert len(picks) > 1


@given(model=link_failures, design_seed=design_seeds, seed=scenario_seeds)
@SETTINGS
def test_remove_never_emits_disconnected_design(model, design_seed, seed):
    design = design_for(design_seed)
    try:
        faulted = model.transform_design(design, seed)
    except ScenarioError:
        return  # the documented failure mode
    assert is_connected(faulted)
    if model.mode == "remove":
        assert faulted.num_links == design.num_links - model.k
        assert set(faulted.links) <= set(design.links)


@given(model=st.one_of(hotspot_injections, traffic_morphs), seed=scenario_seeds)
@SETTINGS
def test_workload_transform_pure_seeded(model, seed):
    workload = get_workload("BFS", TINY, seed=11)
    first = model.transform_workload(workload, seed)
    second = model.transform_workload(workload, seed)
    assert np.array_equal(first.traffic, second.traffic)
    assert np.array_equal(first.power, second.power)
    assert np.all(first.traffic >= 0)
    assert np.all(np.diag(first.traffic) == np.diag(workload.traffic))


@given(model=any_model)
@SETTINGS
def test_canonical_key_round_trips(model):
    parsed = parse_scenario(model.key)
    assert parsed == model
    assert parsed.key == model.key


@given(model=any_model)
@SETTINGS
def test_to_dict_from_dict_round_trips(model):
    rebuilt = type(model).from_dict(model.to_dict())
    assert rebuilt == model
    assert rebuilt.to_dict() == model.to_dict()


@given(model=any_model, design_seed=design_seeds, seed=scenario_seeds)
@SETTINGS
def test_transform_never_mutates_the_nominal_design(model, design_seed, seed):
    design = design_for(design_seed)
    links_before = design.links
    try:
        model.transform_design(design, seed)
    except ScenarioError:
        pass
    assert design.links == links_before


@given(model=thermal_deratings)
@SETTINGS
def test_thermal_transform_scales_only_selected_region(model):
    from repro.objectives.thermal import ThermalModel

    nominal = ThermalModel(TINY)
    derated = model.transform_thermal(nominal)
    ratio = derated.resistances / nominal.resistances
    assert np.all((np.isclose(ratio, 1.0)) | (np.isclose(ratio, model.factor)))
    assert np.any(np.isclose(ratio, model.factor))


@given(bad_k=st.integers(min_value=-3, max_value=0))
@SETTINGS
def test_invalid_parameters_always_raise(bad_k):
    with pytest.raises(ScenarioError):
        LinkFailure(k=bad_k)
