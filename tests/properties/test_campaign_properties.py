"""Property-based tests (hypothesis) for the campaign-runner invariants.

Three invariants keep sharded campaigns trustworthy at scale: the manifest
always covers the full (algorithm x application x scenario) grid, per-cell
derived seeds are unique across the grid (independent search streams), and
resuming never re-runs a completed cell.
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.runner import ALGORITHMS, CampaignCell, campaign_cells

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALL_APPLICATIONS = ("BFS", "BP", "GAU", "HOT", "PF", "SRAD")

algorithm_subsets = st.lists(
    st.sampled_from(ALGORITHMS), min_size=1, max_size=len(ALGORITHMS), unique=True
).map(tuple)
application_subsets = st.lists(
    st.sampled_from(ALL_APPLICATIONS), min_size=1, max_size=len(ALL_APPLICATIONS), unique=True
).map(tuple)
objective_subsets = st.lists(
    st.sampled_from((3, 4, 5)), min_size=1, max_size=3, unique=True
).map(tuple)
base_seeds = st.integers(min_value=0, max_value=2**31 - 1)


def build_campaign(algorithms, applications, objective_counts, seed) -> CampaignConfig:
    experiment = replace(
        ExperimentConfig.smoke(),
        applications=applications,
        objective_counts=objective_counts,
        seed=seed,
    )
    return CampaignConfig(experiment=experiment, algorithms=algorithms)


@given(
    algorithms=algorithm_subsets,
    applications=application_subsets,
    objective_counts=objective_subsets,
    seed=base_seeds,
)
@SETTINGS
def test_grid_covers_full_cross_product(algorithms, applications, objective_counts, seed):
    campaign = build_campaign(algorithms, applications, objective_counts, seed)
    cells = campaign_cells(campaign)
    assert len(cells) == len(algorithms) * len(applications) * len(objective_counts)
    covered = {(c.algorithm, c.application, c.num_objectives) for c in cells}
    expected = {
        (alg, app, m) for alg in algorithms for app in applications for m in objective_counts
    }
    assert covered == expected


@given(
    algorithms=algorithm_subsets,
    applications=application_subsets,
    objective_counts=objective_subsets,
    seed=base_seeds,
)
@SETTINGS
def test_derived_seeds_unique_across_grid(algorithms, applications, objective_counts, seed):
    cells = campaign_cells(build_campaign(algorithms, applications, objective_counts, seed))
    seeds = [c.seed for c in cells]
    assert len(set(seeds)) == len(seeds)
    # Seeds are also valid numpy Generator seeds (non-negative 31-bit ints).
    assert all(0 <= s < 2**31 for s in seeds)


@given(
    algorithms=algorithm_subsets,
    applications=application_subsets,
    objective_counts=objective_subsets,
    seed=base_seeds,
)
@SETTINGS
def test_cell_keys_unique_and_round_trip(algorithms, applications, objective_counts, seed):
    cells = campaign_cells(build_campaign(algorithms, applications, objective_counts, seed))
    keys = [c.key for c in cells]
    assert len(set(keys)) == len(keys)
    for cell in cells:
        rebuilt = CampaignCell.from_dict(cell.to_dict())
        assert rebuilt == cell and rebuilt.shard_name == cell.shard_name


@given(seed_a=base_seeds, seed_b=base_seeds)
@SETTINGS
def test_seeds_deterministic_in_config_and_sensitive_to_base_seed(seed_a, seed_b):
    campaign_a = build_campaign(("NSGA-II",), ("BFS",), (3,), seed_a)
    assert campaign_cells(campaign_a) == campaign_cells(campaign_a)
    if seed_a != seed_b:
        campaign_b = build_campaign(("NSGA-II",), ("BFS",), (3,), seed_b)
        assert campaign_cells(campaign_a)[0].seed != campaign_cells(campaign_b)[0].seed


def test_resume_after_kill_never_reruns_completed_cells(tmp_path):
    """Simulated kill: some shards written, manifest present, one cell missing.

    Resuming must execute exactly the missing cells and leave completed
    shards untouched (checked by nanosecond mtime).
    """
    from repro.experiments.runner import run_campaign

    campaign = CampaignConfig(
        experiment=replace(ExperimentConfig.smoke(), applications=("BFS", "BP")),
        algorithms=("MOEA/D", "NSGA-II"),
        max_evaluations=40,
    )
    summary = run_campaign(campaign, tmp_path)

    killed = {summary.cells[1].key, summary.cells[3].key}
    for key in killed:
        summary.shard_path(key).unlink()
    mtimes = {
        c.key: summary.shard_path(c.key).stat().st_mtime_ns
        for c in summary.cells
        if c.key not in killed
    }

    resumed = run_campaign(campaign, tmp_path)
    assert sorted(resumed.executed) == sorted(killed)
    for key, mtime in mtimes.items():
        assert resumed.shard_path(key).stat().st_mtime_ns == mtime
