"""Property-based tests (hypothesis) for the ML substrate."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.forest import RandomForestRegressor
from repro.ml.scaler import StandardScaler
from repro.ml.tree import DecisionTreeRegressor

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

datasets = st.tuples(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(min_value=6, max_value=40), st.integers(min_value=1, max_value=4)),
        elements=st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False),
    ),
    st.integers(min_value=0, max_value=1_000),
)


@given(data=datasets)
@SETTINGS
def test_tree_predictions_stay_within_target_range(data):
    X, seed = data
    rng = np.random.default_rng(seed)
    y = rng.uniform(-10.0, 10.0, size=len(X))
    tree = DecisionTreeRegressor(max_depth=6, rng=seed).fit(X, y)
    predictions = tree.predict(X)
    assert np.all(predictions >= y.min() - 1e-9)
    assert np.all(predictions <= y.max() + 1e-9)
    assert np.all(np.isfinite(predictions))


@given(data=datasets)
@SETTINGS
def test_forest_predictions_bounded_and_finite(data):
    X, seed = data
    rng = np.random.default_rng(seed)
    y = rng.uniform(0.0, 5.0, size=len(X))
    forest = RandomForestRegressor(n_estimators=4, max_depth=5, rng=seed).fit(X, y)
    predictions = forest.predict(X)
    assert np.all(np.isfinite(predictions))
    assert np.all(predictions >= y.min() - 1e-9)
    assert np.all(predictions <= y.max() + 1e-9)


@given(data=datasets)
@SETTINGS
def test_scaler_round_trip_property(data):
    X, _ = data
    scaler = StandardScaler().fit(X)
    reconstructed = scaler.inverse_transform(scaler.transform(X))
    np.testing.assert_allclose(reconstructed, X, rtol=1e-9, atol=1e-6)


@given(data=datasets)
@SETTINGS
def test_constant_target_predicts_constant(data):
    X, seed = data
    y = np.full(len(X), 3.25)
    tree = DecisionTreeRegressor(rng=seed).fit(X, y)
    np.testing.assert_allclose(tree.predict(X), 3.25)
