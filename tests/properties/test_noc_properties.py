"""Property-based tests (hypothesis) for the NoC substrate invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.noc.constraints import ConstraintChecker, is_connected, random_design, repair_links
from repro.noc.crossover import crossover
from repro.noc.design import NocDesign
from repro.noc.geometry import Grid3D
from repro.noc.links import link_kind, link_length
from repro.noc.moves import MoveGenerator
from repro.noc.platform import PlatformConfig

TINY = PlatformConfig.tiny_2x2x2()
CHECKER = ConstraintChecker(TINY)
MOVES = MoveGenerator(TINY)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(min_value=0, max_value=10_000))
@SETTINGS
def test_random_designs_always_feasible(seed):
    design = random_design(TINY, seed)
    assert CHECKER.violations(design) == []


@given(seed=st.integers(min_value=0, max_value=10_000), moves=st.integers(min_value=1, max_value=5))
@SETTINGS
def test_neighbor_chains_preserve_feasibility(seed, moves):
    rng = np.random.default_rng(seed)
    design = random_design(TINY, rng)
    for _ in range(moves):
        design = MOVES.random_neighbor(design, rng)
    assert CHECKER.is_feasible(design)
    assert is_connected(design)


@given(seed_a=st.integers(min_value=0, max_value=5_000), seed_b=st.integers(min_value=0, max_value=5_000))
@SETTINGS
def test_crossover_offspring_always_feasible(seed_a, seed_b):
    parent_a = random_design(TINY, seed_a)
    parent_b = random_design(TINY, seed_b)
    child = crossover(parent_a, parent_b, TINY, np.random.default_rng(seed_a + seed_b))
    assert CHECKER.is_feasible(child)


@given(seed=st.integers(min_value=0, max_value=5_000), drop=st.integers(min_value=0, max_value=6))
@SETTINGS
def test_repair_recovers_feasibility_after_link_loss(seed, drop):
    rng = np.random.default_rng(seed)
    design = random_design(TINY, rng)
    damaged = NocDesign(placement=design.placement, links=design.links[: len(design.links) - drop])
    repaired = repair_links(damaged, TINY, rng)
    assert CHECKER.is_feasible(repaired)
    assert repaired.placement == design.placement


@given(
    n=st.integers(min_value=2, max_value=4),
    layers=st.integers(min_value=1, max_value=3),
    x=st.integers(min_value=0, max_value=3),
    y=st.integers(min_value=0, max_value=3),
    z=st.integers(min_value=0, max_value=2),
)
@SETTINGS
def test_grid_round_trip_property(n, layers, x, y, z):
    grid = Grid3D(n, layers)
    x, y, z = x % n, y % n, z % layers
    from repro.noc.geometry import TileCoord

    tile_id = grid.tile_id(TileCoord(x, y, z))
    assert grid.coord(tile_id) == TileCoord(x, y, z)
    assert 0 <= tile_id < grid.num_tiles


@given(seed=st.integers(min_value=0, max_value=5_000))
@SETTINGS
def test_link_lengths_within_platform_limits(seed):
    design = random_design(TINY, seed)
    grid = TINY.grid
    for link in design.links:
        kind = link_kind(link, grid)
        length = link_length(link, grid)
        if kind.value == "planar":
            assert 1 <= length <= TINY.max_planar_length
        else:
            assert length == 1
