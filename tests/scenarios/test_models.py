"""Unit tests for the scenario-model transforms."""

import numpy as np
import pytest

from repro.noc.constraints import is_connected, random_design
from repro.objectives.thermal import ThermalModel
from repro.scenarios.models import (
    IDENTITY,
    HotspotInjection,
    Identity,
    LinkFailure,
    ScenarioError,
    ThermalDerating,
    TrafficMorph,
    scenario_rng,
)


class TestScenarioRng:
    def test_deterministic_per_parts(self):
        a = scenario_rng("link_failure", 7, "design").random(4)
        b = scenario_rng("link_failure", 7, "design").random(4)
        assert np.array_equal(a, b)

    def test_distinct_parts_distinct_streams(self):
        a = scenario_rng("link_failure", 7).random(4)
        b = scenario_rng("link_failure", 8).random(4)
        assert not np.array_equal(a, b)


class TestIdentity:
    def test_key_and_flags(self):
        assert IDENTITY.key == "identity"
        assert IDENTITY.is_identity
        assert Identity() == IDENTITY

    def test_hooks_are_no_ops(self, tiny_workload, tiny_designs):
        design = tiny_designs[0]
        assert IDENTITY.transform_workload(tiny_workload, 3) is tiny_workload
        assert IDENTITY.transform_design(design, 3) is design
        assert IDENTITY.link_load_factors(design, 3) is None


class TestLinkFailureRemove:
    def test_removes_exactly_k_links_and_stays_connected(self, tiny_designs):
        model = LinkFailure(k=2, mode="remove")
        for design in tiny_designs:
            faulted = model.transform_design(design, seed=5)
            assert faulted.num_links == design.num_links - 2
            assert set(faulted.links) < set(design.links)
            assert faulted.placement == design.placement
            assert is_connected(faulted)

    def test_seeded_and_design_dependent(self, tiny_designs):
        model = LinkFailure(k=1, mode="remove")
        a = model.transform_design(tiny_designs[0], seed=5)
        b = model.transform_design(tiny_designs[0], seed=5)
        assert a == b
        seeds = {model.transform_design(tiny_designs[0], seed=s).links for s in range(8)}
        assert len(seeds) > 1  # different seeds pick different victims

    def test_removing_every_link_raises(self, tiny_designs):
        design = tiny_designs[0]
        with pytest.raises(ScenarioError, match="without disconnecting"):
            LinkFailure(k=design.num_links, mode="remove").transform_design(design, 0)

    def test_no_load_factors_in_remove_mode(self, tiny_designs):
        assert LinkFailure(k=1, mode="remove").link_load_factors(tiny_designs[0], 0) is None


class TestLinkFailureDerate:
    def test_factors_shape_and_values(self, tiny_designs):
        design = tiny_designs[0]
        model = LinkFailure(k=2, mode="derate", derate_factor=0.25)
        factors = model.link_load_factors(design, seed=9)
        assert factors.shape == (design.num_links,)
        assert np.count_nonzero(factors == 4.0) == 2
        assert np.count_nonzero(factors == 1.0) == design.num_links - 2

    def test_topology_untouched(self, tiny_designs):
        design = tiny_designs[0]
        model = LinkFailure(k=2, mode="derate")
        assert model.transform_design(design, seed=9) is design

    def test_factors_seeded(self, tiny_designs):
        model = LinkFailure(k=1, mode="derate")
        a = model.link_load_factors(tiny_designs[0], seed=2)
        b = model.link_load_factors(tiny_designs[0], seed=2)
        assert np.array_equal(a, b)

    def test_parameter_validation(self):
        with pytest.raises(ScenarioError):
            LinkFailure(k=0)
        with pytest.raises(ScenarioError):
            LinkFailure(mode="explode")
        with pytest.raises(ScenarioError):
            LinkFailure(mode="derate", derate_factor=0.0)
        with pytest.raises(ScenarioError):
            LinkFailure(mode="derate", derate_factor=1.5)


class TestThermalDerating:
    def test_all_region_scales_every_layer(self, tiny_config):
        nominal = ThermalModel(tiny_config)
        derated = ThermalDerating(factor=2.0, region="all").transform_thermal(nominal)
        assert np.allclose(derated.resistances, 2.0 * nominal.resistances)

    def test_upper_region_scales_top_half_only(self, tiny_config):
        nominal = ThermalModel(tiny_config)
        derated = ThermalDerating(factor=3.0, region="upper").transform_thermal(nominal)
        layers = len(nominal.resistances)
        half = layers // 2
        assert np.allclose(derated.resistances[:half], nominal.resistances[:half])
        assert np.allclose(derated.resistances[half:], 3.0 * nominal.resistances[half:])

    def test_parameter_validation(self):
        with pytest.raises(ScenarioError):
            ThermalDerating(factor=0.0)
        with pytest.raises(ScenarioError):
            ThermalDerating(region="sideways")


class TestHotspotInjection:
    def test_adds_traffic_and_tags_metadata(self, tiny_workload):
        model = HotspotInjection(intensity=2.0, num_hot=1)
        morphed = model.transform_workload(tiny_workload, seed=4)
        assert morphed.traffic.sum() > tiny_workload.traffic.sum()
        assert np.all(morphed.traffic >= tiny_workload.traffic)
        assert morphed.metadata["scenario"] == model.key
        assert morphed.name == tiny_workload.name

    def test_overlay_is_seeded(self, tiny_workload):
        model = HotspotInjection()
        a = model.transform_workload(tiny_workload, seed=4)
        b = model.transform_workload(tiny_workload, seed=4)
        c = model.transform_workload(tiny_workload, seed=5)
        assert np.array_equal(a.traffic, b.traffic)
        assert not np.array_equal(a.traffic, c.traffic)

    def test_parameter_validation(self):
        with pytest.raises(ScenarioError):
            HotspotInjection(intensity=0.0)
        with pytest.raises(ScenarioError):
            HotspotInjection(num_hot=0)


class TestTrafficMorph:
    def test_scale_changes_total_volume(self, tiny_workload):
        morphed = TrafficMorph(scale=2.0).transform_workload(tiny_workload, seed=0)
        assert morphed.traffic.sum() == pytest.approx(2.0 * tiny_workload.traffic.sum())

    def test_skew_preserves_volume_and_sparsity(self, tiny_workload):
        morphed = TrafficMorph(skew=2.0).transform_workload(tiny_workload, seed=0)
        assert morphed.traffic.sum() == pytest.approx(tiny_workload.traffic.sum())
        assert np.array_equal(morphed.traffic > 0, tiny_workload.traffic > 0)
        # skew > 1 concentrates volume: the largest entry grows relative to total
        assert morphed.traffic.max() > tiny_workload.traffic.max()

    def test_seed_independent(self, tiny_workload):
        model = TrafficMorph(scale=1.5, skew=0.5)
        a = model.transform_workload(tiny_workload, seed=1)
        b = model.transform_workload(tiny_workload, seed=99)
        assert np.array_equal(a.traffic, b.traffic)

    def test_parameter_validation(self):
        with pytest.raises(ScenarioError):
            TrafficMorph(scale=0.0)
        with pytest.raises(ScenarioError):
            TrafficMorph(skew=-1.0)


class TestCanonicalKeys:
    def test_key_lists_every_field_in_order(self):
        assert LinkFailure(k=2).key == "link_failure(k=2,mode=remove,derate_factor=0.5)"
        assert ThermalDerating().key == "thermal_derating(factor=1.5,region=all)"
        assert HotspotInjection().key == "hotspot_injection(intensity=1.0,num_hot=2)"
        assert TrafficMorph().key == "traffic_morph(scale=1.0,skew=1.0)"

    def test_to_dict_from_dict_round_trip(self):
        for model in (
            Identity(),
            LinkFailure(k=3, mode="derate", derate_factor=0.125),
            ThermalDerating(factor=2.5, region="upper"),
            HotspotInjection(intensity=0.5, num_hot=3),
            TrafficMorph(scale=0.5, skew=2.0),
        ):
            assert type(model).from_dict(model.to_dict()) == model

    def test_from_dict_rejects_wrong_kind_and_bad_params(self):
        with pytest.raises(ScenarioError, match="does not match"):
            LinkFailure.from_dict({"kind": "traffic_morph"})
        with pytest.raises(ScenarioError, match="invalid parameters"):
            LinkFailure.from_dict({"kind": "link_failure", "bogus": 1})


def test_many_random_designs_survive_remove(tiny_config):
    """remove mode never silently returns a disconnected topology."""
    rng = np.random.default_rng(12)
    model = LinkFailure(k=1, mode="remove")
    for _ in range(25):
        design = random_design(tiny_config, rng)
        faulted = model.transform_design(design, seed=3)
        assert is_connected(faulted)
        assert faulted.num_links == design.num_links - 1
