"""Tests for the scenario registry and canonical-key parser."""

from dataclasses import dataclass
from typing import ClassVar

import pytest

from repro.scenarios.models import (
    IDENTITY,
    LinkFailure,
    ScenarioError,
    ScenarioModel,
    ThermalDerating,
)
from repro.scenarios.registry import (
    ScenarioRegistry,
    canonical_scenario_key,
    default_registry,
    list_scenarios,
    parse_scenario,
    scenario_from_dict,
)


class TestDefaultRegistry:
    def test_lists_all_builtin_kinds(self):
        assert list_scenarios() == [
            "hotspot_injection",
            "identity",
            "link_failure",
            "thermal_derating",
            "traffic_morph",
        ]

    def test_lookup_is_case_insensitive(self):
        assert default_registry().get("LINK_FAILURE") is LinkFailure
        assert "Thermal_Derating" in default_registry()

    def test_unknown_kind_lists_available(self):
        with pytest.raises(KeyError, match="unknown scenario model 'meteor_strike'"):
            default_registry().get("meteor_strike")


class TestCustomRegistration:
    @dataclass(frozen=True)
    class PowerBrownout(ScenarioModel):
        kind: ClassVar[str] = "power_brownout"
        droop: float = 0.1

    def test_register_and_parse(self):
        registry = ScenarioRegistry()
        registry.register(self.PowerBrownout)
        assert registry.get("power_brownout") is self.PowerBrownout
        assert registry.kinds() == ["power_brownout"]

    def test_duplicate_registration_shares_workload_registry_contract(self):
        registry = ScenarioRegistry()
        registry.register(self.PowerBrownout)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(self.PowerBrownout)
        registry.register(self.PowerBrownout, overwrite=True)


class TestParseScenario:
    def test_bare_kind_uses_defaults(self):
        assert parse_scenario("identity") == IDENTITY
        assert parse_scenario("link_failure") == LinkFailure()

    def test_parameters_are_coerced(self):
        model = parse_scenario("link_failure(k=2,mode=derate,derate_factor=0.25)")
        assert model == LinkFailure(k=2, mode="derate", derate_factor=0.25)
        assert isinstance(model.k, int)
        assert isinstance(model.derate_factor, float)

    def test_whitespace_tolerated(self):
        assert parse_scenario(" thermal_derating( factor = 2.0 , region = upper ) ") == (
            ThermalDerating(factor=2.0, region="upper")
        )

    def test_model_instances_pass_through(self):
        model = LinkFailure(k=3)
        assert parse_scenario(model) is model

    def test_round_trips_canonical_key(self):
        for spec in (
            "identity",
            "link_failure(k=2)",
            "thermal_derating(factor=2.0,region=lower)",
            "hotspot_injection(intensity=1.5)",
            "traffic_morph(skew=2.0)",
        ):
            model = parse_scenario(spec)
            assert parse_scenario(model.key) == model

    def test_malformed_keys_raise_scenario_error(self):
        with pytest.raises(ScenarioError, match="malformed scenario key"):
            parse_scenario("link_failure(k=1")
        with pytest.raises(ScenarioError, match="expected name=value"):
            parse_scenario("link_failure(2)")

    def test_unknown_kind_raises_key_error(self):
        with pytest.raises(KeyError, match="unknown scenario model"):
            parse_scenario("meteor_strike(k=1)")

    def test_unknown_parameter_raises_scenario_error(self):
        with pytest.raises(ScenarioError, match="invalid parameters"):
            parse_scenario("link_failure(links=1)")

    def test_invalid_parameter_value_raises_scenario_error(self):
        with pytest.raises(ScenarioError, match="positive integer"):
            parse_scenario("link_failure(k=0)")


class TestSerialisationHelpers:
    def test_scenario_from_dict_round_trip(self):
        for model in (IDENTITY, LinkFailure(k=2, mode="derate"), ThermalDerating(region="upper")):
            assert scenario_from_dict(model.to_dict()) == model

    def test_scenario_from_dict_requires_kind(self):
        with pytest.raises(ScenarioError, match="missing its 'kind'"):
            scenario_from_dict({"k": 1})

    def test_canonical_scenario_key_completes_defaults(self):
        assert canonical_scenario_key("link_failure(k=2)") == (
            "link_failure(k=2,mode=remove,derate_factor=0.5)"
        )
        assert canonical_scenario_key("identity") == "identity"
        assert canonical_scenario_key(LinkFailure()) == LinkFailure().key
