"""Tests for the experiment runner."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ALGORITHMS, compare_algorithms, make_problem, run_algorithm
from repro.moo.termination import Budget


@pytest.fixture(scope="module")
def smoke_experiment():
    return ExperimentConfig.smoke()


class TestMakeProblem:
    def test_problem_matches_request(self, smoke_experiment):
        problem = make_problem(smoke_experiment, "BFS", 3)
        assert problem.num_objectives == 3
        assert problem.workload.name == "BFS"
        assert problem.config == smoke_experiment.platform


class TestRunAlgorithm:
    @pytest.mark.parametrize("algorithm", ["MOELA", "MOEA/D", "MOOS", "MOO-STAGE", "NSGA-II"])
    def test_every_algorithm_runs(self, smoke_experiment, algorithm):
        problem = make_problem(smoke_experiment, "BFS", 3)
        result = run_algorithm(algorithm, problem, smoke_experiment, budget=Budget.evaluations(60))
        assert result.evaluations > 0
        assert result.objectives.shape[1] == 3
        assert len(result.history) >= 1

    def test_unknown_algorithm_rejected(self, smoke_experiment):
        problem = make_problem(smoke_experiment, "BFS", 3)
        with pytest.raises(ValueError):
            run_algorithm("SIMULATED-ANNEALING", problem, smoke_experiment)

    def test_algorithm_list_is_published(self):
        assert "MOELA" in ALGORITHMS
        assert "MOEA/D" in ALGORITHMS and "MOOS" in ALGORITHMS

    def test_seeds_are_deterministic(self, smoke_experiment):
        problem_a = make_problem(smoke_experiment, "BFS", 3)
        problem_b = make_problem(smoke_experiment, "BFS", 3)
        result_a = run_algorithm("MOEA/D", problem_a, smoke_experiment, budget=Budget.evaluations(60))
        result_b = run_algorithm("MOEA/D", problem_b, smoke_experiment, budget=Budget.evaluations(60))
        assert np.allclose(result_a.objectives, result_b.objectives)


class TestCompareAlgorithms:
    def test_compare_runs_all_requested(self, smoke_experiment):
        results = compare_algorithms(["MOELA", "MOEA/D"], smoke_experiment, "BFS", 3,
                                     budget=Budget.evaluations(60))
        assert set(results) == {"MOELA", "MOEA/D"}
        for result in results.values():
            assert result.objectives.shape[1] == 3
