"""Tests for shard compaction (rollup file, manifest index, transparent reads).

Acceptance criteria: the rollup reproduces identical Table I/II output as
loose shards (byte-for-byte on the rendered text and on every stored value),
and a campaign resumes correctly from a compacted directory.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.compaction import compact_campaign
from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.runner import (
    ROLLUP_NAME,
    campaign_status,
    cell_payload,
    load_campaign_results,
    load_manifest,
    run_campaign,
)
from repro.experiments.tables import aggregate_campaign, format_table
from repro.utils.serialization import write_json_atomic


@pytest.fixture()
def campaign():
    return CampaignConfig(
        experiment=replace(ExperimentConfig.smoke(), applications=("BFS", "BP")),
        algorithms=("MOEA/D", "NSGA-II"),
        max_evaluations=40,
    )


@pytest.fixture()
def finished_dir(campaign, tmp_path):
    run_campaign(campaign, tmp_path)
    return tmp_path


def _tables_text(output_dir):
    aggregate = aggregate_campaign(output_dir)
    return format_table(aggregate.table1()) + "\n\n" + format_table(aggregate.table2())


class TestCompactCampaign:
    def test_rolls_every_shard_and_deletes_loose_files(self, campaign, finished_dir):
        summary = compact_campaign(finished_dir)
        assert summary.total == 4 and len(summary.compacted) == 4
        assert not summary.pending and len(summary.removed_shards) == 4
        assert summary.rollup_path.exists()
        assert not list(finished_dir.glob("cell_*.json"))
        manifest = load_manifest(finished_dir)
        shard_names = {entry["shard"] for entry in manifest["cells"]}
        assert {f"cell_{key}.json" for key in manifest["rollup"]["cells"]} == shard_names

    def test_aggregate_output_identical_before_and_after(self, campaign, finished_dir):
        """Byte-for-byte acceptance criterion."""
        before_text = _tables_text(finished_dir)
        before = {c.key: r for c, r in load_campaign_results(finished_dir)}
        before_stats = aggregate_campaign(finished_dir).routing_cache

        compact_campaign(finished_dir)

        assert _tables_text(finished_dir) == before_text
        after = {c.key: r for c, r in load_campaign_results(finished_dir)}
        assert before.keys() == after.keys()
        for key in before:
            np.testing.assert_array_equal(before[key].objectives, after[key].objectives)
            np.testing.assert_array_equal(before[key].final_front(), after[key].final_front())
            assert before[key].evaluations == after[key].evaluations
            assert len(before[key].history) == len(after[key].history)
        # The manifest summary (recomputed on the next campaign run) and the
        # stored one stay in agreement.
        assert aggregate_campaign(finished_dir).routing_cache == before_stats

    def test_status_reports_compacted_cells_complete(self, finished_dir):
        compact_campaign(finished_dir)
        assert all(campaign_status(finished_dir).values())

    def test_resume_from_compacted_directory_skips_everything(self, campaign, finished_dir):
        compact_campaign(finished_dir)
        resumed = run_campaign(campaign, finished_dir)
        assert resumed.executed == [] and len(resumed.skipped) == 4
        # The rollup record survived the manifest rewrite.
        assert load_manifest(finished_dir)["rollup"]["cells"]

    def test_single_cell_read_uses_the_byte_range_index(self, finished_dir):
        compact_campaign(finished_dir)
        manifest = load_manifest(finished_dir)
        rollup = manifest["rollup"]
        cells = list(load_campaign_results(finished_dir))
        assert len(cells) == 4
        # Each index entry parses standalone via seek+read.
        for key, (offset, length) in rollup["cells"].items():
            with open(finished_dir / ROLLUP_NAME, "rb") as handle:
                handle.seek(offset)
                payload = json.loads(handle.read(length))
            assert payload["cell"]["seed"] >= 0

    def test_partial_campaign_compacts_incrementally(self, campaign, finished_dir):
        # Simulate a half-finished campaign: two shards missing.
        victims = [c for c in run_campaign(campaign, finished_dir).cells][:2]
        for victim in victims:
            (finished_dir / victim.shard_name).unlink()
        first = compact_campaign(finished_dir)
        assert len(first.compacted) == 2 and len(first.pending) == 2

        # Resume executes only the missing cells, then a second compaction
        # carries the old rollup entries over and folds the new shards in.
        resumed = run_campaign(campaign, finished_dir)
        assert sorted(resumed.executed) == sorted(v.key for v in victims)
        second = compact_campaign(finished_dir)
        assert len(second.carried_over) == 2 and len(second.compacted) == 2
        assert len(dict(load_campaign_results(finished_dir))) == 4

    def test_fresh_loose_shard_supersedes_stale_rollup_entry(self, campaign, finished_dir):
        compact_campaign(finished_dir)
        cells = run_campaign(campaign, finished_dir).cells
        target = cells[0]
        payload = cell_payload(finished_dir, target, load_manifest(finished_dir).get("rollup"))
        payload["evaluations"] = 999  # a re-run would write a fresh shard
        write_json_atomic(payload, finished_dir / target.shard_name)

        loaded = {c.key: r for c, r in load_campaign_results(finished_dir)}
        assert loaded[target.key].evaluations == 999

        # Re-compaction folds the fresh shard in, replacing the stale entry.
        summary = compact_campaign(finished_dir)
        assert target.key in summary.compacted
        reloaded = {c.key: r for c, r in load_campaign_results(finished_dir)}
        assert reloaded[target.key].evaluations == 999

    def test_nothing_to_compact_leaves_directory_untouched(self, campaign, tmp_path):
        # Manifest exists (written before any cell) but no cell completed.
        cells_dir = tmp_path / "empty"
        summary = run_campaign(replace(campaign, max_evaluations=40), cells_dir)
        for cell in summary.cells:
            (cells_dir / cell.shard_name).unlink()
        outcome = compact_campaign(cells_dir)
        assert outcome.total == 0 and len(outcome.pending) == 4
        assert not (cells_dir / ROLLUP_NAME).exists()
        assert "rollup" not in load_manifest(cells_dir)

    def test_compaction_is_idempotent(self, finished_dir):
        compact_campaign(finished_dir)
        text = _tables_text(finished_dir)
        again = compact_campaign(finished_dir)
        assert len(again.carried_over) == 4 and not again.compacted
        assert _tables_text(finished_dir) == text

    def test_recompaction_writes_a_new_generation_and_retires_the_old(self, finished_dir):
        """The live index's file is never overwritten: each compaction writes
        a fresh generation, so a crash before the manifest rewrite leaves the
        previous rollup fully readable."""
        first = compact_campaign(finished_dir)
        assert first.rollup_path.name == ROLLUP_NAME
        second = compact_campaign(finished_dir)
        assert second.rollup_path.name == "rollup.2.jsonl"
        manifest = load_manifest(finished_dir)
        assert manifest["rollup"]["file"] == "rollup.2.jsonl"
        assert manifest["rollup"]["generation"] == 2
        assert not (finished_dir / ROLLUP_NAME).exists()  # superseded file retired
        assert len(dict(load_campaign_results(finished_dir))) == 4

    def test_crash_between_rollup_write_and_manifest_keeps_old_index_valid(self, finished_dir):
        """Simulate the torn re-compaction: a new generation landed on disk
        but the manifest still points at the old one — every read must keep
        working off the old, untouched generation."""
        compact_campaign(finished_dir)
        manifest_before = load_manifest(finished_dir)
        text = _tables_text(finished_dir)
        # The next generation's file appears (as a crash mid-compaction would
        # leave it) without the manifest update.
        (finished_dir / "rollup.2.jsonl").write_text('{"not": "indexed"}\n')
        assert load_manifest(finished_dir) == manifest_before
        assert _tables_text(finished_dir) == text
        assert all(campaign_status(finished_dir).values())

    def test_compaction_during_a_running_campaign_survives_the_final_manifest_rewrite(
        self, campaign, tmp_path, monkeypatch
    ):
        """compact_campaign is documented safe on a still-running directory:
        the campaign's end-of-run manifest rewrite must re-read (not clobber)
        a rollup record added while its cells were executing."""
        import repro.experiments.runner as runner_mod

        original = runner_mod._run_campaign_cell
        compacted_during_run: list[int] = []

        def cell_then_compact(campaign_cfg, cell, output_dir, on_event=None, event_log=None, **kwargs):
            # Compact synchronously right after the first cell completes,
            # while the remaining cells are still pending — deterministic
            # "concurrent repro compact" against the inline campaign body.
            outcome = original(campaign_cfg, cell, output_dir,
                               on_event=on_event, event_log=event_log, **kwargs)
            if not compacted_during_run:
                compacted_during_run.append(compact_campaign(tmp_path).total)
            return outcome

        monkeypatch.setattr(runner_mod, "_run_campaign_cell", cell_then_compact)
        run_campaign(campaign, tmp_path)
        monkeypatch.undo()

        assert compacted_during_run == [1]  # compacted after the first cell only
        manifest = load_manifest(tmp_path)
        assert "rollup" in manifest and len(manifest["rollup"]["cells"]) == 1
        assert all(campaign_status(tmp_path).values())
        resumed = run_campaign(campaign, tmp_path)
        assert resumed.executed == [] and len(resumed.skipped) == 4
