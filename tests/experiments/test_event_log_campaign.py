"""Integration tests for async campaign execution over the durable event log.

Covers the tentpole acceptance criteria: a pooled campaign streams
shard/iteration events to the caller through the manifest-side JSONL log,
seeded results are bit-identical with the log on or off (rtol=0), the
non-blocking submit/poll handle works, and a killed + resumed campaign's log
replays a consistent, monotonic event sequence.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.runner import (
    campaign_cells,
    load_campaign_results,
    run_campaign,
    submit_campaign,
)
from repro.study.event_log import EVENT_LOG_NAME, read_event_log
from repro.study.events import StudyEvent


@pytest.fixture()
def campaign():
    """2 algorithms x 2 applications x 1 scenario, tiny budget."""
    return CampaignConfig(
        experiment=replace(ExperimentConfig.smoke(), applications=("BFS", "BP")),
        algorithms=("MOEA/D", "NSGA-II"),
        max_evaluations=40,
    )


def _cell_stream(events, key):
    """The event kinds of one cell, in stream order."""
    kinds = []
    for event in events:
        if event.payload.get("key") == key:
            kinds.append(event.kind)
        elif event.kind in ("run_started", "iteration", "run_finished"):
            # Optimiser events carry identity, not the cell key.
            algorithm, application, _ = key.split("_")
            if (
                event.algorithm is not None
                and event.application == application
                and event.algorithm.replace("/", "-") == algorithm
            ):
                kinds.append(event.kind)
    return kinds


def assert_consistent_replay(records):
    """The durability invariant: per-origin sequences split into incarnations
    at each ``seq == 0`` and every incarnation counts up by exactly one."""
    by_origin: dict[str, list[int]] = {}
    for record in records:
        by_origin.setdefault(record.origin, []).append(record.seq)
    for origin, seqs in by_origin.items():
        expected = 0
        for seq in seqs:
            if seq == 0:
                expected = 0  # new incarnation (resume / re-run)
            assert seq == expected, f"origin {origin!r}: seq {seq} != {expected} in {seqs}"
            expected += 1


class TestPooledEventStream:
    def test_pooled_campaign_streams_cell_events_through_the_log(self, campaign, tmp_path):
        """Acceptance criterion: workers>1 streams shard/iteration events."""
        events: list[StudyEvent] = []
        run_campaign(replace(campaign, max_workers=2), tmp_path, on_event=events.append)

        kinds = [e.kind for e in events]
        assert kinds[0] == "campaign_started" and kinds[-1] == "campaign_finished"
        assert kinds.count("shard_started") == 4
        assert kinds.count("shard_finished") == 4
        # The whole point of the log: per-iteration optimiser events cross
        # the process-pool boundary.
        assert kinds.count("run_started") == 4 and kinds.count("run_finished") == 4
        assert kinds.count("iteration") > 0
        # Worker-side starts, not parent-side submissions.
        assert not any(e.payload.get("queued") for e in events if e.kind == "shard_started")

        # Every received event round-tripped through the durable log.
        records = read_event_log(tmp_path / EVENT_LOG_NAME)
        assert len(records) == len(events)
        assert_consistent_replay(records)

    def test_inline_and_pooled_emit_identical_per_cell_streams(self, campaign, tmp_path):
        inline_events: list[StudyEvent] = []
        pooled_events: list[StudyEvent] = []
        run_campaign(campaign, tmp_path / "inline", on_event=inline_events.append)
        run_campaign(
            replace(campaign, max_workers=2), tmp_path / "pool", on_event=pooled_events.append
        )
        for cell in campaign_cells(campaign):
            assert _cell_stream(inline_events, cell.key) == _cell_stream(pooled_events, cell.key)

    def test_pool_without_log_keeps_legacy_submission_events(self, campaign, tmp_path):
        events: list[StudyEvent] = []
        run_campaign(
            replace(campaign, max_workers=2, event_log=False), tmp_path, on_event=events.append
        )
        kinds = [e.kind for e in events]
        assert "iteration" not in kinds  # callbacks cannot cross the pool
        started = [e for e in events if e.kind == "shard_started"]
        assert len(started) == 4 and all(e.payload.get("queued") for e in started)
        assert not (tmp_path / EVENT_LOG_NAME).exists()

    def test_shard_finished_events_carry_counters(self, campaign, tmp_path):
        events: list[StudyEvent] = []
        run_campaign(replace(campaign, max_workers=2), tmp_path, on_event=events.append)
        finished = [e for e in events if e.kind == "shard_finished"]
        assert {e.payload["key"] for e in finished} == {c.key for c in campaign_cells(campaign)}
        for event in finished:
            assert event.evaluations == 40
            assert event.payload["routing_cache"]["requests"] > 0


class TestEventLogDeterminism:
    def test_results_bit_identical_with_log_on_or_off(self, campaign, tmp_path):
        """Acceptance criterion at rtol=0: the log is observation-only."""
        run_campaign(replace(campaign, event_log=True, max_workers=2), tmp_path / "on")
        run_campaign(replace(campaign, event_log=False), tmp_path / "off")
        on = {c.key: r for c, r in load_campaign_results(tmp_path / "on")}
        off = {c.key: r for c, r in load_campaign_results(tmp_path / "off")}
        assert on.keys() == off.keys()
        for key in on:
            np.testing.assert_array_equal(on[key].objectives, off[key].objectives)
            np.testing.assert_array_equal(on[key].final_front(), off[key].final_front())
            assert on[key].evaluations == off[key].evaluations


class TestCampaignExecutionHandle:
    def test_submit_poll_wait(self, campaign, tmp_path):
        execution = submit_campaign(replace(campaign, max_workers=2), tmp_path)
        progress = execution.progress()
        assert progress["cells"] == 4  # poll works while running
        summary = execution.wait(timeout=600)
        assert execution.done()
        assert len(summary.executed) == 4
        final = execution.progress()
        assert final == {
            "cells": 4, "done": 4, "executed": 4, "skipped": 0,
            "running": 0, "evaluations": 160, "finished": True,
        }

    def test_events_iterator_yields_full_stream_then_ends(self, campaign, tmp_path):
        execution = submit_campaign(campaign, tmp_path)
        kinds = [event.kind for event in execution.events()]
        assert kinds[0] == "campaign_started" and kinds[-1] == "campaign_finished"
        assert kinds.count("shard_finished") == 4
        summary = execution.wait(timeout=60)  # returns immediately after events() drained
        assert len(summary.executed) == 4

    def test_subscriber_is_pumped_during_wait(self, campaign, tmp_path):
        events: list[StudyEvent] = []
        execution = submit_campaign(campaign, tmp_path, on_event=events.append)
        execution.wait(timeout=600)
        assert [e.kind for e in events][0] == "campaign_started"
        assert [e.kind for e in events][-1] == "campaign_finished"

    def test_progress_counts_queued_submissions_without_the_log(self, campaign, tmp_path):
        """In the no-log pool path worker-side starts are unobservable, so
        queued submissions must count as started — otherwise 'running' would
        read 0 for the whole campaign."""
        execution = submit_campaign(
            replace(campaign, max_workers=2, event_log=False), tmp_path
        )
        execution.wait(timeout=600)
        final = execution.progress()
        assert final["executed"] == 4 and final["running"] == 0 and final["finished"]

    def test_wait_reraises_campaign_errors(self, campaign, tmp_path):
        run_campaign(campaign, tmp_path)
        other = replace(campaign, algorithms=("NSGA-II",))
        with pytest.raises(ValueError, match="different campaign grid"):
            submit_campaign(other, tmp_path).wait(timeout=600)


class TestDurabilityAcrossKillAndResume:
    def test_killed_and_resumed_campaign_replays_consistently(self, campaign, tmp_path):
        """Simulate a SIGKILL mid-campaign: two cells' shards never landed and
        the log's final record was torn mid-write.  The resumed campaign must
        append to the same log, and the full replay must be a consistent,
        monotonic sequence with exactly one torn record skipped."""
        summary = run_campaign(replace(campaign, max_workers=2), tmp_path)
        log_path = tmp_path / EVENT_LOG_NAME
        victims = summary.cells[:2]
        for victim in victims:
            summary.shard_path(victim.key).unlink()
        # Tear the last record as a kill mid-``write`` would.
        log_path.write_bytes(log_path.read_bytes()[:-7])

        events: list[StudyEvent] = []
        resumed = run_campaign(replace(campaign, max_workers=2), tmp_path, on_event=events.append)
        assert sorted(resumed.executed) == sorted(v.key for v in victims)

        # The resumed invocation's subscribers saw only its own events.
        kinds = [e.kind for e in events]
        assert kinds[0] == "campaign_started" and kinds[-1] == "campaign_finished"
        assert kinds.count("shard_skipped") == 2 and kinds.count("shard_finished") == 2

        # Whole-log replay: both invocations, consistent and monotonic.
        from repro.study.event_log import EventLogReader

        reader = EventLogReader(log_path)
        records = reader.poll()
        assert reader.corrupt_lines == 1  # exactly the torn record
        assert_consistent_replay(records)
        campaign_level = [r for r in records if r.origin == "campaign"]
        assert [r.event.kind for r in campaign_level][0] == "campaign_started"
        # Two invocations bracket the log; the first's campaign_finished was
        # the record the kill tore, so only the resumed one's survives.
        assert sum(1 for r in campaign_level if r.event.kind == "campaign_started") == 2
        assert campaign_level[-1].event.kind == "campaign_finished"
        # Every cell's events are present for both incarnations where re-run.
        finished_keys = [
            r.event.payload["key"] for r in records if r.event.kind == "shard_finished"
        ]
        for victim in victims:
            assert finished_keys.count(victim.key) >= 1
        # And the resumed directory is complete: every cell loads.
        assert len(dict(load_campaign_results(tmp_path))) == 4
