"""Tests for the sharded campaign engine (grid fan-out, manifest, resume)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.config import CampaignConfig, ExperimentConfig, PARALLEL_EVALUATION_MIN_TILES
from repro.experiments.runner import (
    MANIFEST_NAME,
    CampaignCell,
    campaign_cells,
    campaign_status,
    load_campaign_results,
    load_manifest,
    run_campaign,
)
from repro.noc.platform import PlatformConfig


@pytest.fixture()
def campaign():
    """2 algorithms x 2 applications x 1 scenario, tiny budget."""
    return CampaignConfig(
        experiment=replace(ExperimentConfig.smoke(), applications=("BFS", "BP")),
        algorithms=("MOEA/D", "NSGA-II"),
        max_evaluations=40,
    )


class TestCampaignCells:
    def test_grid_is_full_cross_product(self, campaign):
        cells = campaign_cells(campaign)
        keys = {(c.algorithm, c.application, c.num_objectives) for c in cells}
        assert keys == {
            (alg, app, m)
            for alg in campaign.algorithms
            for app in campaign.experiment.applications
            for m in campaign.experiment.objective_counts
        }

    def test_cell_keys_are_filesystem_safe(self, campaign):
        for cell in campaign_cells(campaign):
            assert "/" not in cell.key and "/" not in cell.shard_name

    def test_unknown_algorithm_rejected(self, campaign):
        with pytest.raises(ValueError):
            campaign_cells(replace(campaign, algorithms=("SIMULATED-ANNEALING",)))

    def test_empty_algorithms_means_all(self, campaign):
        cells = campaign_cells(replace(campaign, algorithms=()))
        assert {c.algorithm for c in cells} == {"MOELA", "MOEA/D", "MOOS", "MOO-STAGE", "NSGA-II"}

    def test_cell_round_trips_through_dict(self, campaign):
        for cell in campaign_cells(campaign):
            assert CampaignCell.from_dict(cell.to_dict()) == cell


class TestRunCampaign:
    def test_runs_every_cell_and_writes_shards(self, campaign, tmp_path):
        summary = run_campaign(campaign, tmp_path)
        assert len(summary.executed) == 4 and not summary.skipped
        assert (tmp_path / MANIFEST_NAME).exists()
        assert all(campaign_status(tmp_path).values())
        loaded = dict(load_campaign_results(tmp_path))
        assert len(loaded) == 4
        for cell, result in loaded.items():
            assert result.evaluations == 40
            assert result.objectives.shape[1] == cell.num_objectives

    def test_manifest_covers_grid_before_cells_complete(self, campaign, tmp_path):
        run_campaign(campaign, tmp_path)
        manifest = load_manifest(tmp_path)
        assert [CampaignCell.from_dict(e) for e in manifest["cells"]] == campaign_cells(campaign)
        assert manifest["cell_budget"] == 40

    def test_resume_skips_completed_and_reruns_deleted_shard(self, campaign, tmp_path):
        """Acceptance criterion: delete one shard, resume runs only that cell."""
        summary = run_campaign(campaign, tmp_path)
        victim = summary.cells[0]
        shard_mtimes = {c.key: summary.shard_path(c.key).stat().st_mtime_ns for c in summary.cells}
        summary.shard_path(victim.key).unlink()

        resumed = run_campaign(campaign, tmp_path)
        assert resumed.executed == [victim.key]
        assert sorted(resumed.skipped) == sorted(
            c.key for c in summary.cells if c.key != victim.key
        )
        for cell in summary.cells:
            if cell.key != victim.key:
                assert resumed.shard_path(cell.key).stat().st_mtime_ns == shard_mtimes[cell.key]
        assert all(campaign_status(tmp_path).values())

    def test_resume_false_reruns_everything(self, campaign, tmp_path):
        run_campaign(campaign, tmp_path)
        rerun = run_campaign(replace(campaign, resume=False), tmp_path)
        assert len(rerun.executed) == 4 and not rerun.skipped

    def test_partial_shard_is_rerun(self, campaign, tmp_path):
        summary = run_campaign(campaign, tmp_path)
        truncated = summary.shard_path(summary.cells[0].key)
        truncated.write_text('{"cell": ')  # simulate a non-atomic write / corruption
        resumed = run_campaign(campaign, tmp_path)
        assert resumed.executed == [summary.cells[0].key]

    def test_different_grid_in_same_dir_rejected(self, campaign, tmp_path):
        run_campaign(campaign, tmp_path)
        other = replace(campaign, algorithms=("NSGA-II",))
        with pytest.raises(ValueError):
            run_campaign(other, tmp_path)

    def test_different_budget_in_same_dir_rejected(self, campaign, tmp_path):
        """Resuming with another per-cell budget would silently mix budgets."""
        run_campaign(campaign, tmp_path)
        with pytest.raises(ValueError, match="budget"):
            run_campaign(replace(campaign, max_evaluations=400), tmp_path)

    def test_non_dict_shard_json_is_rerun(self, campaign, tmp_path):
        summary = run_campaign(campaign, tmp_path)
        foreign = summary.shard_path(summary.cells[0].key)
        foreign.write_text("[]")  # valid JSON, wrong shape
        resumed = run_campaign(campaign, tmp_path)
        assert resumed.executed == [summary.cells[0].key]

    def test_results_are_deterministic_per_cell(self, campaign, tmp_path):
        run_campaign(campaign, tmp_path / "a")
        run_campaign(campaign, tmp_path / "b")
        for (cell_a, result_a), (_, result_b) in zip(
            load_campaign_results(tmp_path / "a"), load_campaign_results(tmp_path / "b")
        ):
            np.testing.assert_array_equal(result_a.objectives, result_b.objectives)

    def test_process_pool_path_matches_inline(self, campaign, tmp_path):
        run_campaign(campaign, tmp_path / "inline")
        run_campaign(replace(campaign, max_workers=2), tmp_path / "pool")
        inline = {c.key: r.objectives for c, r in load_campaign_results(tmp_path / "inline")}
        pooled = {c.key: r.objectives for c, r in load_campaign_results(tmp_path / "pool")}
        assert inline.keys() == pooled.keys()
        for key in inline:
            np.testing.assert_array_equal(inline[key], pooled[key])


def _break_even_platform() -> PlatformConfig:
    """An 8x8x4 (256-tile) platform, the projected pool break-even scale."""
    return PlatformConfig(
        n=8, layers=4, num_cpus=32, num_gpus=160, num_llcs=64,
        num_planar_links=448, num_vertical_links=192, name="bench-8x8x4",
    )


class TestParallelEvaluationPolicy:
    def test_auto_disabled_for_paper_platform(self):
        """PR-4 finding: the pool path is *slower* than the vectorized serial
        path at 64 tiles, so the paper platform must no longer auto-enable it
        (see docs/performance.md)."""
        experiment = replace(ExperimentConfig.paper_scale(), applications=("BFS",))
        assert experiment.platform.num_tiles < PARALLEL_EVALUATION_MIN_TILES
        assert not CampaignConfig(experiment=experiment, max_workers=1).resolve_parallel_evaluation()

    def test_auto_enabled_at_break_even_scale_when_serial(self):
        experiment = replace(
            ExperimentConfig.paper_scale(), platform=_break_even_platform(), applications=("BFS",)
        )
        assert experiment.platform.num_tiles >= PARALLEL_EVALUATION_MIN_TILES
        assert CampaignConfig(experiment=experiment, max_workers=1).resolve_parallel_evaluation()

    def test_auto_disabled_when_campaign_fans_out(self):
        experiment = replace(
            ExperimentConfig.paper_scale(), platform=_break_even_platform(), applications=("BFS",)
        )
        assert not CampaignConfig(experiment=experiment, max_workers=4).resolve_parallel_evaluation()

    def test_auto_disabled_for_small_platforms(self):
        assert not CampaignConfig(experiment=ExperimentConfig.smoke()).resolve_parallel_evaluation()

    def test_explicit_override_wins(self):
        smoke = ExperimentConfig.smoke()
        assert CampaignConfig(experiment=smoke, parallel_evaluation=True).resolve_parallel_evaluation()
        experiment = replace(ExperimentConfig.paper_scale(), applications=("BFS",))
        assert not CampaignConfig(
            experiment=experiment, parallel_evaluation=False
        ).resolve_parallel_evaluation()

    def test_invalid_settings_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(experiment=ExperimentConfig.smoke(), max_workers=0)
        with pytest.raises(ValueError):
            CampaignConfig(experiment=ExperimentConfig.smoke(), max_evaluations=0)
