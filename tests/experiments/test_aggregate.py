"""Tests for campaign routing-cache stats and the shard -> tables aggregation."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.runner import (
    MANIFEST_NAME,
    aggregate_routing_cache_stats,
    campaign_cells,
    load_manifest,
    run_campaign,
)
from repro.experiments.tables import CampaignAggregate, aggregate_campaign


@pytest.fixture()
def campaign():
    """2 algorithms x 2 applications x 1 scenario, tiny budget."""
    return CampaignConfig(
        experiment=replace(ExperimentConfig.smoke(), applications=("BFS", "BP")),
        algorithms=("MOEA/D", "NSGA-II"),
        max_evaluations=40,
    )


@pytest.fixture()
def finished_campaign(campaign, tmp_path):
    summary = run_campaign(campaign, tmp_path)
    return campaign, summary


class TestRoutingCacheStats:
    def test_every_shard_records_engine_counters(self, finished_campaign):
        campaign, summary = finished_campaign
        for cell in summary.cells:
            payload = json.loads((summary.output_dir / cell.shard_name).read_text())
            stats = payload["routing_cache"]
            assert stats["enabled"]
            assert stats["requests"] == stats["hits"] + stats["misses"] + stats["incremental_repairs"]
            assert stats["requests"] > 0

    def test_manifest_summarises_the_whole_grid(self, finished_campaign):
        campaign, summary = finished_campaign
        manifest = load_manifest(summary.output_dir)
        stats = manifest["routing_cache"]
        assert stats["cells_counted"] == len(summary.cells)
        assert stats["cells_missing_stats"] == 0
        assert stats["hits"] > 0  # placement-only moves must have hit the cache
        assert stats["requests"] == stats["hits"] + stats["misses"] + stats["incremental_repairs"]
        assert 0.0 < stats["hit_rate"] <= 1.0
        assert summary.routing_cache == stats

    def test_resume_preserves_manifest_stats(self, finished_campaign):
        campaign, summary = finished_campaign
        resumed = run_campaign(campaign, summary.output_dir)
        assert not resumed.executed
        manifest = load_manifest(summary.output_dir)
        assert manifest["routing_cache"] == summary.routing_cache

    def test_escape_hatch_disables_engine_in_cells(self, campaign, tmp_path):
        disabled = replace(campaign, routing_cache=False)
        summary = run_campaign(disabled, tmp_path)
        manifest = load_manifest(summary.output_dir)
        stats = manifest["routing_cache"]
        assert stats["requests"] == 0 and stats["hit_rate"] == 0.0

    def test_aggregation_tolerates_legacy_shards(self, finished_campaign):
        campaign, summary = finished_campaign
        cells = campaign_cells(campaign)
        legacy = summary.output_dir / cells[0].shard_name
        payload = json.loads(legacy.read_text())
        del payload["routing_cache"]
        legacy.write_text(json.dumps(payload))
        stats = aggregate_routing_cache_stats(summary.output_dir, cells)
        assert stats["cells_counted"] == len(cells) - 1
        assert stats["cells_missing_stats"] == 1

    def test_routing_cache_flag_does_not_change_results(self, campaign, tmp_path):
        on = run_campaign(campaign, tmp_path / "on")
        off = run_campaign(replace(campaign, routing_cache=False), tmp_path / "off")
        for cell in on.cells:
            payload_on = json.loads((on.output_dir / cell.shard_name).read_text())
            payload_off = json.loads((off.output_dir / cell.shard_name).read_text())
            np.testing.assert_allclose(
                np.asarray(payload_on["objectives"]),
                np.asarray(payload_off["objectives"]),
                rtol=1e-12,
            )
            assert payload_on["designs"] == payload_off["designs"]


class TestAggregateCampaign:
    def test_runs_grouped_by_application_and_scenario(self, finished_campaign):
        campaign, summary = finished_campaign
        aggregate = aggregate_campaign(summary.output_dir)
        assert isinstance(aggregate, CampaignAggregate)
        assert set(aggregate.runs) == {("BFS", 3), ("BP", 3)}
        for results in aggregate.runs.values():
            assert set(results) == {"MOEA/D", "NSGA-II"}
        assert aggregate.algorithms == ("MOEA/D", "NSGA-II")
        assert aggregate.objective_counts == (3,)
        assert aggregate.routing_cache["hits"] > 0

    def test_target_prefers_moela_else_first(self, finished_campaign):
        campaign, summary = finished_campaign
        aggregate = aggregate_campaign(summary.output_dir)
        assert aggregate.target == "MOEA/D"  # no MOELA in this grid
        assert aggregate.baselines == ("NSGA-II",)

    def test_tables_render_without_rerunning(self, finished_campaign):
        campaign, summary = finished_campaign
        aggregate = aggregate_campaign(summary.output_dir)
        table1 = aggregate.table1()
        table2 = aggregate.table2()
        assert {cell.application for cell in table1.cells} == {"BFS", "BP"}
        assert all(cell.baseline == "NSGA-II" for cell in table1.cells)
        assert all(np.isfinite(cell.value) and cell.value > 0 for cell in table1.cells)
        assert {cell.application for cell in table2.cells} == {"BFS", "BP"}

    def test_partial_campaign_renders_comparable_cells_only(self, finished_campaign):
        campaign, summary = finished_campaign
        # Drop one algorithm's shard for BP: the BP comparison disappears,
        # the BFS one stays.
        for cell in summary.cells:
            if cell.application == "BP" and cell.algorithm == "NSGA-II":
                (summary.output_dir / cell.shard_name).unlink()
        aggregate = aggregate_campaign(summary.output_dir)
        table1 = aggregate.table1()
        assert {cell.application for cell in table1.cells} == {"BFS"}

    def test_strict_builders_still_raise_on_missing_algorithms(self, finished_campaign):
        """build_table1's experiment-driven path keeps its KeyError contract."""
        campaign, summary = finished_campaign
        from repro.experiments.tables import build_table1

        aggregate = aggregate_campaign(summary.output_dir)
        with pytest.raises(KeyError, match="MOELA"):
            build_table1(campaign.experiment, runs=aggregate.runs)

    def test_empty_campaign_raises_on_target(self, campaign, tmp_path):
        cells = campaign_cells(campaign)
        from repro.experiments.runner import _manifest_payload
        from repro.utils.serialization import write_json_atomic

        write_json_atomic(_manifest_payload(campaign, cells), tmp_path / MANIFEST_NAME)
        aggregate = aggregate_campaign(tmp_path)
        with pytest.raises(ValueError, match="no completed shards"):
            _ = aggregate.target
