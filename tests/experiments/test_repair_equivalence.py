"""Seeded-equivalence tests for the opt-in repair path (the PR's acceptance bar).

Two bit-identity guarantees are pinned at rtol=0:

* ``repair_infeasible=False`` (the default) changes *nothing*: every
  registered optimizer's seeded run, every campaign shard and the durable
  event log are bit-compatible with pre-repair behaviour, and no ``repair``
  keys leak into default artifacts (old directories resume);
* because every optimizer's move operators are feasible-by-construction,
  even ``repair_infeasible=True`` leaves seeded search trajectories
  bit-identical — the walk only runs on infeasible brood members, and the
  hook consumes no RNG when there are none.
"""

import json
from dataclasses import replace

import numpy as np

from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.runner import run_algorithm, run_campaign
from repro.study.registry import default_registry
from repro.workloads.registry import get_workload

from .test_scenario_equivalence import arrays_of, assert_bit_identical, smoke_campaign


def _run(algorithm, tiny_workload, **kwargs):
    from repro.core.problem import NocDesignProblem

    experiment = ExperimentConfig.smoke()
    problem = NocDesignProblem(tiny_workload, scenario=3)
    return run_algorithm(algorithm, problem, experiment, seed=13, **kwargs)


class TestEveryOptimizerUnchangedByDefault:
    def test_default_runs_carry_no_repair_metadata(self, tiny_workload):
        for name in default_registry().names():
            result = _run(name, tiny_workload)
            assert "repair" not in result.metadata, name

    def test_repair_off_is_bit_identical_to_default(self, tiny_workload):
        """Explicit repair_infeasible=False == not passing it at all, rtol=0."""
        for name in default_registry().names():
            default = _run(name, tiny_workload)
            explicit = _run(name, tiny_workload, repair_infeasible=False)
            np.testing.assert_allclose(
                default.objectives, explicit.objectives, rtol=0, atol=0, err_msg=name
            )
            assert default.evaluations == explicit.evaluations, name

    def test_repair_on_never_fires_on_feasible_broods(self, tiny_workload):
        """Move operators are feasible-by-construction, so even repair ON is
        bit-identical to OFF — the walk has nothing to repair and the hook
        consumes no RNG."""
        for name in default_registry().names():
            off = _run(name, tiny_workload)
            on = _run(name, tiny_workload, repair_infeasible=True)
            np.testing.assert_allclose(
                off.objectives, on.objectives, rtol=0, atol=0, err_msg=name
            )
            assert on.evaluations == off.evaluations, name
            assert on.metadata["repair"] == {"attempted": 0, "repaired": 0, "evaluations": 0}, name


def _event_fingerprint(output_dir):
    """The deterministic projection of the event log.

    Timing fields and the (path-dependent) output directory are dropped;
    everything else — the envelope, event kinds, iteration/evaluation
    counters and payloads — must match across equivalent campaigns.
    """
    lines = []
    for raw in (output_dir / "events.jsonl").read_text().splitlines():
        record = json.loads(raw)
        event = record.get("event", record)
        event.pop("elapsed_seconds", None)
        payload = event.get("payload")
        if isinstance(payload, dict):
            payload.pop("elapsed_seconds", None)
            payload.pop("seconds", None)
            payload.pop("output_dir", None)
        lines.append(record)
    return lines


class TestCampaignArtifactsUnchangedByDefault:
    def test_default_shards_and_manifest_have_no_repair_keys(self, tmp_path):
        run_campaign(smoke_campaign(), tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert "repair" not in manifest
        assert all("repair" not in entry for entry in manifest["cells"])
        for shard in tmp_path.glob("cell_*.json"):
            assert "repair" not in json.loads(shard.read_text())

    def test_repair_campaign_bit_identical_and_counted(self, tmp_path):
        """Repair ON: same numbers, same event sequence, zero walks fired —
        plus repair counters in every shard and a manifest rollup."""
        off = smoke_campaign()
        run_campaign(off, tmp_path / "off")
        run_campaign(replace(off, repair_infeasible=True), tmp_path / "on")
        assert_bit_identical(arrays_of(tmp_path / "off"), arrays_of(tmp_path / "on"))
        assert _event_fingerprint(tmp_path / "off") == _event_fingerprint(tmp_path / "on")
        manifest = json.loads((tmp_path / "on" / "manifest.json").read_text())
        assert manifest["repair"]["attempted"] == 0
        assert manifest["repair"]["cells_counted"] == 4
        for shard in (tmp_path / "on").glob("cell_*.json"):
            payload = json.loads(shard.read_text())
            assert payload["repair"] == {"attempted": 0, "repaired": 0, "evaluations": 0}

    def test_repair_campaign_resumes_default_directory(self, tmp_path):
        """Turning repair on must not invalidate an existing campaign dir."""
        campaign = smoke_campaign()
        summary = run_campaign(campaign, tmp_path)
        resumed = run_campaign(replace(campaign, repair_infeasible=True), tmp_path)
        assert not resumed.executed
        assert len(resumed.skipped) == len(summary.cells)
