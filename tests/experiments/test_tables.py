"""Tests for the Table I / Table II / Fig. 3 builders."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.tables import (
    BASELINES,
    build_figure3,
    build_table1,
    build_table2,
    format_figure3,
    format_table,
    run_all_comparisons,
)


@pytest.fixture(scope="module")
def smoke_runs():
    experiment = ExperimentConfig.smoke()
    runs = run_all_comparisons(experiment)
    return experiment, runs


class TestRunAllComparisons:
    def test_every_cell_has_all_algorithms(self, smoke_runs):
        experiment, runs = smoke_runs
        expected_keys = {
            (app, m) for app in experiment.applications for m in experiment.objective_counts
        }
        assert set(runs) == expected_keys
        for results in runs.values():
            assert set(results) == {"MOELA", *BASELINES}

    def test_progress_callback_invoked(self):
        experiment = ExperimentConfig.smoke()
        messages = []
        run_all_comparisons(experiment, algorithms=("MOELA",), progress=messages.append)
        assert len(messages) == len(experiment.applications) * len(experiment.objective_counts)


class TestTables:
    def test_table1_structure(self, smoke_runs):
        experiment, runs = smoke_runs
        table = build_table1(experiment, runs)
        assert set(table.applications()) == set(experiment.applications)
        assert len(table.cells) == (
            len(BASELINES) * len(experiment.applications) * len(experiment.objective_counts)
        )
        for cell in table.cells:
            assert np.isfinite(cell.value)
            assert cell.value >= 0

    def test_table2_structure(self, smoke_runs):
        experiment, runs = smoke_runs
        table = build_table2(experiment, runs)
        assert len(table.cells) == (
            len(BASELINES) * len(experiment.applications) * len(experiment.objective_counts)
        )
        for cell in table.cells:
            assert np.isfinite(cell.value)

    def test_column_average_consistency(self, smoke_runs):
        experiment, runs = smoke_runs
        table = build_table2(experiment, runs)
        baseline, objectives = table.columns()[0]
        values = [table.value(app, baseline, objectives) for app in table.applications()]
        assert table.column_average(baseline, objectives) == pytest.approx(np.mean(values))

    def test_missing_cell_lookup_raises(self, smoke_runs):
        experiment, runs = smoke_runs
        table = build_table1(experiment, runs)
        with pytest.raises(KeyError):
            table.value("BFS", "MOEA/D", 99)

    def test_figure3_structure(self, smoke_runs):
        experiment, runs = smoke_runs
        figure = build_figure3(experiment, runs)
        # Smoke config only runs 3 objectives, so the figure falls back to it.
        assert all(cell.num_objectives == 3 for cell in figure.cells)
        assert len(figure.cells) == len(BASELINES) * len(experiment.applications)
        for cell in figure.cells:
            assert np.isfinite(cell.value)

    def test_formatting_includes_rows_and_average(self, smoke_runs):
        experiment, runs = smoke_runs
        table = build_table1(experiment, runs)
        text = format_table(table)
        assert "Average" in text
        for app in experiment.applications:
            assert app in text
        figure_text = format_figure3(build_figure3(experiment, runs))
        assert "EDP" in figure_text
