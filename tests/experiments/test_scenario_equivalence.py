"""Seeded-equivalence tests for the scenario axis (the PR's acceptance bar).

Two bit-identity guarantees are pinned at rtol=0:

* adding the scenario axis changed *nothing* for identity campaigns — an
  identity-only campaign's shards, cell payloads and derived seeds are
  byte-compatible with the pre-scenario format, so old directories resume;
* a campaign with a fault axis is bit-identical across inline vs pooled cell
  execution, a kill/resume cycle, and shard compaction.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.compaction import compact_campaign
from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.runner import (
    campaign_cells,
    load_campaign_results,
    run_campaign,
)

FAULT_KEY = "link_failure(k=1,mode=remove,derate_factor=0.5)"


def smoke_campaign(scenarios=("identity",), **overrides) -> CampaignConfig:
    experiment = replace(
        ExperimentConfig.smoke(),
        applications=("BFS", "BP"),
        scenario_models=tuple(scenarios),
    )
    settings = {"algorithms": ("MOEA/D", "NSGA-II"), "max_evaluations": 40}
    settings.update(overrides)
    return CampaignConfig(experiment=experiment, **settings)


def arrays_of(output_dir):
    """Every float array a shard persists, keyed by cell."""
    out = {}
    for cell, result in load_campaign_results(output_dir):
        out[cell.key] = {
            "objectives": result.objectives,
            "fronts": [s.front for s in result.history],
            "eval_counts": [s.evaluations for s in result.history],
        }
    return out


def assert_bit_identical(a, b):
    assert a.keys() == b.keys()
    for key in a:
        np.testing.assert_allclose(a[key]["objectives"], b[key]["objectives"], rtol=0, atol=0)
        assert a[key]["eval_counts"] == b[key]["eval_counts"]
        assert len(a[key]["fronts"]) == len(b[key]["fronts"])
        for front_a, front_b in zip(a[key]["fronts"], b[key]["fronts"]):
            np.testing.assert_allclose(front_a, front_b, rtol=0, atol=0)


class TestIdentityAxisIsInvisible:
    """The scenario axis must not perturb pre-existing campaigns at all."""

    def test_identity_cells_serialize_without_scenario_field(self):
        for cell in campaign_cells(smoke_campaign()):
            assert cell.scenario == "identity"
            assert "scenario" not in cell.to_dict()
            assert FAULT_KEY not in cell.key

    def test_identity_seeds_unchanged_by_adding_fault_axis(self):
        """Faulted cells extend the grid; identity cells keep their seeds."""
        nominal = {
            (c.algorithm, c.application, c.num_objectives): c.seed
            for c in campaign_cells(smoke_campaign())
        }
        widened = campaign_cells(smoke_campaign(("identity", FAULT_KEY)))
        for cell in widened:
            if cell.scenario == "identity":
                assert cell.seed == nominal[(cell.algorithm, cell.application, cell.num_objectives)]
            else:
                assert cell.seed != nominal[(cell.algorithm, cell.application, cell.num_objectives)]

    def test_identity_campaign_bit_identical_to_default_config(self, tmp_path):
        """scenario_models=("identity",) is byte-for-byte the default grid."""
        explicit = smoke_campaign(("identity",))
        run_campaign(explicit, tmp_path / "explicit")
        implicit = CampaignConfig(
            experiment=replace(ExperimentConfig.smoke(), applications=("BFS", "BP")),
            algorithms=("MOEA/D", "NSGA-II"),
            max_evaluations=40,
        )
        run_campaign(implicit, tmp_path / "implicit")
        assert_bit_identical(arrays_of(tmp_path / "explicit"), arrays_of(tmp_path / "implicit"))
        explicit_manifest = json.loads((tmp_path / "explicit" / "manifest.json").read_text())
        implicit_manifest = json.loads((tmp_path / "implicit" / "manifest.json").read_text())
        assert explicit_manifest["cells"] == implicit_manifest["cells"]

    def test_old_manifest_without_scenario_field_resumes(self, tmp_path):
        """A pre-scenario directory (no "scenario" keys anywhere) is resumable."""
        campaign = smoke_campaign()
        summary = run_campaign(campaign, tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert all("scenario" not in entry for entry in manifest["cells"])
        resumed = run_campaign(campaign, tmp_path)
        assert not resumed.executed and len(resumed.skipped) == len(summary.cells)


class TestFaultAxisEquivalence:
    @pytest.fixture(scope="class")
    def faulted(self):
        return smoke_campaign(("identity", FAULT_KEY))

    def test_pool_matches_inline_bitwise(self, faulted, tmp_path):
        run_campaign(faulted, tmp_path / "inline")
        run_campaign(replace(faulted, max_workers=2), tmp_path / "pool")
        assert_bit_identical(arrays_of(tmp_path / "inline"), arrays_of(tmp_path / "pool"))

    def test_parallel_evaluation_matches_bitwise(self, faulted, tmp_path):
        """The evaluator's own process pool must re-apply transforms in workers."""
        run_campaign(faulted, tmp_path / "serial")
        run_campaign(replace(faulted, parallel_evaluation=True), tmp_path / "pooled-eval")
        assert_bit_identical(arrays_of(tmp_path / "serial"), arrays_of(tmp_path / "pooled-eval"))

    def test_kill_resume_matches_uninterrupted(self, faulted, tmp_path):
        run_campaign(faulted, tmp_path / "straight")
        summary = run_campaign(faulted, tmp_path / "killed")
        # Kill one identity and one faulted cell, then resume.
        victims = [summary.cells[0], next(c for c in summary.cells if c.scenario != "identity")]
        for victim in victims:
            summary.shard_path(victim.key).unlink()
        resumed = run_campaign(faulted, tmp_path / "killed")
        assert sorted(resumed.executed) == sorted(v.key for v in victims)
        assert_bit_identical(arrays_of(tmp_path / "straight"), arrays_of(tmp_path / "killed"))

    def test_compaction_preserves_results_bitwise(self, faulted, tmp_path):
        run_campaign(faulted, tmp_path)
        before = arrays_of(tmp_path)
        compact_campaign(tmp_path)
        assert not list(tmp_path.glob("cell_*.json"))
        assert_bit_identical(before, arrays_of(tmp_path))
        # And the compacted directory still resumes by skipping everything.
        resumed = run_campaign(faulted, tmp_path)
        assert not resumed.executed and len(resumed.skipped) == 8

    def test_faulted_cells_record_scenario_in_manifest_and_shards(self, faulted, tmp_path):
        run_campaign(faulted, tmp_path)
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        by_scenario = {"identity": 0, FAULT_KEY: 0}
        for entry in manifest["cells"]:
            by_scenario[entry.get("scenario", "identity")] += 1
        assert by_scenario == {"identity": 4, FAULT_KEY: 4}
        for cell, _ in load_campaign_results(tmp_path):
            assert cell.scenario in ("identity", FAULT_KEY)

    def test_faulted_results_differ_from_identity(self, faulted, tmp_path):
        """The axis must actually change the landscape, not just the labels."""
        run_campaign(faulted, tmp_path)
        groups = {}
        for cell, result in load_campaign_results(tmp_path):
            groups.setdefault((cell.algorithm, cell.application), {})[cell.scenario] = result
        for by_scenario in groups.values():
            identity = by_scenario["identity"].objectives
            fault = by_scenario[FAULT_KEY].objectives
            assert identity.shape != fault.shape or not np.allclose(identity, fault)
