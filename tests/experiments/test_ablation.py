"""Tests for the MOELA ablation variants."""

import numpy as np
import pytest

from repro.core.config import MOELAConfig
from repro.experiments.ablation import (
    ABLATION_VARIANTS,
    build_variant,
    format_ablation,
    run_ablation,
)
from repro.moo.termination import Budget
from tests.moo.toyproblem import GridAnchorProblem


def _smoke_config():
    return MOELAConfig(
        population_size=8,
        generations=50,
        iter_early=1,
        n_local=2,
        neighborhood_size=4,
        local_search_steps=3,
        local_search_neighbors=2,
        max_training_samples=200,
        forest_size=5,
        forest_depth=5,
    )


class TestVariantConstruction:
    @pytest.mark.parametrize("variant", [v.name for v in ABLATION_VARIANTS])
    def test_every_variant_builds_and_runs(self, variant):
        problem = GridAnchorProblem(2)
        optimizer = build_variant(variant, problem, _smoke_config(), seed=0)
        result = optimizer.run(Budget.iterations(3))
        assert result.objectives.shape[1] == 2
        assert len(result.history) >= 2

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_variant("bogus", GridAnchorProblem(2), _smoke_config())

    def test_variant_names_are_distinct(self):
        problem = GridAnchorProblem(2)
        names = {
            build_variant(v.name, problem, _smoke_config()).name for v in ABLATION_VARIANTS
        }
        assert len(names) == len(ABLATION_VARIANTS)

    def test_no_ml_guide_variant_never_trains_guide_selection(self):
        problem = GridAnchorProblem(2)
        optimizer = build_variant("no-ml-guide", problem, _smoke_config(), seed=1)
        optimizer.run(Budget.iterations(4))
        # Start selection stays random even though the model may be trained.
        starts = optimizer._select_start_indices(iteration=100)
        assert len(starts) == 2

    def test_no_ea_variant_only_runs_local_searches(self):
        problem = GridAnchorProblem(2)
        optimizer = build_variant("no-ea", problem, _smoke_config(), seed=2)
        result = optimizer.run(Budget.iterations(3))
        # Without the EA stage, evaluations come only from the initial
        # population and local searches (2 searches x 3 steps x 2 neighbours).
        assert result.evaluations <= 8 + 3 * (2 * 3 * 2)


class TestRunAblation:
    def test_summary_contains_all_variants(self):
        problem = GridAnchorProblem(2)
        summary = run_ablation(
            problem,
            _smoke_config(),
            Budget.evaluations(80),
            variants=("full", "no-local-search"),
            seed=0,
        )
        assert set(summary) == {"full", "no-local-search"}
        for stats in summary.values():
            assert stats["phv"] >= 0
            assert stats["evaluations"] > 0

    def test_format_ablation_mentions_variants(self):
        problem = GridAnchorProblem(2)
        summary = run_ablation(
            problem, _smoke_config(), Budget.evaluations(60), variants=("full", "no-ea"), seed=1
        )
        text = format_ablation(summary)
        assert "full" in text and "no-ea" in text
        assert "PHV" in text
