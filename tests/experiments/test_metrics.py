"""Tests for the Section V.C comparison metrics."""

import numpy as np
import pytest

from repro.experiments.metrics import (
    common_reference_point,
    edp_of_best_design,
    edp_overhead,
    phv_gain,
    select_design_by_thermal_threshold,
    speedup_factor,
)
from repro.moo.result import OptimizationResult, SearchSnapshot
from repro.simulation.simulator import NocSimulator


def _result(name, fronts, evals_per_iter=10):
    history = [
        SearchSnapshot(iteration=i, evaluations=evals_per_iter * (i + 1),
                       elapsed_seconds=0.1 * (i + 1), front=front)
        for i, front in enumerate(fronts)
    ]
    return OptimizationResult(
        algorithm=name,
        problem_name="toy",
        designs=["d%d" % i for i in range(len(fronts[-1]))],
        objectives=np.asarray(fronts[-1], dtype=float),
        history=history,
        evaluations=evals_per_iter * len(fronts),
        elapsed_seconds=0.1 * len(fronts),
    )


class TestReferencePoint:
    def test_reference_bounds_all_snapshots(self):
        slow = _result("slow", [[[4.0, 4.0]], [[3.5, 3.5]]])
        fast = _result("fast", [[[3.0, 3.0]], [[1.0, 1.0]]])
        reference = common_reference_point([slow, fast])
        assert np.all(reference >= 4.0)

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            common_reference_point([])


class TestSpeedupAndPhv:
    def test_faster_algorithm_gets_speedup_above_one(self):
        # "slow" needs 6 iterations to reach what "fast" reaches by iteration 2.
        slow_fronts = [[[10.0 - i, 10.0 - i]] for i in range(7)]
        fast_fronts = [[[10.0 - 3 * i, 10.0 - 3 * i]] for i in range(4)]
        slow = _result("slow", slow_fronts)
        fast = _result("fast", fast_fronts)
        reference = common_reference_point([slow, fast])
        factor = speedup_factor(slow, fast, reference)
        assert factor > 1.0

    def test_phv_gain_sign(self):
        better = _result("better", [[[1.0, 1.0]]])
        worse = _result("worse", [[[3.0, 3.0]]])
        reference = common_reference_point([better, worse])
        assert phv_gain(better, worse, reference) > 0
        assert phv_gain(worse, better, reference) < 0

    def test_phv_gain_zero_for_identical_results(self):
        a = _result("a", [[[2.0, 2.0]]])
        b = _result("b", [[[2.0, 2.0]]])
        reference = common_reference_point([a, b])
        assert phv_gain(a, b, reference) == pytest.approx(0.0)

    def test_speedup_invalid_measure_rejected(self):
        a = _result("a", [[[2.0, 2.0]]])
        with pytest.raises(ValueError):
            speedup_factor(a, a, common_reference_point([a]), measure="bogus")


class TestEdpSelection:
    def test_selected_design_respects_thermal_threshold(self, tiny_workload, tiny_designs):
        simulator = NocSimulator(tiny_workload)
        result = OptimizationResult(
            algorithm="X",
            problem_name="toy",
            designs=list(tiny_designs),
            objectives=np.zeros((len(tiny_designs), 3)),
            history=[],
        )
        design, report = select_design_by_thermal_threshold(result, tiny_workload, simulator=simulator)
        temps = [simulator.simulate(d).peak_temperature for d in tiny_designs]
        threshold = min(temps) * 1.05
        assert report["peak_temperature"] <= threshold + 1e-9
        assert design in tiny_designs

    def test_selected_design_has_lowest_edp_within_threshold(self, tiny_workload, tiny_designs):
        simulator = NocSimulator(tiny_workload)
        result = OptimizationResult(
            algorithm="X", problem_name="toy", designs=list(tiny_designs),
            objectives=np.zeros((len(tiny_designs), 3)), history=[],
        )
        _, report = select_design_by_thermal_threshold(result, tiny_workload, simulator=simulator)
        reports = [simulator.simulate(d) for d in tiny_designs]
        threshold = min(r.peak_temperature for r in reports) * 1.05
        eligible_edps = [r.edp for r in reports if r.peak_temperature <= threshold]
        assert report["edp"] == pytest.approx(min(eligible_edps))

    def test_edp_of_best_design_matches_selection(self, tiny_workload, tiny_designs):
        simulator = NocSimulator(tiny_workload)
        result = OptimizationResult(
            algorithm="X", problem_name="toy", designs=list(tiny_designs),
            objectives=np.zeros((len(tiny_designs), 3)), history=[],
        )
        edp = edp_of_best_design(result, tiny_workload, simulator=simulator)
        _, report = select_design_by_thermal_threshold(result, tiny_workload, simulator=simulator)
        assert edp == pytest.approx(report["edp"])

    def test_empty_result_rejected(self, tiny_workload):
        empty = OptimizationResult("X", "toy", [], np.zeros((0, 3)), history=[])
        with pytest.raises(ValueError):
            select_design_by_thermal_threshold(empty, tiny_workload)

    def test_edp_overhead_definition(self):
        assert edp_overhead(110.0, 100.0) == pytest.approx(0.10)
        assert edp_overhead(90.0, 100.0) == pytest.approx(-0.10)
        with pytest.raises(ValueError):
            edp_overhead(1.0, 0.0)
