"""Cross-cell routing-cache sharing: pooled engines, warm-start store, equivalence.

Campaign cells running inline share one grid-keyed :class:`RoutingEnginePool`
engine per platform; with ``routing_warm_start`` a disk store under the
campaign's output directory lets separate processes warm-start from each
other's builds.  The contract is the same as every cache tier in this repo:
sharing changes wall-clock, never results — shard contents must match a
cold-start campaign apart from cache counters and elapsed timings.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.runner import (
    MANIFEST_NAME,
    load_campaign_results,
    load_manifest,
    run_campaign,
)
from repro.noc.constraints import random_design
from repro.noc.platform import PlatformConfig
from repro.noc.route_store import RouteStore
from repro.noc.routing_engine import RoutingEngine, RoutingEnginePool

PLATFORM = PlatformConfig.small_3x3x3()


@pytest.fixture()
def campaign():
    """2 algorithms x 2 applications on one platform, tiny budget."""
    return CampaignConfig(
        experiment=replace(ExperimentConfig.smoke(), applications=("BFS", "BP")),
        algorithms=("MOEA/D", "NSGA-II"),
        max_evaluations=30,
    )


class TestRoutingEnginePool:
    def test_same_grid_same_engine(self):
        pool = RoutingEnginePool()
        small, paper = PLATFORM.grid, PlatformConfig.paper_4x4x4().grid
        assert pool.engine_for(small) is pool.engine_for(small)
        assert pool.engine_for(small) is not pool.engine_for(paper)
        assert len(pool) == 2

    def test_engines_inherit_pool_settings(self, tmp_path):
        store = RouteStore(tmp_path)
        pool = RoutingEnginePool(cache_size=7, store=store)
        engine = pool.engine_for(PLATFORM.grid)
        assert engine.cache_size == 7
        assert engine._store is store

    def test_stats_aggregate_across_engines(self):
        pool = RoutingEnginePool()
        for platform in (PLATFORM, PlatformConfig.paper_4x4x4()):
            engine = pool.engine_for(platform.grid)
            engine.tables(random_design(platform, 1))
            engine.tables(random_design(platform, 1))  # same design: a hit
        stats = pool.stats()
        assert stats["engines"] == 2
        assert stats["misses"] == 2 and stats["hits"] == 2
        assert stats["requests"] == 4 and stats["hit_rate"] == 0.5
        assert "store_hits" not in stats  # no store attached anywhere

    def test_stats_include_store_counters_when_attached(self, tmp_path):
        pool = RoutingEnginePool(store=RouteStore(tmp_path))
        engine = pool.engine_for(PLATFORM.grid)
        engine.tables(random_design(PLATFORM, 2))
        stats = pool.stats()
        assert stats["store_saves"] == 1 and stats["store_hits"] == 0


def _strip_timings(payload):
    """Shard/manifest content minus wall-clock and cache-counter fields."""
    if isinstance(payload, dict):
        return {
            key: _strip_timings(value)
            for key, value in payload.items()
            if key not in ("elapsed_seconds", "routing_cache")
        }
    if isinstance(payload, list):
        return [_strip_timings(item) for item in payload]
    return payload


def _shard_bodies(output_dir):
    bodies = {}
    for path in sorted(output_dir.glob("*.json")):
        if path.name == MANIFEST_NAME:
            continue
        bodies[path.name] = _strip_timings(json.loads(path.read_text()))
    return bodies


class TestSharedEngineEquivalence:
    def test_shared_matches_cold_start_bitwise(self, campaign, tmp_path):
        """The tentpole's acceptance gate: shard bodies are identical apart
        from cache counters and elapsed wall-clock."""
        shared_dir, cold_dir = tmp_path / "shared", tmp_path / "cold"
        run_campaign(campaign, shared_dir)
        run_campaign(replace(campaign, shared_routing_cache=False), cold_dir)
        shared, cold = _shard_bodies(shared_dir), _shard_bodies(cold_dir)
        assert set(shared) == set(cold) and len(shared) == 4
        assert shared == cold

        for cell, result in load_campaign_results(shared_dir):
            _, cold_result = next(
                pair for pair in load_campaign_results(cold_dir) if pair[0] == cell
            )
            np.testing.assert_array_equal(result.objectives, cold_result.objectives)

    def test_shared_cells_accumulate_one_engine(self, campaign, tmp_path):
        """Per-shard ``cached_topologies`` is the engine-wide absolute count:
        under sharing it keeps growing as later cells add their topologies to
        the one engine, so its maximum exceeds what any isolated per-cell
        engine reaches in the cold campaign.  (Hit/miss deltas stay per-cell
        and need not differ — with per-cell seeding, cells may explore
        disjoint topologies.)"""
        shared_dir, cold_dir = tmp_path / "shared", tmp_path / "cold"
        run_campaign(campaign, shared_dir)
        run_campaign(replace(campaign, shared_routing_cache=False), cold_dir)

        def max_cached(output_dir):
            counts = []
            for path in sorted(output_dir.glob("*.json")):
                if path.name == MANIFEST_NAME:
                    continue
                counts.append(json.loads(path.read_text())["routing_cache"]["cached_topologies"])
            assert len(counts) == 4
            return max(counts)

        assert max_cached(shared_dir) > max_cached(cold_dir)
        shared_stats = load_manifest(shared_dir)["routing_cache"]
        cold_stats = load_manifest(cold_dir)["routing_cache"]
        assert shared_stats["cells_counted"] == cold_stats["cells_counted"] == 4


class TestWarmStartStore:
    def test_warm_start_populates_store_and_counts(self, campaign, tmp_path):
        warm_dir = tmp_path / "warm"
        run_campaign(replace(campaign, routing_warm_start=True), warm_dir)
        store_dir = warm_dir / "routing_store"
        assert store_dir.is_dir()
        assert any(path.suffix == ".npz" for path in store_dir.iterdir())
        stats = load_manifest(warm_dir)["routing_cache"]
        assert stats["store_saves"] >= 1
        assert "store_hits" in stats

    def test_warm_start_matches_cold_start_bitwise(self, campaign, tmp_path):
        warm_dir, cold_dir = tmp_path / "warm", tmp_path / "cold"
        run_campaign(replace(campaign, routing_warm_start=True), warm_dir)
        run_campaign(
            replace(campaign, shared_routing_cache=False), cold_dir
        )
        assert _shard_bodies(warm_dir) == _shard_bodies(cold_dir)

    def test_cold_manifest_has_no_store_counters(self, campaign, tmp_path):
        run_campaign(campaign, tmp_path / "out")
        stats = load_manifest(tmp_path / "out")["routing_cache"]
        assert "store_saves" not in stats and "store_hits" not in stats
