"""Tests for the robustness analytics (sensitivity map + certificate)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.compaction import compact_campaign
from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.robustness import (
    DegradationRecord,
    SensitivityEntry,
    SweepDerivative,
    format_certificate,
    format_sensitivity_map,
    robustness_certificate,
    sensitivity_map,
)
from repro.experiments.runner import run_campaign

K1 = "link_failure(k=1,mode=remove,derate_factor=0.5)"
K2 = "link_failure(k=2,mode=remove,derate_factor=0.5)"


@pytest.fixture(scope="module")
def fault_campaign_dir(tmp_path_factory):
    """One finished 2-algorithm x 1-app x {identity, k=1, k=2} campaign."""
    output_dir = tmp_path_factory.mktemp("fault-campaign")
    campaign = CampaignConfig(
        experiment=replace(ExperimentConfig.smoke(), scenario_models=("identity", K1, K2)),
        algorithms=("MOEA/D", "NSGA-II"),
        max_evaluations=40,
    )
    run_campaign(campaign, output_dir)
    return output_dir


class TestSensitivityMap:
    def test_entries_cover_every_faulted_group(self, fault_campaign_dir):
        smap = sensitivity_map(fault_campaign_dir)
        assert smap.scenarios == ("identity", K1, K2)
        covered = {(e.algorithm, e.scenario) for e in smap.entries}
        assert covered == {
            (alg, scenario)
            for alg in ("MOEA/D", "NSGA-II")
            for scenario in (K1, K2)
        }
        # one entry per objective of the 3-obj scenario
        per_group = [e for e in smap.entries if e.algorithm == "MOEA/D" and e.scenario == K1]
        assert len(per_group) == 3

    def test_single_parameter_sweep_detected(self, fault_campaign_dir):
        smap = sensitivity_map(fault_campaign_dir)
        assert smap.sweeps, "k=1 vs k=2 should form a link_failure.k sweep"
        for sweep in smap.sweeps:
            assert (sweep.kind, sweep.parameter) == ("link_failure", "k")
            assert [p for p, _ in sweep.points] == [1.0, 2.0]
            assert len(sweep.finite_differences) == 1

    def test_relative_delta_matches_baseline_and_value(self, fault_campaign_dir):
        for entry in sensitivity_map(fault_campaign_dir).entries:
            if entry.baseline != 0.0:
                expected = (entry.value - entry.baseline) / abs(entry.baseline)
                assert entry.relative_delta == pytest.approx(expected)

    def test_format_renders_groups_and_sweeps(self, fault_campaign_dir):
        text = format_sensitivity_map(sensitivity_map(fault_campaign_dir))
        assert text.startswith("Sensitivity map —")
        assert K1 in text and K2 in text
        assert "Finite-difference sweeps" in text


class TestRobustnessCertificate:
    def test_records_one_per_faulted_group(self, fault_campaign_dir):
        certificate = robustness_certificate(fault_campaign_dir)
        assert len(certificate.records) == 4  # 2 algorithms x 2 fault scenarios
        for record in certificate.records:
            assert record.phv_identity > 0
            assert not np.isnan(record.degradation)
            assert record.degradation <= 1.0  # PHV cannot degrade past 100%

    def test_per_algorithm_statistics(self, fault_campaign_dir):
        certificate = robustness_certificate(fault_campaign_dir, quantiles=(0.5,))
        summary = certificate.per_algorithm()
        assert sorted(summary) == ["MOEA/D", "NSGA-II"]
        for stats in summary.values():
            assert stats["cells"] == 2
            assert stats["worst_case"] >= stats["mean"] - 1e-12
            assert {"worst_case", "mean", "cells", "q50"} <= set(stats)

    def test_worst_case_is_the_max_record(self, fault_campaign_dir):
        certificate = robustness_certificate(fault_campaign_dir)
        worst = certificate.worst_case()
        assert worst is not None
        assert worst.degradation == max(r.degradation for r in certificate.records)

    def test_invalid_quantiles_rejected(self, fault_campaign_dir):
        with pytest.raises(ValueError, match="quantiles"):
            robustness_certificate(fault_campaign_dir, quantiles=(1.5,))
        with pytest.raises(ValueError, match="quantiles"):
            robustness_certificate(fault_campaign_dir, quantiles=())

    def test_format_leads_with_certificate_header(self, fault_campaign_dir):
        text = format_certificate(robustness_certificate(fault_campaign_dir))
        assert text.startswith("Robustness certificate —")
        assert "Worst case:" in text
        assert "q50" in text and "q90" in text

    def test_identical_from_compacted_rollup(self, fault_campaign_dir):
        before = format_certificate(robustness_certificate(fault_campaign_dir))
        before_map = format_sensitivity_map(sensitivity_map(fault_campaign_dir))
        compact_campaign(fault_campaign_dir)
        assert format_certificate(robustness_certificate(fault_campaign_dir)) == before
        assert format_sensitivity_map(sensitivity_map(fault_campaign_dir)) == before_map


class TestErrorContracts:
    def test_empty_campaign_dir_raises(self, tmp_path):
        campaign = CampaignConfig(
            experiment=ExperimentConfig.smoke(), algorithms=("NSGA-II",), max_evaluations=40
        )
        # A manifest with zero completed cells: write the grid, delete the shard.
        summary = run_campaign(campaign, tmp_path)
        summary.shard_path(summary.cells[0].key).unlink()
        with pytest.raises(ValueError, match="no completed shards"):
            robustness_certificate(tmp_path)

    def test_campaign_without_identity_cells_raises(self, tmp_path):
        campaign = CampaignConfig(
            experiment=replace(ExperimentConfig.smoke(), scenario_models=(K1,)),
            algorithms=("NSGA-II",),
            max_evaluations=40,
        )
        run_campaign(campaign, tmp_path)
        with pytest.raises(ValueError, match="no completed 'identity' cells"):
            sensitivity_map(tmp_path)


class TestRecordArithmetic:
    def test_degradation_formula(self):
        record = DegradationRecord("A", "BFS", 3, K1, phv_identity=10.0, phv_scenario=7.5)
        assert record.degradation == pytest.approx(0.25)

    def test_zero_identity_phv_is_nan(self):
        record = DegradationRecord("A", "BFS", 3, K1, phv_identity=0.0, phv_scenario=1.0)
        assert np.isnan(record.degradation)

    def test_zero_baseline_sensitivity(self):
        entry = SensitivityEntry("A", "BFS", 3, K1, "latency", baseline=0.0, value=1.0)
        assert entry.relative_delta == float("inf")
        flat = SensitivityEntry("A", "BFS", 3, K1, "latency", baseline=0.0, value=0.0)
        assert flat.relative_delta == 0.0

    def test_finite_differences(self):
        sweep = SweepDerivative(
            "A", "BFS", 3, "link_failure", "k", "latency",
            points=((1.0, 10.0), (2.0, 14.0), (4.0, 14.0)),
        )
        assert sweep.finite_differences == pytest.approx((4.0, 0.0))
