"""Tests for the experiment configuration."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.noc.platform import PlatformConfig


class TestExperimentConfig:
    def test_default_uses_small_platform_and_six_apps(self):
        config = ExperimentConfig()
        assert config.platform.num_tiles == 27
        assert len(config.applications) == 6
        assert config.objective_counts == (3, 4, 5)

    def test_smoke_config_is_tiny(self):
        config = ExperimentConfig.smoke()
        assert config.platform.num_tiles == 8
        assert config.max_evaluations <= 200

    def test_paper_scale_matches_section_v(self):
        config = ExperimentConfig.paper_scale()
        assert config.platform.num_tiles == 64
        assert config.population_size == 50
        assert config.moela.generations == 1000

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(applications=("NOT_AN_APP",))

    def test_invalid_objective_count_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(objective_counts=(2,))
        with pytest.raises(ValueError):
            ExperimentConfig(objective_counts=())

    def test_population_and_budget_minimums(self):
        with pytest.raises(ValueError):
            ExperimentConfig(population_size=2)
        with pytest.raises(ValueError):
            ExperimentConfig(max_evaluations=5)

    def test_custom_platform_accepted(self):
        config = ExperimentConfig(platform=PlatformConfig.tiny_2x2x2(), applications=("BFS",))
        assert config.platform.num_tiles == 8
