"""Tests for the experiment configuration."""

from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig
from repro.noc.platform import PlatformConfig


class TestExperimentConfig:
    def test_default_uses_small_platform_and_six_apps(self):
        config = ExperimentConfig()
        assert config.platform.num_tiles == 27
        assert len(config.applications) == 6
        assert config.objective_counts == (3, 4, 5)

    def test_smoke_config_is_tiny(self):
        config = ExperimentConfig.smoke()
        assert config.platform.num_tiles == 8
        assert config.max_evaluations <= 200

    def test_paper_scale_matches_section_v(self):
        config = ExperimentConfig.paper_scale()
        assert config.platform.num_tiles == 64
        assert config.population_size == 50
        assert config.moela.generations == 1000

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(applications=("NOT_AN_APP",))

    def test_invalid_objective_count_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(objective_counts=(2,))
        with pytest.raises(ValueError):
            ExperimentConfig(objective_counts=())

    def test_population_and_budget_minimums(self):
        with pytest.raises(ValueError):
            ExperimentConfig(population_size=2)
        with pytest.raises(ValueError):
            ExperimentConfig(max_evaluations=5)

    def test_custom_platform_accepted(self):
        config = ExperimentConfig(platform=PlatformConfig.tiny_2x2x2(), applications=("BFS",))
        assert config.platform.num_tiles == 8


class TestScenarioModelsAxis:
    def test_default_is_single_identity(self):
        assert ExperimentConfig.smoke().scenario_models == ("identity",)

    def test_keys_canonicalised_at_construction(self):
        experiment = replace(ExperimentConfig.smoke(), scenario_models=("link_failure(k=2)",))
        assert experiment.scenario_models == (
            "link_failure(k=2,mode=remove,derate_factor=0.5)",
        )

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one scenario model"):
            replace(ExperimentConfig.smoke(), scenario_models=())

    def test_duplicates_rejected_after_canonicalisation(self):
        with pytest.raises(ValueError, match="duplicate scenario models"):
            replace(
                ExperimentConfig.smoke(),
                scenario_models=("link_failure(k=1)", "link_failure(k=1,mode=remove)"),
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario model"):
            replace(ExperimentConfig.smoke(), scenario_models=("meteor_strike",))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="positive integer"):
            replace(ExperimentConfig.smoke(), scenario_models=("link_failure(k=-1)",))
