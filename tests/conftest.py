"""Shared fixtures: tiny platforms, workloads and problems reused across the suite.

Also pins the hypothesis profiles the property suites run under: ``dev``
(the default; randomized, small example counts for fast local runs) and
``ci`` (derandomized so CI failures reproduce exactly, with a CI-sized
example budget).  Select one with ``HYPOTHESIS_PROFILE=ci pytest ...``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.problem import NocDesignProblem
from repro.noc.constraints import random_design
from repro.noc.platform import PlatformConfig
from repro.workloads.registry import get_workload

try:
    from hypothesis import HealthCheck, settings as hypothesis_settings
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass
else:
    hypothesis_settings.register_profile(
        "dev",
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.register_profile(
        "ci",
        max_examples=50,
        deadline=None,
        derandomize=True,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture(scope="session")
def tiny_config() -> PlatformConfig:
    """8-tile platform used for fast unit tests."""
    return PlatformConfig.tiny_2x2x2()


@pytest.fixture(scope="session")
def small_config() -> PlatformConfig:
    """27-tile platform matching Fig. 1 of the paper."""
    return PlatformConfig.small_3x3x3()


@pytest.fixture(scope="session")
def paper_config() -> PlatformConfig:
    """The 64-tile platform of the paper's evaluation."""
    return PlatformConfig.paper_4x4x4()


@pytest.fixture(scope="session")
def tiny_workload(tiny_config):
    """BFS-like workload on the tiny platform."""
    return get_workload("BFS", tiny_config, seed=11)


@pytest.fixture(scope="session")
def small_workload(small_config):
    """BFS-like workload on the 27-tile platform."""
    return get_workload("BFS", small_config, seed=11)


@pytest.fixture(scope="session")
def tiny_problem(tiny_workload) -> NocDesignProblem:
    """3-objective design problem on the tiny platform."""
    return NocDesignProblem(tiny_workload, scenario=3)


@pytest.fixture(scope="session")
def tiny_problem_5obj(tiny_workload) -> NocDesignProblem:
    """5-objective design problem on the tiny platform."""
    return NocDesignProblem(tiny_workload, scenario=5)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic RNG for individual tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_designs(tiny_config):
    """A handful of feasible random designs on the tiny platform."""
    generator = np.random.default_rng(7)
    return [random_design(tiny_config, generator) for _ in range(6)]


@pytest.fixture(scope="session")
def small_designs(small_config):
    """A handful of feasible random designs on the 27-tile platform."""
    generator = np.random.default_rng(7)
    return [random_design(small_config, generator) for _ in range(4)]
