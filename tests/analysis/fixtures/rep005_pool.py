"""REP005 fixture: pool-boundary positives and clean negatives."""

from concurrent.futures import ProcessPoolExecutor
from functools import partial


def _module_level_worker(value):
    return value * 2


def bad_lambda(values):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(lambda v: v * 2, values))  # POSITIVE line 13


def bad_local_function(values):
    def helper(value):
        return value + 1

    with ProcessPoolExecutor() as pool:
        return [pool.submit(helper, v) for v in values]  # POSITIVE line 21


def bad_partial_over_local(values):
    def helper(value, offset):
        return value + offset

    executor = ProcessPoolExecutor()
    return [executor.submit(partial(helper, offset=2), v) for v in values]  # POSITIVE line 29


def good_module_level(values):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(_module_level_worker, values))


def good_partial_over_module_level(values):
    with ProcessPoolExecutor() as pool:
        return [pool.submit(partial(_module_level_worker), v) for v in values]
