"""Suppression fixture: inline allows silencing findings line by line."""

import numpy as np


def allowed_by_rule_id():
    return np.random.default_rng()  # repro: allow[REP001]


def allowed_by_wildcard():
    return np.random.default_rng()  # repro: allow[*]


def allowed_by_list():
    return np.random.default_rng()  # repro: allow[REP002, REP001]


def not_allowed_wrong_rule():
    return np.random.default_rng()  # repro: allow[REP006]
