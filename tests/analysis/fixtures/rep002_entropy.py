"""REP002 fixture: wall-clock/uuid/entropy positives and clean negatives."""

import os
import time
import uuid
from datetime import datetime


def bad_wall_clock_key(design):
    return (design, time.time())  # POSITIVE line 10


def bad_timestamp_ns():
    return time.time_ns()  # POSITIVE line 14


def bad_uuid():
    return uuid.uuid4().hex  # POSITIVE line 18


def bad_now():
    return datetime.now().isoformat()  # POSITIVE line 22


def bad_urandom():
    return os.urandom(8)  # POSITIVE line 26


def good_design_key(design):
    return (design.key(), "scalar")


def good_monotonic_for_logging():
    return time.monotonic()
