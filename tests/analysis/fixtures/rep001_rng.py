"""REP001 fixture: unseeded RNG positives and clean negatives."""

import random

import numpy as np

from repro.utils.rng import ensure_rng


def bad_default_rng():
    return np.random.default_rng()  # POSITIVE line 11


def bad_global_random():
    return random.random()  # POSITIVE line 15


def bad_global_shuffle(items):
    random.shuffle(items)  # POSITIVE line 19


def bad_implicit_ensure():
    return ensure_rng()  # POSITIVE line 23


def bad_explicit_none():
    return ensure_rng(None)  # POSITIVE line 27


def good_seeded():
    return np.random.default_rng(1234)


def good_threaded(rng):
    return ensure_rng(rng)


def good_opt_in():
    return ensure_rng(None, allow_unseeded=True)


def good_random_instance():
    local = random.Random(0)
    return local.random()
