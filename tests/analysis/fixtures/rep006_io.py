"""REP006 fixture: bare campaign-directory writes and clean negatives."""

import json

from repro.utils.serialization import write_json_atomic


def bad_open_write(output_dir):
    with open(output_dir / "manifest.json", "w") as handle:  # POSITIVE line 9
        handle.write("{}")


def bad_json_dump(payload, handle_to_shard):
    json.dump(payload, handle_to_shard)  # POSITIVE line 14


def bad_write_text(campaign_dir, text):
    (campaign_dir / "rollup.json").write_text(text)  # POSITIVE line 18


def good_atomic(output_dir, payload):
    write_json_atomic(output_dir / "manifest.json", payload)


def good_read(output_dir):
    with open(output_dir / "manifest.json") as handle:
        return handle.read()


def good_unrelated_write(scratch, text):
    with open(scratch / "notes.txt", "w") as handle:
        handle.write(text)
