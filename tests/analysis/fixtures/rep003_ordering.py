"""REP003 fixture: set-iteration positives and clean negatives."""


def bad_listcomp_over_set(links):
    pending = set(links)
    return [link for link in pending]  # POSITIVE line 6


def bad_for_loop(design):
    out = []
    for link in design.link_set():  # POSITIVE line 11
        out.append(link)
    return out


def bad_list_call():
    return list({3, 1, 2})  # POSITIVE line 17


def bad_joined(names):
    return ", ".join(name for name in set(names))  # POSITIVE line 21


def good_sorted(links):
    pending = set(links)
    return sorted(pending)


def good_order_free(links):
    pending = set(links)
    return sum(1 for link in links if link in pending)


def good_set_algebra(a, b):
    return set(a) | set(b)
