"""REP004 fixture: frozen-product mutation positives and clean negatives."""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FrozenProduct:
    value: int

    def __post_init__(self):
        object.__setattr__(self, "value", int(self.value))  # negative: own init


def bad_attribute_assignment(product: FrozenProduct):
    product.value = 3  # POSITIVE line 15


def bad_setattr_outside_init(product):
    object.__setattr__(product, "value", 4)  # POSITIVE line 19


def bad_annotated_local():
    product: FrozenProduct = FrozenProduct(1)
    product.value = 9  # POSITIVE line 24


@dataclass
class BadMutableKey:  # POSITIVE (non-frozen dataclass with key())
    items: tuple

    def key(self):
        return self.items


def good_replace(product: FrozenProduct):
    return replace(product, value=product.value + 1)


@dataclass(frozen=True)
class GoodFrozenKey:
    items: tuple

    def key(self):
        return self.items
