"""``repro lint`` CLI contract: exit codes, baseline workflow, artifacts.

Exit-code convention pinned here (and relied on by CI):

* 0 — no active findings,
* 1 — at least one active finding,
* 2 — usage error (missing path, unknown rule, unreadable baseline).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def lint(*argv: str) -> int:
    return main(["lint", *argv])


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def double(x):\n    return 2 * x\n")
        assert lint(str(clean), "--no-baseline") == 0

    def test_findings_exit_one(self):
        assert lint(str(FIXTURES / "rep001_rng.py"), "--no-baseline") == 1

    def test_missing_path_exits_two(self, tmp_path):
        assert lint(str(tmp_path / "nope"), "--no-baseline") == 2

    def test_unknown_rule_exits_two(self):
        assert lint(str(FIXTURES), "--select", "REP999") == 2

    def test_missing_explicit_baseline_exits_two(self, tmp_path):
        assert lint(str(FIXTURES), "--baseline", str(tmp_path / "missing.json")) == 2

    def test_corrupt_baseline_exits_two(self, tmp_path):
        corrupt = tmp_path / "baseline.json"
        corrupt.write_text("{not json")
        assert lint(str(FIXTURES / "rep001_rng.py"), "--baseline", str(corrupt)) == 2


class TestBaselineWorkflow:
    def test_write_then_lint_is_clean(self, tmp_path, capsys):
        target = tmp_path / "baseline.json"
        fixture = str(FIXTURES / "rep002_entropy.py")
        assert lint(fixture, "--write-baseline", "--baseline", str(target)) == 0
        assert target.exists()
        capsys.readouterr()
        assert lint(fixture, "--baseline", str(target)) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_no_baseline_flag_reactivates_findings(self, tmp_path):
        target = tmp_path / "baseline.json"
        fixture = str(FIXTURES / "rep002_entropy.py")
        assert lint(fixture, "--write-baseline", "--baseline", str(target)) == 0
        assert lint(fixture, "--no-baseline") == 1


class TestOutputs:
    def test_list_rules_prints_catalogue(self, capsys):
        assert lint("--list-rules") == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
            assert rule_id in out
        assert "docs/linting.md" in out

    def test_json_format_is_machine_readable(self, capsys):
        assert lint(str(FIXTURES / "rep005_pool.py"), "--no-baseline", "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_scanned"] == 1
        assert {finding["rule"] for finding in payload["findings"]} == {"REP005"}

    def test_report_artifact_written(self, tmp_path):
        report_path = tmp_path / "lint-report.json"
        assert (
            lint(str(FIXTURES / "rep006_io.py"), "--no-baseline", "--report", str(report_path))
            == 1
        )
        payload = json.loads(report_path.read_text())
        assert payload["active"] == 3


class TestRepoIsClean:
    def test_lint_src_is_clean_modulo_committed_baseline(self, monkeypatch):
        """The repository's own sources pass the gate CI enforces."""
        monkeypatch.chdir(REPO_ROOT)
        assert lint("src", "benchmarks", "examples") == 0
