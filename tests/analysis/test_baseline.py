"""Baseline semantics: grandfathering, count budgets, staleness, roundtrip."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, analyze_paths, baseline_from_findings

FIXTURES = Path(__file__).parent / "fixtures"


def _baseline_for(path: Path) -> Baseline:
    report = analyze_paths([str(path)])
    return baseline_from_findings(report.findings)


class TestGrandfathering:
    def test_baselined_findings_are_not_active(self):
        fixture = FIXTURES / "rep002_entropy.py"
        baseline = _baseline_for(fixture)
        report = analyze_paths([str(fixture)], baseline=baseline)
        assert not report.active
        assert len(report.baselined) == len(baseline.entries)
        assert not report.stale_baseline_entries

    def test_new_findings_stay_active_alongside_baselined_ones(self, tmp_path):
        module = tmp_path / "module.py"
        module.write_text("import uuid\nuuid.uuid4()\n")
        baseline = _baseline_for(module)
        module.write_text("import uuid\nuuid.uuid4()\nimport os\nos.urandom(4)\n")
        report = analyze_paths([str(module)], baseline=baseline)
        assert len(report.baselined) == 1
        (active,) = report.active
        assert "urandom" in active.source_line

    def test_count_budget_covers_each_occurrence_once(self, tmp_path):
        module = tmp_path / "module.py"
        module.write_text("import uuid\nuuid.uuid4()\n")
        baseline = _baseline_for(module)
        # Same source line twice -> same fingerprint, but only one is budgeted.
        module.write_text("import uuid\nuuid.uuid4()\nuuid.uuid4()\n")
        report = analyze_paths([str(module)], baseline=baseline)
        assert len(report.baselined) == 1
        assert len(report.active) == 1

    def test_stale_entries_are_reported(self, tmp_path):
        module = tmp_path / "module.py"
        module.write_text("import uuid\nuuid.uuid4()\n")
        baseline = _baseline_for(module)
        module.write_text("import uuid\n")  # finding fixed; entry now stale
        report = analyze_paths([str(module)], baseline=baseline)
        assert not report.findings
        assert len(report.stale_baseline_entries) == 1


class TestPersistence:
    def test_write_load_roundtrip(self, tmp_path):
        baseline = _baseline_for(FIXTURES / "rep001_rng.py")
        target = tmp_path / "baseline.json"
        baseline.write(target)
        loaded = Baseline.load(target)
        assert set(loaded.entries) == set(baseline.entries)
        assert loaded.path == target

    def test_unknown_format_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"format": "something-else/9", "entries": []}))
        with pytest.raises(ValueError):
            Baseline.load(target)

    def test_regeneration_carries_notes_forward(self, tmp_path):
        module = tmp_path / "module.py"
        module.write_text("import uuid\nuuid.uuid4()\n")
        report = analyze_paths([str(module)])
        first = baseline_from_findings(report.findings)
        annotated = Baseline(
            entries=[
                type(entry)(
                    rule=entry.rule,
                    path=entry.path,
                    fingerprint=entry.fingerprint,
                    note="deliberate",
                )
                for entry in first.entries
            ]
        )
        regenerated = baseline_from_findings(report.findings, previous=annotated)
        assert [entry.note for entry in regenerated.entries] == ["deliberate"]

    def test_suppressed_findings_never_enter_the_baseline(self):
        report = analyze_paths([str(FIXTURES / "suppressed.py")])
        baseline = baseline_from_findings(report.findings)
        assert len(baseline.entries) == len(report.active)
