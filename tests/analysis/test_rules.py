"""Per-rule tests over the committed fixture files.

Each fixture marks its true positives with a ``POSITIVE`` comment on the
offending line; everything else in the file is a deliberate clean negative.
Running *all* rules over each fixture therefore checks both directions at
once: the rule under test fires exactly on the marked lines, and no other
rule produces a false positive on the negatives.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = [
    ("REP001", "rep001_rng.py"),
    ("REP002", "rep002_entropy.py"),
    ("REP003", "rep003_ordering.py"),
    ("REP004", "rep004_cache.py"),
    ("REP005", "rep005_pool.py"),
    ("REP006", "rep006_io.py"),
]


def marked_lines(path: Path) -> set[int]:
    """Line numbers the fixture marks as true positives."""
    return {
        lineno
        for lineno, line in enumerate(path.read_text().splitlines(), start=1)
        if "POSITIVE" in line
    }


@pytest.mark.parametrize("rule_id, fixture_name", RULE_FIXTURES)
def test_rule_flags_exactly_the_marked_lines(rule_id: str, fixture_name: str):
    path = FIXTURES / fixture_name
    report = analyze_paths([str(path)])
    flagged = {(finding.rule_id, finding.line) for finding in report.findings}
    assert flagged == {(rule_id, line) for line in marked_lines(path)}


@pytest.mark.parametrize("rule_id, fixture_name", RULE_FIXTURES)
def test_findings_carry_location_and_severity(rule_id: str, fixture_name: str):
    report = analyze_paths([str(FIXTURES / fixture_name)])
    assert report.findings, "fixture must contain at least one positive"
    for finding in report.findings:
        assert finding.rule_id == rule_id
        assert finding.path.endswith(fixture_name)
        assert finding.line >= 1 and finding.col >= 0
        assert finding.source_line.strip()
        assert finding.describe().startswith(f"{finding.path}:{finding.line}:")


def test_selecting_one_rule_runs_only_that_rule():
    report = analyze_paths([str(FIXTURES)], select=["REP005"])
    assert {finding.rule_id for finding in report.findings} == {"REP005"}


def test_unknown_rule_id_raises():
    with pytest.raises(KeyError):
        analyze_paths([str(FIXTURES)], select=["REP999"])
