"""Engine-level behavior: suppressions, syntax errors, ordering, discovery."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import analyze_paths

FIXTURES = Path(__file__).parent / "fixtures"


class TestSuppressions:
    def test_inline_allow_suppresses_by_rule_wildcard_and_list(self):
        report = analyze_paths([str(FIXTURES / "suppressed.py")])
        assert len(report.suppressed) == 3
        assert [finding.line for finding in report.active] == [19]

    def test_allow_for_a_different_rule_does_not_suppress(self):
        report = analyze_paths([str(FIXTURES / "suppressed.py")])
        (active,) = report.active
        assert active.rule_id == "REP001"
        assert "allow[REP006]" in active.source_line

    def test_suppressed_findings_are_not_active(self):
        report = analyze_paths([str(FIXTURES / "suppressed.py")])
        for finding in report.suppressed:
            assert finding.suppressed
            assert finding not in report.active


class TestSyntaxErrors:
    def test_unparsable_file_yields_rep000(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def oops(:\n    pass\n")
        report = analyze_paths([str(broken)])
        (finding,) = report.findings
        assert finding.rule_id == "REP000"
        assert finding.active


class TestDiscoveryAndOrdering:
    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            analyze_paths([str(FIXTURES / "does_not_exist.py")])

    def test_directory_scan_skips_pycache_and_is_deterministic(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("import time\ntime.time()\n")
        (tmp_path / "b.py").write_text("import uuid\nuuid.uuid4()\n")
        (tmp_path / "a.py").write_text("import time\ntime.time()\n")
        first = analyze_paths([str(tmp_path)])
        second = analyze_paths([str(tmp_path)])
        assert first.files_scanned == 2
        paths = [finding.path for finding in first.findings]
        assert paths == sorted(paths)
        assert [f.describe() for f in first.findings] == [
            f.describe() for f in second.findings
        ]

    def test_duplicate_inputs_are_scanned_once(self):
        fixture = FIXTURES / "rep002_entropy.py"
        report = analyze_paths([str(fixture), str(fixture)])
        assert report.files_scanned == 1


class TestFingerprints:
    def test_fingerprint_survives_line_moves(self, tmp_path):
        original = tmp_path / "module.py"
        original.write_text("import uuid\nuuid.uuid4()\n")
        before = analyze_paths([str(original)]).findings[0].fingerprint
        original.write_text("import uuid\n\n\n# shifted down\nuuid.uuid4()\n")
        after = analyze_paths([str(original)]).findings[0].fingerprint
        assert before == after
