"""Tests for the NSGA-II baseline."""

import numpy as np
import pytest

from repro.moo.dominance import non_dominated_mask
from repro.moo.nsga2 import NSGA2
from repro.moo.termination import Budget
from tests.moo.toyproblem import GridAnchorProblem


class TestNSGA2:
    def test_run_produces_fixed_size_population(self):
        problem = GridAnchorProblem(2)
        optimizer = NSGA2(problem, population_size=10, rng=0)
        result = optimizer.run(Budget.iterations(5))
        assert len(result.designs) == 10
        assert result.objectives.shape == (10, 2)

    def test_population_quality_improves(self):
        problem = GridAnchorProblem(2)
        optimizer = NSGA2(problem, population_size=12, rng=1)
        result = optimizer.run(Budget.iterations(15))
        reference = np.array([250.0, 250.0])
        history = result.hypervolume_history(reference)
        assert history[-1] > history[0]

    def test_survivors_prefer_first_front(self):
        problem = GridAnchorProblem(2)
        optimizer = NSGA2(problem, population_size=10, rng=2)
        optimizer.run(Budget.iterations(10))
        # After convergence most of the population should be mutually non-dominated.
        mask = non_dominated_mask(optimizer.objectives)
        assert mask.sum() >= 5

    def test_evaluation_budget_respected(self):
        problem = GridAnchorProblem(2)
        optimizer = NSGA2(problem, population_size=10, rng=3)
        optimizer.run(Budget.evaluations(40))
        assert problem.eval_count <= 40 + 10

    def test_three_objectives(self):
        problem = GridAnchorProblem(3)
        result = NSGA2(problem, population_size=10, rng=4).run(Budget.iterations(4))
        assert result.objectives.shape[1] == 3

    def test_invalid_probabilities(self):
        problem = GridAnchorProblem(2)
        with pytest.raises(ValueError):
            NSGA2(problem, crossover_probability=1.5)
        with pytest.raises(ValueError):
            NSGA2(problem, mutation_probability=-0.2)

    def test_reproducible_with_seed(self):
        a = NSGA2(GridAnchorProblem(2), population_size=8, rng=7).run(Budget.iterations(3))
        b = NSGA2(GridAnchorProblem(2), population_size=8, rng=7).run(Budget.iterations(3))
        assert np.allclose(a.objectives, b.objectives)
