"""Tests for the MOOS baseline."""

import numpy as np
import pytest

from repro.moo.dominance import dominates
from repro.moo.moos import MOOS
from repro.moo.termination import Budget
from tests.moo.toyproblem import GridAnchorProblem


class TestMOOS:
    def test_run_produces_non_dominated_archive(self):
        problem = GridAnchorProblem(2)
        optimizer = MOOS(
            problem,
            population_size=10,
            searches_per_iteration=2,
            local_search_steps=5,
            neighbors_per_step=2,
            rng=0,
        )
        result = optimizer.run(Budget.iterations(6))
        objectives = result.objectives
        for i in range(len(objectives)):
            for j in range(len(objectives)):
                if i != j:
                    assert not dominates(objectives[i], objectives[j])

    def test_archive_phv_never_decreases(self):
        problem = GridAnchorProblem(2)
        optimizer = MOOS(problem, population_size=10, searches_per_iteration=2,
                         local_search_steps=4, neighbors_per_step=2, rng=1)
        result = optimizer.run(Budget.iterations(8))
        reference = np.array([250.0, 250.0])
        history = result.hypervolume_history(reference)
        assert np.all(np.diff(history) >= -1e-9)

    def test_learned_model_is_trained_after_early_phase(self):
        problem = GridAnchorProblem(2)
        optimizer = MOOS(problem, population_size=8, searches_per_iteration=2,
                         local_search_steps=3, neighbors_per_step=2,
                         early_random_iterations=1, rng=2)
        optimizer.run(Budget.iterations(5))
        assert optimizer._model is not None

    def test_respects_evaluation_budget(self):
        problem = GridAnchorProblem(2)
        optimizer = MOOS(problem, population_size=8, searches_per_iteration=2,
                         local_search_steps=3, neighbors_per_step=2, rng=3)
        optimizer.run(Budget.evaluations(60))
        assert problem.eval_count <= 60 + 8

    def test_three_objective_run(self):
        problem = GridAnchorProblem(3)
        optimizer = MOOS(problem, population_size=8, searches_per_iteration=2,
                         local_search_steps=3, neighbors_per_step=2, rng=4)
        result = optimizer.run(Budget.iterations(4))
        assert result.objectives.shape[1] == 3

    def test_directions_live_on_simplex(self):
        problem = GridAnchorProblem(3)
        optimizer = MOOS(problem, population_size=8, num_directions=10, rng=5)
        assert optimizer.directions.shape == (10, 3)
        assert np.allclose(optimizer.directions.sum(axis=1), 1.0)

    def test_invalid_parameters(self):
        problem = GridAnchorProblem(2)
        with pytest.raises(ValueError):
            MOOS(problem, searches_per_iteration=0)
        with pytest.raises(ValueError):
            MOOS(problem, local_search_steps=0)
        with pytest.raises(ValueError):
            MOOS(problem, neighbors_per_step=0)
        with pytest.raises(ValueError):
            MOOS(problem, num_directions=1)
