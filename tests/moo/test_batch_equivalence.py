"""Seeded batch-vs-scalar equivalence for the baseline optimisers.

Every baseline (NSGA-II, MOOS, MOO-STAGE) scores its broods through one
``evaluate_many`` batch call on the hot path, but keeps the pre-batch scalar
implementation (one ``evaluate`` call per design) as a ``*_reference`` twin
selected by ``batch_evaluation=False``.  These tests pin the contract that
makes the vectorised engine trustworthy: with the same RNG seed, both paths
must produce *identical* design trajectories, objective matrices and
evaluation counts — including when the evaluation budget exhausts in the
middle of a brood.
"""

import numpy as np
import pytest

from repro.moo.moo_stage import MOOStage
from repro.moo.moos import MOOS
from repro.moo.nsga2 import NSGA2
from repro.moo.termination import Budget
from tests.moo.toyproblem import GridAnchorProblem

#: Local-search shapes for the two STAGE-style baselines, small enough that a
#: run takes milliseconds but large enough that model training kicks in.
SEARCH_SHAPE = dict(searches_per_iteration=2, local_search_steps=3, neighbors_per_step=3)


def make_optimizer(cls, batch_evaluation: bool, num_objectives: int = 3, seed: int = 42):
    kwargs = {} if cls is NSGA2 else dict(SEARCH_SHAPE)
    return cls(
        GridAnchorProblem(num_objectives),
        population_size=8,
        rng=seed,
        batch_evaluation=batch_evaluation,
        **kwargs,
    )


def run_pair(cls, budget: Budget, num_objectives: int = 3, seed: int = 42):
    batched = make_optimizer(cls, True, num_objectives, seed)
    scalar = make_optimizer(cls, False, num_objectives, seed)
    return batched.run(budget), scalar.run(budget), batched, scalar


def assert_trajectories_identical(result_batched, result_scalar):
    assert result_batched.designs == result_scalar.designs
    np.testing.assert_allclose(result_batched.objectives, result_scalar.objectives, rtol=1e-12)
    assert result_batched.evaluations == result_scalar.evaluations
    assert [snap.evaluations for snap in result_batched.history] == [
        snap.evaluations for snap in result_scalar.history
    ]
    for snap_b, snap_s in zip(result_batched.history, result_scalar.history):
        np.testing.assert_allclose(snap_b.front, snap_s.front, rtol=1e-12)


class TestSeededEquivalence:
    @pytest.mark.parametrize("cls", [NSGA2, MOOS, MOOStage])
    @pytest.mark.parametrize("seed", [0, 42, 1234])
    def test_iteration_budget(self, cls, seed):
        result_b, result_s, _, _ = run_pair(cls, Budget.iterations(6), seed=seed)
        assert_trajectories_identical(result_b, result_s)

    @pytest.mark.parametrize("cls", [NSGA2, MOOS, MOOStage])
    def test_evaluation_budget(self, cls):
        result_b, result_s, _, _ = run_pair(cls, Budget.evaluations(95))
        assert_trajectories_identical(result_b, result_s)

    @pytest.mark.parametrize("cls", [NSGA2, MOOS, MOOStage])
    def test_two_objectives(self, cls):
        result_b, result_s, _, _ = run_pair(cls, Budget.iterations(5), num_objectives=2)
        assert_trajectories_identical(result_b, result_s)

    @pytest.mark.parametrize("cls", [NSGA2, MOOS, MOOStage])
    def test_archives_identical(self, cls):
        _, _, batched, scalar = run_pair(cls, Budget.iterations(5))
        assert batched.archive.designs == scalar.archive.designs
        np.testing.assert_allclose(
            batched.archive.objectives, scalar.archive.objectives, rtol=1e-12
        )


class TestBudgetExhaustionMidBrood:
    def test_nsga2_trims_final_brood(self):
        """A budget that dies mid-generation trims the brood to the exact remainder."""
        # pop 8: init consumes 8, each full brood 8 more; 35 = 8 + 3*8 + 3, so
        # the fourth generation may only mate 3 children.
        result_b, result_s, _, _ = run_pair(NSGA2, Budget.evaluations(35))
        assert_trajectories_identical(result_b, result_s)
        assert result_b.evaluations == 35

    @pytest.mark.parametrize("cls", [MOOS, MOOStage])
    @pytest.mark.parametrize("budget", [29, 34, 50])
    def test_stage_baselines_stop_at_same_count(self, cls, budget):
        """Budgets landing mid-local-search stop both paths at the same count.

        The STAGE-style baselines check the budget between local-search steps
        (not inside a neighbour brood), so both paths may overshoot by at most
        ``neighbors_per_step - 1`` — but always by exactly the same amount.
        """
        result_b, result_s, _, _ = run_pair(cls, Budget.evaluations(budget))
        assert_trajectories_identical(result_b, result_s)

    @pytest.mark.parametrize("budget", [9, 33, 41])
    def test_nsga2_odd_budgets(self, budget):
        result_b, result_s, _, _ = run_pair(NSGA2, Budget.evaluations(budget))
        assert_trajectories_identical(result_b, result_s)


class TestEvaluationAccounting:
    """Regression tests pinning per-iteration evaluation counts.

    ``Budget.exhausted`` must fire at exactly the same evaluation count under
    scalar and batched scoring; these literals are the contract.
    """

    def test_nsga2_counts_per_iteration_are_pinned(self):
        expected = [8, 16, 24, 32, 35]  # init + three full broods + trimmed brood
        for batch_evaluation in (True, False):
            optimizer = make_optimizer(NSGA2, batch_evaluation)
            result = optimizer.run(Budget.evaluations(35))
            assert [snap.evaluations for snap in result.history] == expected
            assert result.evaluations == 35

    def test_nsga2_never_overshoots_evaluation_budget(self):
        for batch_evaluation in (True, False):
            problem = GridAnchorProblem(3)
            optimizer = NSGA2(problem, population_size=8, rng=5, batch_evaluation=batch_evaluation)
            result = optimizer.run(Budget.evaluations(50))
            assert result.evaluations == 50
            assert problem.eval_count == 50

    @pytest.mark.parametrize("cls", [MOOS, MOOStage])
    def test_stage_counts_match_problem_counter(self, cls):
        """The optimiser's evaluation counter and the problem's agree exactly."""
        for batch_evaluation in (True, False):
            optimizer = make_optimizer(cls, batch_evaluation)
            result = optimizer.run(Budget.evaluations(60))
            assert result.evaluations == optimizer.problem.eval_count

    def test_brood_limit_contract(self):
        optimizer = make_optimizer(NSGA2, True)
        optimizer.evaluations = 30
        assert optimizer.brood_limit(Budget.evaluations(35), 8) == 5
        assert optimizer.brood_limit(Budget.evaluations(30), 8) == 0
        assert optimizer.brood_limit(Budget.iterations(3), 8) == 8


class TestMoelaEquivalence:
    """MOELA's hybrid loop (EA brood + local searches) is path-equivalent too."""

    def test_seeded_batch_vs_scalar(self):
        from repro.core.config import MOELAConfig
        from repro.core.moela import MOELA

        results = []
        for batch_evaluation in (True, False):
            optimizer = MOELA(
                GridAnchorProblem(3),
                MOELAConfig.smoke(),
                rng=42,
                batch_evaluation=batch_evaluation,
            )
            results.append(optimizer.run(Budget.evaluations(90)))
        assert_trajectories_identical(*results)


class TestNocProblemEquivalence:
    """Batched NSGA-II on the real NoC problem matches the scalar path.

    This closes the loop end to end: the vectorised ``evaluate_many`` engine
    (matrix products over sparse pair-link incidence) drives the batched
    optimiser to the same trajectory the scalar per-design path produces.
    """

    def test_nsga2_on_noc_problem(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import make_problem

        experiment = ExperimentConfig.smoke()
        results = []
        for batch_evaluation in (True, False):
            problem = make_problem(experiment, "BFS", 3)
            optimizer = NSGA2(
                problem, population_size=6, rng=9, batch_evaluation=batch_evaluation
            )
            results.append(optimizer.run(Budget.evaluations(45)))
        batched, scalar = results
        assert [d.key() for d in batched.designs] == [d.key() for d in scalar.designs]
        np.testing.assert_allclose(batched.objectives, scalar.objectives, rtol=1e-12)
        assert batched.evaluations == scalar.evaluations == 45
