"""Tests for budgets and convergence detection."""

import time

import pytest

from repro.moo.termination import Budget, ConvergenceDetector, StopWatch


class TestBudget:
    def test_iteration_budget(self):
        budget = Budget.iterations(5)
        assert not budget.exhausted(4, 100, 10.0)
        assert budget.exhausted(5, 0, 0.0)

    def test_evaluation_budget(self):
        budget = Budget.evaluations(100)
        assert not budget.exhausted(1000, 99, 0.0)
        assert budget.exhausted(0, 100, 0.0)

    def test_seconds_budget(self):
        budget = Budget.seconds(1.5)
        assert not budget.exhausted(0, 0, 1.4)
        assert budget.exhausted(0, 0, 1.5)

    def test_any_condition_stops(self):
        budget = Budget(max_iterations=10, max_evaluations=100)
        assert budget.exhausted(10, 5, 0.0)
        assert budget.exhausted(2, 100, 0.0)
        assert not budget.exhausted(2, 5, 1e9)

    def test_empty_budget_rejected(self):
        with pytest.raises(ValueError):
            Budget()

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_iterations=0)
        with pytest.raises(ValueError):
            Budget(max_evaluations=0)
        with pytest.raises(ValueError):
            Budget(max_seconds=0.0)


class TestConvergenceDetector:
    def test_no_convergence_while_improving(self):
        detector = ConvergenceDetector(window=3, tolerance=0.01)
        values = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5]
        assert not any(detector.update(v) for v in values)

    def test_convergence_on_plateau(self):
        detector = ConvergenceDetector(window=3, tolerance=0.01)
        converged = [detector.update(v) for v in [1.0, 2.0, 2.0, 2.0, 2.001, 2.001]]
        assert converged[-1]
        assert detector.converged_at is not None

    def test_stays_converged_once_triggered(self):
        detector = ConvergenceDetector(window=2, tolerance=0.01)
        for value in [1.0, 1.0, 1.0, 1.0]:
            detector.update(value)
        assert detector.update(100.0)

    def test_zero_baseline_does_not_trigger(self):
        detector = ConvergenceDetector(window=2, tolerance=0.01)
        assert not any(detector.update(v) for v in [0.0, 0.0, 0.0])

    def test_values_recorded(self):
        detector = ConvergenceDetector()
        detector.update(1.0)
        detector.update(2.0)
        assert detector.values == [1.0, 2.0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConvergenceDetector(window=0)
        with pytest.raises(ValueError):
            ConvergenceDetector(tolerance=-0.1)

    def test_never_converges_before_window_plus_one_updates(self):
        """The baseline is the value `window` updates ago, so a window of w
        needs w+1 values before the criterion can fire at all."""
        detector = ConvergenceDetector(window=4, tolerance=1.0)
        assert not any(detector.update(1.0) for _ in range(4))
        assert detector.converged_at is None
        assert detector.update(1.0)
        assert detector.converged_at == 4

    def test_window_of_one_compares_consecutive_values(self):
        detector = ConvergenceDetector(window=1, tolerance=0.01)
        assert not detector.update(1.0)
        assert not detector.update(2.0)  # +100% improvement
        assert detector.update(2.0)      # flat step converges immediately

    def test_zero_tolerance_requires_strictly_positive_improvement(self):
        detector = ConvergenceDetector(window=1, tolerance=0.0)
        detector.update(1.0)
        assert not detector.update(2.0)   # improving: not converged
        assert not detector.update(2.0)   # flat: (2-2)/2 = 0, not < 0
        assert detector.update(1.5)       # regression is < 0: converged

    def test_negative_baseline_does_not_trigger(self):
        """Relative improvement over a negative baseline is meaningless; the
        detector waits for a positive one instead of dividing through it."""
        detector = ConvergenceDetector(window=1, tolerance=0.01)
        assert not any(detector.update(v) for v in [-1.0, -1.0, -1.0])
        assert detector.converged_at is None

    def test_converged_at_records_first_trigger_index(self):
        detector = ConvergenceDetector(window=2, tolerance=0.01)
        values = [1.0, 2.0, 3.0, 3.0, 3.0, 100.0]
        flags = [detector.update(v) for v in values]
        # first True at index 4: 3.0 vs baseline 3.0 two updates earlier
        assert flags == [False, False, False, False, True, True]
        assert detector.converged_at == 4
        # the latch never re-evaluates, even on a later huge improvement
        assert detector.update(1e9)
        assert detector.converged_at == 4

    def test_values_property_returns_a_copy(self):
        detector = ConvergenceDetector()
        detector.update(1.0)
        snapshot = detector.values
        snapshot.append(99.0)
        assert detector.values == [1.0]

    def test_large_tolerance_converges_despite_improvement(self):
        """tolerance >= actual relative gain counts as 'no real improvement'."""
        detector = ConvergenceDetector(window=1, tolerance=0.5)
        detector.update(1.0)
        assert detector.update(1.2)  # +20% < 50% tolerance


class TestStopWatch:
    def test_elapsed_increases(self):
        watch = StopWatch()
        first = watch.elapsed()
        time.sleep(0.01)
        assert watch.elapsed() > first
