"""Tests for budgets and convergence detection."""

import time

import pytest

from repro.moo.termination import Budget, ConvergenceDetector, StopWatch


class TestBudget:
    def test_iteration_budget(self):
        budget = Budget.iterations(5)
        assert not budget.exhausted(4, 100, 10.0)
        assert budget.exhausted(5, 0, 0.0)

    def test_evaluation_budget(self):
        budget = Budget.evaluations(100)
        assert not budget.exhausted(1000, 99, 0.0)
        assert budget.exhausted(0, 100, 0.0)

    def test_seconds_budget(self):
        budget = Budget.seconds(1.5)
        assert not budget.exhausted(0, 0, 1.4)
        assert budget.exhausted(0, 0, 1.5)

    def test_any_condition_stops(self):
        budget = Budget(max_iterations=10, max_evaluations=100)
        assert budget.exhausted(10, 5, 0.0)
        assert budget.exhausted(2, 100, 0.0)
        assert not budget.exhausted(2, 5, 1e9)

    def test_empty_budget_rejected(self):
        with pytest.raises(ValueError):
            Budget()

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_iterations=0)
        with pytest.raises(ValueError):
            Budget(max_evaluations=0)
        with pytest.raises(ValueError):
            Budget(max_seconds=0.0)


class TestConvergenceDetector:
    def test_no_convergence_while_improving(self):
        detector = ConvergenceDetector(window=3, tolerance=0.01)
        values = [1.0, 1.5, 2.0, 2.5, 3.0, 3.5]
        assert not any(detector.update(v) for v in values)

    def test_convergence_on_plateau(self):
        detector = ConvergenceDetector(window=3, tolerance=0.01)
        converged = [detector.update(v) for v in [1.0, 2.0, 2.0, 2.0, 2.001, 2.001]]
        assert converged[-1]
        assert detector.converged_at is not None

    def test_stays_converged_once_triggered(self):
        detector = ConvergenceDetector(window=2, tolerance=0.01)
        for value in [1.0, 1.0, 1.0, 1.0]:
            detector.update(value)
        assert detector.update(100.0)

    def test_zero_baseline_does_not_trigger(self):
        detector = ConvergenceDetector(window=2, tolerance=0.01)
        assert not any(detector.update(v) for v in [0.0, 0.0, 0.0])

    def test_values_recorded(self):
        detector = ConvergenceDetector()
        detector.update(1.0)
        detector.update(2.0)
        assert detector.values == [1.0, 2.0]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConvergenceDetector(window=0)
        with pytest.raises(ValueError):
            ConvergenceDetector(tolerance=-0.1)


class TestStopWatch:
    def test_elapsed_increases(self):
        watch = StopWatch()
        first = watch.elapsed()
        time.sleep(0.01)
        assert watch.elapsed() > first
