"""Tests for Pareto-dominance utilities."""

import numpy as np
import pytest

from repro.moo.dominance import (
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    non_dominated_front,
    non_dominated_mask,
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])

    def test_weak_improvement_in_one_objective(self):
        assert dominates([1.0, 2.0], [1.0, 3.0])

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates([1.0, 2.0], [1.0, 2.0])

    def test_incomparable_vectors(self):
        assert not dominates([1.0, 3.0], [2.0, 1.0])
        assert not dominates([2.0, 1.0], [1.0, 3.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates([1.0, 2.0], [1.0, 2.0, 3.0])


class TestNonDominated:
    def test_mask_identifies_front(self):
        objectives = np.array([[1.0, 4.0], [2.0, 2.0], [4.0, 1.0], [3.0, 3.0]])
        mask = non_dominated_mask(objectives)
        assert mask.tolist() == [True, True, True, False]

    def test_front_extraction(self):
        objectives = np.array([[1.0, 4.0], [2.0, 2.0], [3.0, 3.0]])
        front = non_dominated_front(objectives)
        assert front.shape == (2, 2)

    def test_single_point_is_non_dominated(self):
        assert non_dominated_mask(np.array([[1.0, 2.0]])).tolist() == [True]

    def test_duplicates_are_both_kept(self):
        objectives = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        assert non_dominated_mask(objectives).tolist() == [True, True, False]


class TestSorting:
    def test_fronts_partition_population(self):
        rng = np.random.default_rng(0)
        objectives = rng.uniform(size=(30, 3))
        fronts = fast_non_dominated_sort(objectives)
        flattened = sorted(i for front in fronts for i in front)
        assert flattened == list(range(30))

    def test_first_front_matches_mask(self):
        rng = np.random.default_rng(1)
        objectives = rng.uniform(size=(25, 2))
        fronts = fast_non_dominated_sort(objectives)
        mask = non_dominated_mask(objectives)
        assert sorted(fronts[0]) == sorted(np.flatnonzero(mask).tolist())

    def test_later_fronts_are_dominated_by_earlier(self):
        objectives = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        fronts = fast_non_dominated_sort(objectives)
        assert fronts == [[0], [1], [2]]


class TestCrowding:
    def test_extremes_get_infinite_distance(self):
        objectives = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        distances = crowding_distance(objectives)
        assert np.isinf(distances[0])
        assert np.isinf(distances[3])
        assert np.isfinite(distances[1])
        assert np.isfinite(distances[2])

    def test_two_points_are_both_infinite(self):
        distances = crowding_distance(np.array([[0.0, 1.0], [1.0, 0.0]]))
        assert np.all(np.isinf(distances))

    def test_denser_points_have_lower_distance(self):
        # Index 2 sits in a tight cluster (both neighbours very close); index 1
        # has a wide gap on one side, so its crowding distance is larger.
        objectives = np.array(
            [[0.0, 10.0], [4.9, 5.1], [5.0, 5.0], [5.1, 4.9], [10.0, 0.0]]
        )
        distances = crowding_distance(objectives)
        assert distances[2] < distances[1]

    def test_identical_objective_column_handled(self):
        objectives = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        distances = crowding_distance(objectives)
        assert np.all(np.isfinite(distances[1:2]))
