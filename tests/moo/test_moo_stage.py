"""Tests for the MOO-STAGE baseline."""

import numpy as np
import pytest

from repro.moo.dominance import dominates
from repro.moo.moo_stage import MOOStage
from repro.moo.termination import Budget
from tests.moo.toyproblem import GridAnchorProblem


class TestMOOStage:
    def test_run_produces_non_dominated_archive(self):
        problem = GridAnchorProblem(2)
        optimizer = MOOStage(problem, population_size=10, searches_per_iteration=2,
                             local_search_steps=4, neighbors_per_step=2, rng=0)
        result = optimizer.run(Budget.iterations(6))
        objectives = result.objectives
        for i in range(len(objectives)):
            for j in range(len(objectives)):
                if i != j:
                    assert not dominates(objectives[i], objectives[j])

    def test_archive_phv_never_decreases(self):
        problem = GridAnchorProblem(2)
        optimizer = MOOStage(problem, population_size=10, searches_per_iteration=2,
                             local_search_steps=4, neighbors_per_step=2, rng=1)
        result = optimizer.run(Budget.iterations(8))
        reference = np.array([250.0, 250.0])
        history = result.hypervolume_history(reference)
        assert np.all(np.diff(history) >= -1e-9)

    def test_model_trained_and_used_for_start_selection(self):
        problem = GridAnchorProblem(2)
        optimizer = MOOStage(problem, population_size=8, searches_per_iteration=2,
                             local_search_steps=3, neighbors_per_step=2,
                             early_random_iterations=1, rng=2)
        optimizer.run(Budget.iterations(5))
        assert optimizer._model is not None
        starts = optimizer._select_starts(iteration=10)
        assert len(starts) == 2

    def test_training_set_capped(self):
        problem = GridAnchorProblem(2)
        optimizer = MOOStage(problem, population_size=8, searches_per_iteration=2,
                             local_search_steps=2, neighbors_per_step=2,
                             max_training_samples=5, rng=3)
        optimizer.run(Budget.iterations(6))
        assert len(optimizer._train_features) <= 5

    def test_respects_evaluation_budget(self):
        problem = GridAnchorProblem(2)
        optimizer = MOOStage(problem, population_size=8, searches_per_iteration=2,
                             local_search_steps=3, neighbors_per_step=2, rng=4)
        optimizer.run(Budget.evaluations(50))
        assert problem.eval_count <= 50 + 8

    def test_invalid_parameters(self):
        problem = GridAnchorProblem(2)
        with pytest.raises(ValueError):
            MOOStage(problem, searches_per_iteration=0)
        with pytest.raises(ValueError):
            MOOStage(problem, local_search_steps=0)
        with pytest.raises(ValueError):
            MOOStage(problem, neighbors_per_step=0)
