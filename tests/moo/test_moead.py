"""Tests for the MOEA/D baseline."""

import numpy as np
import pytest

from repro.moo.hypervolume import hypervolume
from repro.moo.moead import MOEAD
from repro.moo.termination import Budget
from tests.moo.toyproblem import GridAnchorProblem


class TestMOEAD:
    def test_run_produces_result_with_history(self):
        problem = GridAnchorProblem(2)
        optimizer = MOEAD(problem, population_size=10, neighborhood_size=4, rng=0)
        result = optimizer.run(Budget.iterations(5))
        assert result.algorithm == "MOEA/D"
        assert len(result.designs) == 10
        assert result.objectives.shape == (10, 2)
        assert len(result.history) == 6  # initial snapshot + 5 iterations
        assert result.evaluations > 10

    def test_improves_hypervolume_over_random_init(self):
        problem = GridAnchorProblem(2)
        optimizer = MOEAD(problem, population_size=12, neighborhood_size=4, rng=1)
        result = optimizer.run(Budget.iterations(15))
        reference = np.array([250.0, 250.0])
        history = result.hypervolume_history(reference)
        assert history[-1] >= history[0]
        assert history[-1] > 0

    def test_respects_evaluation_budget(self):
        problem = GridAnchorProblem(2)
        optimizer = MOEAD(problem, population_size=8, neighborhood_size=3, rng=2)
        result = optimizer.run(Budget.evaluations(50))
        assert result.evaluations <= 50 + 8  # initial population + strict in-loop checks

    def test_reference_point_tracks_population_minimum(self):
        problem = GridAnchorProblem(2)
        optimizer = MOEAD(problem, population_size=8, neighborhood_size=3, rng=3)
        optimizer.run(Budget.iterations(3))
        assert np.all(optimizer.reference <= optimizer.objectives.min(axis=0) + 1e-12)

    def test_three_objective_run(self):
        problem = GridAnchorProblem(3)
        optimizer = MOEAD(problem, population_size=10, neighborhood_size=4, rng=4)
        result = optimizer.run(Budget.iterations(4))
        assert result.objectives.shape[1] == 3
        assert hypervolume(result.pareto_front(), np.full(3, 300.0)) > 0

    def test_weights_stored_in_metadata(self):
        problem = GridAnchorProblem(2)
        optimizer = MOEAD(problem, population_size=6, neighborhood_size=3, rng=5)
        result = optimizer.run(Budget.iterations(2))
        assert result.metadata["weights"].shape == (6, 2)

    def test_invalid_parameters(self):
        problem = GridAnchorProblem(2)
        with pytest.raises(ValueError):
            MOEAD(problem, population_size=1)
        with pytest.raises(ValueError):
            MOEAD(problem, neighborhood_size=1)
        with pytest.raises(ValueError):
            MOEAD(problem, delta=1.5)
        with pytest.raises(ValueError):
            MOEAD(problem, replacement_limit=0)
        with pytest.raises(ValueError):
            MOEAD(problem, mutation_probability=-0.1)

    def test_reproducible_with_seed(self):
        result_a = MOEAD(GridAnchorProblem(2), population_size=8, rng=9).run(Budget.iterations(3))
        result_b = MOEAD(GridAnchorProblem(2), population_size=8, rng=9).run(Budget.iterations(3))
        assert np.allclose(result_a.objectives, result_b.objectives)
