"""Tests for optimisation results and search snapshots."""

import numpy as np
import pytest

from repro.moo.result import OptimizationResult, SearchSnapshot


def _result_with_history():
    history = [
        SearchSnapshot(iteration=0, evaluations=10, elapsed_seconds=0.1, front=[[4.0, 4.0]]),
        SearchSnapshot(iteration=1, evaluations=20, elapsed_seconds=0.2, front=[[3.0, 3.0]]),
        SearchSnapshot(iteration=2, evaluations=30, elapsed_seconds=0.3, front=[[2.0, 3.0], [3.0, 2.0]]),
        SearchSnapshot(iteration=3, evaluations=40, elapsed_seconds=0.4, front=[[2.0, 2.0]]),
    ]
    return OptimizationResult(
        algorithm="TEST",
        problem_name="toy",
        designs=["a", "b", "c"],
        objectives=np.array([[2.0, 2.0], [2.5, 2.5], [1.5, 3.5]]),
        history=history,
        evaluations=40,
        elapsed_seconds=0.4,
    )


class TestSnapshot:
    def test_front_is_2d(self):
        snap = SearchSnapshot(0, 5, 0.1, [1.0, 2.0])
        assert snap.front.shape == (1, 2)

    def test_snapshot_hypervolume(self):
        snap = SearchSnapshot(0, 5, 0.1, [[1.0, 1.0]])
        assert snap.hypervolume(np.array([2.0, 2.0])) == pytest.approx(1.0)


class TestResult:
    def test_pareto_front_filters_dominated(self):
        result = _result_with_history()
        front = result.pareto_front()
        assert front.shape == (2, 2)
        assert [2.5, 2.5] not in front.tolist()

    def test_pareto_designs_align_with_front(self):
        result = _result_with_history()
        assert result.pareto_designs() == ["a", "c"]

    def test_final_hypervolume(self):
        result = _result_with_history()
        reference = np.array([5.0, 5.0])
        assert result.final_hypervolume(reference) > 0

    def test_hypervolume_history_is_monotone_here(self):
        result = _result_with_history()
        reference = np.array([5.0, 5.0])
        history = result.hypervolume_history(reference)
        assert len(history) == 4
        assert np.all(np.diff(history) >= 0)

    def test_effort_to_reach(self):
        result = _result_with_history()
        reference = np.array([5.0, 5.0])
        target = result.history[1].hypervolume(reference)
        assert result.effort_to_reach(target, reference, measure="evaluations") == 20
        assert result.effort_to_reach(target, reference, measure="iterations") == 1
        assert result.effort_to_reach(target, reference, measure="seconds") == pytest.approx(0.2)

    def test_effort_to_reach_unreachable_returns_none(self):
        result = _result_with_history()
        assert result.effort_to_reach(1e9, np.array([5.0, 5.0])) is None

    def test_effort_to_reach_invalid_measure(self):
        result = _result_with_history()
        with pytest.raises(ValueError):
            result.effort_to_reach(1.0, np.array([5.0, 5.0]), measure="bogus")

    def test_convergence_effort_defaults_to_last_snapshot(self):
        result = _result_with_history()
        reference = np.array([5.0, 5.0])
        effort, phv = result.convergence_effort(reference, window=5)
        assert effort == 40
        assert phv == pytest.approx(result.history[-1].hypervolume(reference))

    def test_convergence_effort_detects_plateau(self):
        history = [
            SearchSnapshot(i, 10 * (i + 1), 0.1 * (i + 1), [[1.0, 1.0]]) for i in range(8)
        ]
        result = OptimizationResult("TEST", "toy", ["a"], np.array([[1.0, 1.0]]), history=history)
        effort, _ = result.convergence_effort(np.array([2.0, 2.0]), window=3)
        assert effort == 40  # first snapshot after the window with zero improvement

    def test_summary_fields(self):
        summary = _result_with_history().summary()
        assert summary["algorithm"] == "TEST"
        assert summary["pareto_size"] == 2
        assert summary["iterations"] == 3
