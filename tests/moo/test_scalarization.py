"""Tests for the scalarisation functions (Eqs. 8-9)."""

import numpy as np
import pytest

from repro.moo.scalarization import normalize_objectives, tchebycheff, weighted_distance


class TestWeightedDistance:
    def test_known_value(self):
        value = weighted_distance([3.0, 5.0], [0.5, 0.5], [1.0, 1.0])
        assert value == pytest.approx(0.5 * 2.0 + 0.5 * 4.0)

    def test_zero_at_reference_point(self):
        assert weighted_distance([1.0, 2.0], [0.3, 0.7], [1.0, 2.0]) == 0.0

    def test_scale_normalises_objectives(self):
        raw = weighted_distance([10.0, 1.0], [0.5, 0.5], [0.0, 0.0])
        scaled = weighted_distance([10.0, 1.0], [0.5, 0.5], [0.0, 0.0], scale=[10.0, 1.0])
        assert raw == pytest.approx(5.5)
        assert scaled == pytest.approx(1.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_distance([1.0], [-0.1], [0.0])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_distance([1.0, 2.0], [1.0], [0.0, 0.0])


class TestTchebycheff:
    def test_known_value(self):
        value = tchebycheff([3.0, 5.0], [0.5, 0.25], [1.0, 1.0])
        assert value == pytest.approx(max(0.5 * 2.0, 0.25 * 4.0))

    def test_zero_weight_replaced_by_epsilon(self):
        value = tchebycheff([2.0, 100.0], [1.0, 0.0], [0.0, 0.0])
        assert value >= 2.0  # first objective dominates, second still counts slightly
        assert value == pytest.approx(2.0, rel=1e-3)

    def test_better_design_scores_lower(self):
        weight = [0.5, 0.5]
        reference = [0.0, 0.0]
        assert tchebycheff([1.0, 1.0], weight, reference) < tchebycheff([2.0, 2.0], weight, reference)

    def test_scale_changes_dominant_objective(self):
        weight = [0.5, 0.5]
        reference = [0.0, 0.0]
        unscaled = tchebycheff([100.0, 1.0], weight, reference)
        scaled = tchebycheff([100.0, 1.0], weight, reference, scale=[100.0, 1.0])
        assert unscaled == pytest.approx(50.0)
        assert scaled == pytest.approx(0.5)

    def test_nonpositive_scale_entries_ignored(self):
        value = tchebycheff([2.0, 2.0], [0.5, 0.5], [0.0, 0.0], scale=[0.0, 2.0])
        assert value == pytest.approx(max(0.5 * 2.0 / 1.0, 0.5 * 2.0 / 2.0))


class TestNormalize:
    def test_normalisation_to_unit_box(self):
        objectives = np.array([[1.0, 10.0], [3.0, 30.0]])
        ideal = np.array([1.0, 10.0])
        nadir = np.array([3.0, 30.0])
        normalized = normalize_objectives(objectives, ideal, nadir)
        assert np.allclose(normalized, [[0.0, 0.0], [1.0, 1.0]])

    def test_degenerate_span_handled(self):
        objectives = np.array([[2.0, 5.0]])
        normalized = normalize_objectives(objectives, np.array([2.0, 5.0]), np.array([2.0, 5.0]))
        assert np.all(np.isfinite(normalized))
