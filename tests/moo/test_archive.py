"""Tests for the Pareto archive."""

import numpy as np
import pytest

from repro.moo.archive import ParetoArchive
from repro.moo.dominance import dominates


class TestArchiveUpdates:
    def test_add_non_dominated_points(self):
        archive = ParetoArchive()
        assert archive.add("a", [1.0, 3.0])
        assert archive.add("b", [3.0, 1.0])
        assert len(archive) == 2

    def test_dominated_candidate_rejected(self):
        archive = ParetoArchive()
        archive.add("a", [1.0, 1.0])
        assert not archive.add("b", [2.0, 2.0])
        assert len(archive) == 1

    def test_dominating_candidate_evicts_members(self):
        archive = ParetoArchive()
        archive.add("a", [2.0, 2.0])
        archive.add("b", [3.0, 1.0])
        # (1, 1) dominates both archived members, so it replaces them entirely.
        assert archive.add("c", [1.0, 1.0])
        assert len(archive) == 1
        assert archive.designs == ["c"]

    def test_duplicate_objectives_rejected(self):
        archive = ParetoArchive()
        archive.add("a", [1.0, 2.0])
        assert not archive.add("b", [1.0, 2.0])

    def test_archive_members_mutually_non_dominated(self):
        rng = np.random.default_rng(0)
        archive = ParetoArchive()
        for idx in range(100):
            archive.add(idx, rng.uniform(size=3))
        objectives = archive.objectives
        for i in range(len(objectives)):
            for j in range(len(objectives)):
                if i != j:
                    assert not dominates(objectives[i], objectives[j])

    def test_add_many_counts_insertions(self):
        archive = ParetoArchive()
        inserted = archive.add_many(["a", "b", "c"], np.array([[1.0, 3.0], [3.0, 1.0], [4.0, 4.0]]))
        assert inserted == 2


class TestTruncation:
    def test_max_size_enforced(self):
        rng = np.random.default_rng(1)
        archive = ParetoArchive(max_size=5)
        for idx in range(200):
            point = rng.uniform(size=2)
            archive.add(idx, [point[0], 1.0 - point[0]])
        assert len(archive) <= 5

    def test_extreme_points_survive_truncation(self):
        archive = ParetoArchive(max_size=3)
        points = [[0.0, 1.0], [0.25, 0.75], [0.5, 0.5], [0.75, 0.25], [1.0, 0.0]]
        for idx, point in enumerate(points):
            archive.add(idx, point)
        objectives = archive.objectives
        assert [0.0, 1.0] in objectives.tolist()
        assert [1.0, 0.0] in objectives.tolist()

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            ParetoArchive(max_size=0)


class TestQueries:
    def test_ideal_point(self):
        archive = ParetoArchive()
        archive.add("a", [1.0, 3.0])
        archive.add("b", [3.0, 1.0])
        assert np.allclose(archive.ideal_point(), [1.0, 1.0])

    def test_ideal_point_empty_raises(self):
        with pytest.raises(ValueError):
            ParetoArchive().ideal_point()

    def test_best_for_weight(self):
        archive = ParetoArchive()
        archive.add("low-first", [0.1, 0.9])
        archive.add("low-second", [0.9, 0.1])
        reference = np.array([0.0, 0.0])
        design, _ = archive.best_for_weight(np.array([1.0, 0.0]), reference)
        assert design == "low-first"
        design, _ = archive.best_for_weight(np.array([0.0, 1.0]), reference)
        assert design == "low-second"

    def test_iteration_yields_pairs(self):
        archive = ParetoArchive()
        archive.add("a", [1.0, 2.0])
        pairs = list(archive)
        assert pairs[0][0] == "a"
        assert np.allclose(pairs[0][1], [1.0, 2.0])

    def test_objectives_returns_copy(self):
        archive = ParetoArchive()
        archive.add("a", [1.0, 2.0])
        view = archive.objectives
        view[0, 0] = 99.0
        assert archive.objectives[0, 0] == pytest.approx(1.0)
