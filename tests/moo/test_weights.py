"""Tests for weight-vector generation and neighbourhoods."""

import numpy as np
import pytest

from repro.moo.weights import das_dennis_weights, neighborhoods, uniform_weights


class TestDasDennis:
    def test_two_objective_lattice(self):
        weights = das_dennis_weights(2, 10)
        assert weights.shape == (11, 2)
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert np.allclose(sorted(weights[:, 0]), np.linspace(0, 1, 11))

    def test_three_objective_lattice_count(self):
        # C(d + M - 1, M - 1) with d=4, M=3 -> C(6,2) = 15
        assert das_dennis_weights(3, 4).shape == (15, 3)

    def test_all_weights_nonnegative(self):
        weights = das_dennis_weights(4, 5)
        assert np.all(weights >= 0)
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            das_dennis_weights(0, 2)
        with pytest.raises(ValueError):
            das_dennis_weights(2, 0)


class TestUniformWeights:
    @pytest.mark.parametrize("num_objectives,count", [(2, 7), (3, 16), (4, 20), (5, 50)])
    def test_exact_count_and_simplex(self, num_objectives, count):
        weights = uniform_weights(num_objectives, count, rng=0)
        assert weights.shape == (count, num_objectives)
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert np.all(weights >= 0)

    def test_includes_extreme_directions_when_subsampling(self):
        weights = uniform_weights(3, 12, rng=0)
        for axis in range(3):
            assert weights[:, axis].max() == pytest.approx(1.0)

    def test_single_objective(self):
        weights = uniform_weights(1, 5, rng=0)
        assert np.allclose(weights, 1.0)

    def test_rows_are_distinct(self):
        weights = uniform_weights(3, 20, rng=0)
        assert len({tuple(np.round(w, 9)) for w in weights}) == 20

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            uniform_weights(2, 0)


class TestNeighborhoods:
    def test_shape_and_self_first(self):
        weights = uniform_weights(3, 10, rng=0)
        neighbor_index = neighborhoods(weights, 4)
        assert neighbor_index.shape == (10, 4)
        assert np.all(neighbor_index[:, 0] == np.arange(10))

    def test_neighbors_are_closest_vectors(self):
        weights = uniform_weights(2, 11, rng=0)
        neighbor_index = neighborhoods(weights, 3)
        for i in range(11):
            distances = np.linalg.norm(weights - weights[i], axis=1)
            expected = set(np.argsort(distances, kind="stable")[:3].tolist())
            assert set(neighbor_index[i].tolist()) == expected

    def test_size_clamped_to_population(self):
        weights = uniform_weights(2, 5, rng=0)
        assert neighborhoods(weights, 50).shape == (5, 5)
