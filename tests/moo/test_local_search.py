"""Tests for the generic greedy-descent local search."""

import numpy as np
import pytest

from repro.moo.local_search import greedy_descent
from repro.moo.problem import Problem


class QuadraticProblem(Problem):
    """Toy 2-objective problem over integer points: minimise distance to two anchors."""

    def __init__(self):
        self.anchor_a = np.array([0.0, 0.0])
        self.anchor_b = np.array([10.0, 10.0])
        self.eval_count = 0

    @property
    def num_objectives(self):
        return 2

    def evaluate(self, design):
        self.eval_count += 1
        point = np.asarray(design, dtype=float)
        return np.array(
            [np.sum((point - self.anchor_a) ** 2), np.sum((point - self.anchor_b) ** 2)]
        )

    def random_design(self, rng=None):
        rng = np.random.default_rng(rng)
        return tuple(rng.integers(0, 11, size=2).tolist())

    def neighbor(self, design, rng=None):
        rng = np.random.default_rng() if rng is None else rng
        x, y = design
        dx, dy = rng.integers(-1, 2, size=2)
        return (int(np.clip(x + dx, 0, 10)), int(np.clip(y + dy, 0, 10)))

    def crossover(self, a, b, rng=None):
        return (a[0], b[1])

    def mutate(self, design, rng=None):
        return self.neighbor(design, rng)


class TestGreedyDescent:
    def test_descends_single_objective(self):
        problem = QuadraticProblem()
        start = (10, 10)
        start_obj = problem.evaluate(start)
        result = greedy_descent(
            problem,
            start,
            start_obj,
            scalar_fn=lambda design, obj: obj[0],
            max_steps=60,
            neighbors_per_step=4,
            rng=np.random.default_rng(0),
        )
        assert result.best_value < result.start_value
        assert result.best_objectives[0] < start_obj[0]
        assert result.improvement > 0

    def test_reaches_optimum_with_enough_steps(self):
        problem = QuadraticProblem()
        start = (10, 10)
        result = greedy_descent(
            problem,
            start,
            problem.evaluate(start),
            scalar_fn=lambda design, obj: obj[0],
            max_steps=200,
            neighbors_per_step=6,
            patience=10,
            rng=np.random.default_rng(1),
        )
        assert result.best_design == (0, 0)

    def test_trajectory_contains_start_and_all_candidates(self):
        problem = QuadraticProblem()
        start = (5, 5)
        result = greedy_descent(
            problem,
            start,
            problem.evaluate(start),
            scalar_fn=lambda design, obj: obj[0],
            max_steps=5,
            neighbors_per_step=3,
            rng=np.random.default_rng(2),
        )
        assert result.trajectory[0].design == start
        assert len(result.trajectory) == result.evaluations + 1

    def test_stops_after_patience_without_improvement(self):
        problem = QuadraticProblem()
        start = (0, 0)  # already optimal for objective 0
        result = greedy_descent(
            problem,
            start,
            problem.evaluate(start),
            scalar_fn=lambda design, obj: obj[0],
            max_steps=50,
            neighbors_per_step=2,
            patience=2,
            rng=np.random.default_rng(3),
        )
        assert result.best_design == start
        assert result.evaluations <= 50 * 2

    def test_custom_evaluate_callable_is_used(self):
        problem = QuadraticProblem()
        calls = []

        def counting_evaluate(design):
            calls.append(design)
            return problem.evaluate(design)

        greedy_descent(
            problem,
            (5, 5),
            problem.evaluate((5, 5)),
            scalar_fn=lambda design, obj: obj[0],
            max_steps=3,
            neighbors_per_step=2,
            rng=np.random.default_rng(4),
            evaluate=counting_evaluate,
        )
        assert len(calls) > 0

    def test_invalid_arguments(self):
        problem = QuadraticProblem()
        with pytest.raises(ValueError):
            greedy_descent(problem, (0, 0), problem.evaluate((0, 0)), lambda d, o: o[0], max_steps=0)
        with pytest.raises(ValueError):
            greedy_descent(
                problem, (0, 0), problem.evaluate((0, 0)), lambda d, o: o[0], neighbors_per_step=0
            )
