"""Tests for the hypervolume computation."""

import numpy as np
import pytest

from repro.moo.hypervolume import (
    hypervolume,
    hypervolume_contribution,
    hypervolume_monte_carlo,
    reference_point_from,
)


class TestExactHypervolume:
    def test_single_point_2d(self):
        assert hypervolume([[1.0, 1.0]], [3.0, 3.0]) == pytest.approx(4.0)

    def test_single_point_3d(self):
        assert hypervolume([[0.0, 0.0, 0.0]], [1.0, 2.0, 3.0]) == pytest.approx(6.0)

    def test_two_non_dominated_points_2d(self):
        points = [[1.0, 2.0], [2.0, 1.0]]
        # Union of two boxes minus the overlap: 2*2 + 2*2 - 1*... compute manually:
        # box1 = (3-1)*(3-2)=2, box2 = (3-2)*(3-1)=2, overlap=(3-2)*(3-2)=1 -> 3
        assert hypervolume(points, [3.0, 3.0]) == pytest.approx(3.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume([[1.0, 1.0]], [4.0, 4.0])
        extended = hypervolume([[1.0, 1.0], [2.0, 2.0]], [4.0, 4.0])
        assert base == pytest.approx(extended)

    def test_point_outside_reference_ignored(self):
        assert hypervolume([[5.0, 5.0]], [3.0, 3.0]) == 0.0
        assert hypervolume([[5.0, 1.0], [1.0, 1.0]], [3.0, 3.0]) == pytest.approx(4.0)

    def test_empty_set(self):
        assert hypervolume(np.empty((0, 2)), [1.0, 1.0]) == 0.0

    def test_adding_non_dominated_point_increases_hv(self):
        rng = np.random.default_rng(0)
        points = rng.uniform(0.2, 0.8, size=(6, 3))
        reference = np.full(3, 1.0)
        base = hypervolume(points, reference)
        better = np.vstack([points, [[0.05, 0.05, 0.05]]])
        assert hypervolume(better, reference) > base

    def test_known_3d_value(self):
        points = [[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]]
        reference = [4.0, 4.0, 4.0]
        # box1 = 3*2*1 = 6, box2 = 1*2*3 = 6, overlap = 1*2*1 = 2 -> 10
        assert hypervolume(points, reference) == pytest.approx(10.0)

    def test_duplicate_points_counted_once(self):
        points = [[1.0, 1.0], [1.0, 1.0]]
        assert hypervolume(points, [2.0, 2.0]) == pytest.approx(1.0)

    def test_mismatched_reference_rejected(self):
        with pytest.raises(ValueError):
            hypervolume([[1.0, 1.0]], [2.0, 2.0, 2.0])

    def test_agrees_with_monte_carlo_estimate(self):
        rng = np.random.default_rng(5)
        points = rng.uniform(0.0, 0.9, size=(8, 3))
        reference = np.ones(3)
        exact = hypervolume(points, reference)
        estimate = hypervolume_monte_carlo(
            points, reference, ideal=np.zeros(3), num_samples=40_000, rng=3
        )
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_five_objective_front(self):
        rng = np.random.default_rng(7)
        points = rng.uniform(0.0, 1.0, size=(12, 5))
        reference = np.full(5, 1.2)
        value = hypervolume(points, reference)
        assert 0.0 < value < np.prod(reference)


class TestContribution:
    def test_contribution_matches_difference(self):
        rng = np.random.default_rng(1)
        front = rng.uniform(0.2, 0.9, size=(6, 3))
        reference = np.ones(3)
        point = np.array([0.15, 0.5, 0.4])
        expected = hypervolume(np.vstack([front, point]), reference) - hypervolume(front, reference)
        assert hypervolume_contribution(point, front, reference) == pytest.approx(expected)

    def test_dominated_point_has_zero_contribution(self):
        front = np.array([[0.1, 0.1]])
        assert hypervolume_contribution(np.array([0.5, 0.5]), front, np.ones(2)) == pytest.approx(0.0)

    def test_point_outside_reference_has_zero_contribution(self):
        front = np.array([[0.1, 0.1]])
        assert hypervolume_contribution(np.array([2.0, 0.0]), front, np.ones(2)) == 0.0

    def test_contribution_to_empty_front_is_box_volume(self):
        point = np.array([0.5, 0.5])
        assert hypervolume_contribution(point, np.empty((0, 2)), np.ones(2)) == pytest.approx(0.25)


class TestReferencePoint:
    def test_reference_dominates_all_points(self):
        rng = np.random.default_rng(2)
        points = rng.uniform(size=(10, 4))
        reference = reference_point_from(points, margin=0.1)
        assert np.all(reference > points.max(axis=0) - 1e-12)

    def test_degenerate_dimension_still_gets_margin(self):
        points = np.array([[1.0, 5.0], [2.0, 5.0]])
        reference = reference_point_from(points)
        assert reference[1] > 5.0
