"""A small combinatorial bi-/tri-objective toy problem shared by optimiser tests.

Designs are integer grid points; the objectives are squared distances to fixed
anchor points, so the Pareto set is the segment(s) between the anchors.  The
problem is cheap to evaluate, has a known ideal point, and exercises the full
Problem interface (neighbours, crossover, mutation, features).
"""

from __future__ import annotations

import numpy as np

from repro.moo.problem import Problem


class GridAnchorProblem(Problem):
    """Minimise squared distances to ``num_objectives`` anchor points on a grid."""

    def __init__(self, num_objectives: int = 2, size: int = 10):
        self.size = size
        corners = [
            (0, 0),
            (size, size),
            (0, size),
            (size, 0),
            (size // 2, 0),
        ]
        self.anchors = [np.asarray(c, dtype=float) for c in corners[:num_objectives]]
        self._num_objectives = num_objectives
        self.eval_count = 0

    @property
    def name(self) -> str:
        return f"grid-anchor-{self._num_objectives}obj"

    @property
    def num_objectives(self) -> int:
        return self._num_objectives

    def evaluate(self, design) -> np.ndarray:
        self.eval_count += 1
        point = np.asarray(design, dtype=float)
        return np.array([float(np.sum((point - anchor) ** 2)) for anchor in self.anchors])

    def random_design(self, rng=None):
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        return tuple(int(v) for v in rng.integers(0, self.size + 1, size=2))

    def neighbor(self, design, rng=None):
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        x, y = design
        dx, dy = rng.integers(-1, 2, size=2)
        return (
            int(np.clip(x + dx, 0, self.size)),
            int(np.clip(y + dy, 0, self.size)),
        )

    def crossover(self, parent_a, parent_b, rng=None):
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        if rng.random() < 0.5:
            return (parent_a[0], parent_b[1])
        return (parent_b[0], parent_a[1])

    def mutate(self, design, rng=None):
        return self.neighbor(design, rng)

    def design_key(self, design):
        return tuple(design)

    def features(self, design) -> np.ndarray:
        x, y = design
        return np.array([float(x), float(y), float(x + y), float(abs(x - y))])

    @property
    def evaluations(self) -> int:
        return self.eval_count
