"""Seeded routing-cache on/off equivalence for every baseline optimiser.

The RoutingEngine changes *how* routing tables are obtained (cache hit,
incremental repair, fresh build) but must never change a single route, so a
seeded run with ``routing_cache=True`` has to reproduce the
``routing_cache=False`` (historical fresh-build) run exactly: identical design
trajectories, objective matrices (rtol=1e-12) and evaluation counts across
NSGA-II, MOOS, MOO-STAGE and MOELA, plus the MOEA/D baseline.
"""

import numpy as np
import pytest

from repro.core.config import MOELAConfig
from repro.core.moela import MOELA
from repro.core.problem import NocDesignProblem
from repro.moo.moead import MOEAD
from repro.moo.moo_stage import MOOStage
from repro.moo.moos import MOOS
from repro.moo.nsga2 import NSGA2
from repro.moo.termination import Budget

SEARCH_SHAPE = dict(searches_per_iteration=2, local_search_steps=3, neighbors_per_step=2)


def make_optimizer(name: str, problem: NocDesignProblem, seed: int):
    if name == "NSGA-II":
        return NSGA2(problem, population_size=6, rng=seed)
    if name == "MOOS":
        return MOOS(problem, population_size=6, rng=seed, **SEARCH_SHAPE)
    if name == "MOO-STAGE":
        return MOOStage(problem, population_size=6, rng=seed, **SEARCH_SHAPE)
    if name == "MOELA":
        return MOELA(problem, MOELAConfig.smoke(), rng=seed)
    if name == "MOEA/D":
        return MOEAD(problem, population_size=6, rng=seed)
    raise ValueError(name)


def run_with_routing_cache(name: str, workload, enabled: bool, seed: int, budget: int):
    problem = NocDesignProblem(workload, scenario=3, routing_cache=enabled)
    optimizer = make_optimizer(name, problem, seed)
    result = optimizer.run(Budget.evaluations(budget))
    return result, problem


def assert_identical(result_on, result_off):
    assert result_on.designs == result_off.designs
    np.testing.assert_allclose(result_on.objectives, result_off.objectives, rtol=1e-12)
    assert result_on.evaluations == result_off.evaluations
    for snap_on, snap_off in zip(result_on.history, result_off.history):
        np.testing.assert_allclose(snap_on.front, snap_off.front, rtol=1e-12)


BASELINES = ["NSGA-II", "MOOS", "MOO-STAGE", "MOELA"]


class TestRoutingCacheEquivalence:
    @pytest.mark.parametrize("name", BASELINES)
    @pytest.mark.parametrize("seed", [3, 77])
    def test_identical_trajectories(self, name, seed, tiny_workload):
        result_on, problem_on = run_with_routing_cache(name, tiny_workload, True, seed, 120)
        result_off, problem_off = run_with_routing_cache(name, tiny_workload, False, seed, 120)
        assert_identical(result_on, result_off)
        # The cached run must actually have exercised the engine...
        stats = problem_on.routing_cache_stats()
        assert stats["enabled"] and stats["requests"] > 0
        assert stats["hits"] + stats["incremental_repairs"] > 0
        # ...and the escape hatch must have bypassed it entirely.
        off_stats = problem_off.routing_cache_stats()
        assert not off_stats["enabled"] and off_stats["requests"] == 0

    def test_moead_baseline_identical(self, tiny_workload):
        result_on, _ = run_with_routing_cache("MOEA/D", tiny_workload, True, 9, 120)
        result_off, _ = run_with_routing_cache("MOEA/D", tiny_workload, False, 9, 120)
        assert_identical(result_on, result_off)

    @pytest.mark.parametrize("name", BASELINES)
    def test_results_carry_routing_cache_metadata(self, name, tiny_workload):
        result, problem = run_with_routing_cache(name, tiny_workload, True, 5, 60)
        assert result.metadata["routing_cache"] == problem.routing_cache_stats()
        assert result.metadata["routing_cache"]["enabled"]

    def test_scalar_and_batch_paths_share_the_engine(self, tiny_workload):
        """batch_evaluation=False still routes through the same engine instance."""
        problem = NocDesignProblem(tiny_workload, scenario=3, routing_cache=True)
        optimizer = NSGA2(problem, population_size=6, rng=4, batch_evaluation=False)
        optimizer.run(Budget.evaluations(80))
        stats = problem.routing_cache_stats()
        assert stats["requests"] > 0 and stats["hits"] > 0
