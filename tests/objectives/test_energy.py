"""Tests for the NoC energy objective (Eq. 4)."""

import numpy as np
import pytest

from repro.noc.mesh import mesh_design
from repro.noc.routing import RoutingTables
from repro.objectives.energy import communication_energy
from repro.workloads.workload import Workload


def _single_flow(config, src_pe, dst_pe, rate=1.0):
    traffic = np.zeros((config.num_tiles, config.num_tiles))
    traffic[src_pe, dst_pe] = rate
    return Workload("single", config, traffic, np.ones(config.num_tiles))


class TestEnergy:
    def test_manual_single_flow_energy(self, tiny_config):
        config = tiny_config
        design = mesh_design(config)
        routing = RoutingTables(design, config.grid)
        workload = _single_flow(config, 0, 5, rate=2.0)
        src_tile, dst_tile = design.tile_of(0), design.tile_of(5)
        links = routing.path_links(src_tile, dst_tile)
        tiles = routing.path_tiles(src_tile, dst_tile)
        ports = design.degrees() + 1
        expected = 2.0 * (
            config.link_energy_per_flit * float(routing.link_lengths[links].sum())
            + config.router_energy_per_port * float(ports[tiles].sum())
        )
        assert communication_energy(design, workload, routing) == pytest.approx(expected)

    def test_energy_scales_with_traffic(self, tiny_config, tiny_workload, tiny_designs):
        design = tiny_designs[0]
        base = communication_energy(design, tiny_workload)
        doubled = communication_energy(design, tiny_workload.scaled(2.0))
        assert doubled == pytest.approx(2.0 * base)

    def test_energy_positive_for_real_workloads(self, tiny_workload, tiny_designs):
        for design in tiny_designs:
            assert communication_energy(design, tiny_workload) > 0

    def test_longer_routes_cost_more_energy(self, tiny_config):
        config = tiny_config
        design = mesh_design(config)
        # Choose PEs on adjacent vs opposite tiles by picking their host tiles.
        pe_near_a = design.pe_at(0)
        pe_near_b = design.pe_at(1)
        pe_far_b = design.pe_at(7)
        near = communication_energy(design, _single_flow(config, pe_near_a, pe_near_b))
        far = communication_energy(design, _single_flow(config, pe_near_a, pe_far_b))
        assert far > near

    def test_same_tile_flow_costs_one_router(self, tiny_config):
        config = tiny_config
        design = mesh_design(config)
        pe = design.pe_at(3)
        workload = _single_flow(config, pe, pe, rate=0.0)  # zero diagonal enforced; use explicit check
        # Instead verify the branch through a crafted two-PE same-tile case is
        # unreachable: any two distinct PEs occupy distinct tiles, so just
        # assert the energy of an empty workload is zero.
        empty = Workload("empty", config, np.zeros((config.num_tiles, config.num_tiles)), np.ones(config.num_tiles))
        assert communication_energy(design, empty) == 0.0
