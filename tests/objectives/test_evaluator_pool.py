"""Fork-once evaluation pool: compact payloads, lifecycle, warm-start store.

Complements ``test_batch_equivalence.py`` (which pins pooled == serial on a
plain batch) with the machinery this pool is made of: the chunk payload
round-trip, deduplication of shared topologies, the pool's deterministic
lifecycle (persistence across batches, release on failure and on context
exit) and the disk store that lets workers repair incrementally.
"""

import numpy as np
import pytest

import repro.objectives.evaluator as evaluator_module
from repro.noc.constraints import random_design
from repro.noc.design import MoveDelta, NocDesign, annotate_move, move_delta_of
from repro.noc.moves import MoveGenerator
from repro.noc.platform import PlatformConfig
from repro.objectives.evaluator import (
    ObjectiveEvaluator,
    _evaluate_chunk,
    _init_worker,
    _pack_chunk,
    _parent_topologies,
    _unpack_link_sets,
    scenario_for,
)
from repro.workloads.registry import get_workload

PLATFORM = PlatformConfig.tiny_2x2x2()
WORKLOAD = get_workload("BFS", PLATFORM, seed=0)


def _brood(parent, size=6, seed=3):
    moves = MoveGenerator(PLATFORM, WORKLOAD)
    rng = np.random.default_rng(seed)
    return [moves.random_neighbor(parent, rng) for _ in range(size)]


class TestChunkPayload:
    def test_pack_unpack_round_trip(self):
        parent = random_design(PLATFORM, 1)
        brood = _brood(parent)
        payload = _pack_chunk(brood)
        placements, topology_idx, topology_ends, topology_counts = payload[:4]
        parent_idx, parent_ends, parent_counts = payload[4:]
        topologies = _unpack_link_sets(topology_ends, topology_counts)
        parents = _unpack_link_sets(parent_ends, parent_counts)
        for pos, design in enumerate(brood):
            assert tuple(placements[pos].tolist()) == design.placement
            assert topologies[int(topology_idx[pos])] == design.links
            delta = move_delta_of(design)
            if delta is not None and delta.parent_links != design.links:
                assert parents[int(parent_idx[pos])] == delta.parent_links
            else:
                assert int(parent_idx[pos]) == -1

    def test_shared_topology_pickled_once(self):
        """A placement brood shares the parent's link set: the payload must
        carry that topology exactly once, not per design."""
        parent = random_design(PLATFORM, 2)
        brood = [
            annotate_move(
                NocDesign(placement=design.placement, links=parent.links),
                MoveDelta(kind="swap", parent_links=parent.links),
            )
            for design in _brood(parent)
        ]
        _, topology_idx, _, topology_counts = _pack_chunk(brood)[:4]
        assert len(topology_counts) == 1
        assert set(topology_idx.tolist()) == {0}

    def test_parent_topologies_dedup_first_seen_order(self):
        parent_a, parent_b = random_design(PLATFORM, 4), random_design(PLATFORM, 17)
        assert parent_a.links != parent_b.links
        child = random_design(PLATFORM, 20)

        def fresh_child():  # annotate_move overwrites in place: one copy each
            return NocDesign(placement=child.placement, links=child.links)

        brood = [
            annotate_move(fresh_child(), MoveDelta(kind="rewire", parent_links=parent_a.links)),
            annotate_move(fresh_child(), MoveDelta(kind="rewire", parent_links=parent_b.links)),
            annotate_move(fresh_child(), MoveDelta(kind="rewire", parent_links=parent_a.links)),
            # Placement move: parent links equal the child's own links, so
            # there is nothing to warm-start from — must be filtered out.
            annotate_move(fresh_child(), MoveDelta(kind="swap", parent_links=child.links)),
            fresh_child(),  # unannotated
        ]
        parents = _parent_topologies(brood)
        assert parents == [parent_a.links, parent_b.links]

    def test_chunk_evaluation_matches_inline(self):
        """_evaluate_chunk in this process (worker globals primed the same
        way _init_worker does in a real fork) reproduces _compute exactly."""
        parent = random_design(PLATFORM, 6)
        brood = _brood(parent)
        _init_worker(WORKLOAD, scenario_for(5), routing_cache=True)
        try:
            block = _evaluate_chunk(_pack_chunk(brood))
        finally:
            evaluator_module._WORKER_EVALUATOR = None
        inline = ObjectiveEvaluator(WORKLOAD, scenario_for(5), cache_size=0)
        expected = np.stack([inline._compute(design) for design in brood])
        np.testing.assert_array_equal(block, expected)


class TestPooledEquivalence:
    def test_duplicates_and_annotated_moves_bitwise(self):
        """Duplicates collapse to one computation and move-annotated children
        take the worker repair path — output must stay bit-identical."""
        parent = random_design(PLATFORM, 7)
        brood = _brood(parent)
        batch = [parent] + brood + [brood[0], parent]
        serial = ObjectiveEvaluator(WORKLOAD, scenario_for(5), cache_size=0)
        expected = serial.evaluate_many(batch)
        pooled = ObjectiveEvaluator(WORKLOAD, scenario_for(5), cache_size=0)
        try:
            actual = pooled.evaluate_many(batch, parallel=True, max_workers=2)
        finally:
            pooled.shutdown()
        np.testing.assert_array_equal(actual, expected)

    def test_store_backed_pool_bitwise_and_counted(self, tmp_path):
        """With route_store_path the parent is shared to disk before fan-out
        and the evaluator's stats expose the store counters."""
        parent = random_design(PLATFORM, 8)
        brood = _brood(parent, size=8)
        serial = ObjectiveEvaluator(WORKLOAD, scenario_for(5), cache_size=0)
        serial.evaluate(parent)
        expected = serial.evaluate_many(brood)
        assert "store_hits" not in serial.routing_cache_stats()

        pooled = ObjectiveEvaluator(
            WORKLOAD, scenario_for(5), cache_size=0, route_store_path=str(tmp_path)
        )
        pooled.evaluate(parent)
        try:
            actual = pooled.evaluate_many(brood, parallel=True, max_workers=2)
        finally:
            pooled.shutdown()
        np.testing.assert_array_equal(actual, expected)
        stats = pooled.routing_cache_stats()
        assert stats["store_saves"] >= 1  # the parent topology was published
        assert any(path.suffix == ".npz" for path in tmp_path.iterdir())


class TestPoolLifecycle:
    def test_pool_persists_across_batches_and_rebuilds_on_resize(self):
        evaluator = ObjectiveEvaluator(WORKLOAD, scenario_for(5), cache_size=0)
        designs = [random_design(PLATFORM, seed) for seed in (10, 11)]
        try:
            evaluator.evaluate_many(designs, parallel=True, max_workers=2)
            first = evaluator._pool
            assert first is not None
            evaluator.evaluate_many(designs, parallel=True, max_workers=2)
            assert evaluator._pool is first  # fork-once: same pool reused
            evaluator.evaluate_many(designs, parallel=True, max_workers=1)
            assert evaluator._pool is not first  # resize rebuilds
        finally:
            evaluator.shutdown()
        assert evaluator._pool is None

    def test_failed_batch_releases_pool(self, monkeypatch):
        evaluator = ObjectiveEvaluator(WORKLOAD, scenario_for(5), cache_size=0)
        designs = [random_design(PLATFORM, seed) for seed in (12, 13)]

        def explode(designs):
            raise RuntimeError("payload packing failed")

        monkeypatch.setattr(evaluator_module, "_pack_chunk", explode)
        with pytest.raises(RuntimeError, match="payload packing failed"):
            evaluator.evaluate_many(designs, parallel=True, max_workers=2)
        assert evaluator._pool is None  # no orphaned worker processes

    def test_parallel_context_scopes_default_and_releases(self):
        evaluator = ObjectiveEvaluator(WORKLOAD, scenario_for(5), cache_size=0)
        designs = [random_design(PLATFORM, seed) for seed in (14, 15)]
        serial = ObjectiveEvaluator(WORKLOAD, scenario_for(5), cache_size=0)
        expected = serial.evaluate_many(designs)
        assert evaluator._parallel_default is False
        with evaluator.parallel(max_workers=2):
            assert evaluator._parallel_default is True
            assert evaluator._pool is not None  # primed eagerly on entry
            np.testing.assert_array_equal(evaluator.evaluate_many(designs), expected)
        assert evaluator._parallel_default is False
        assert evaluator._pool is None

    def test_parallel_context_releases_on_error(self):
        evaluator = ObjectiveEvaluator(WORKLOAD, scenario_for(5), cache_size=0)
        with pytest.raises(ValueError, match="sentinel"):
            with evaluator.parallel(max_workers=1):
                raise ValueError("sentinel")
        assert evaluator._parallel_default is False
        assert evaluator._pool is None
