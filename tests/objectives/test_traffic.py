"""Tests for the traffic mean/variance objectives (Eqs. 1-2)."""

import numpy as np
import pytest

from repro.noc.design import NocDesign
from repro.noc.mesh import mesh_design
from repro.noc.routing import RoutingTables
from repro.objectives.traffic import link_utilizations, traffic_mean, traffic_variance
from repro.workloads.workload import Workload


def _single_pair_workload(config, src_pe, dst_pe, rate):
    traffic = np.zeros((config.num_tiles, config.num_tiles))
    traffic[src_pe, dst_pe] = rate
    power = np.ones(config.num_tiles)
    return Workload("single", config, traffic, power)


class TestLinkUtilization:
    def test_single_flow_loads_exactly_its_path(self, tiny_config):
        design = mesh_design(tiny_config)
        routing = RoutingTables(design, tiny_config.grid)
        src_pe, dst_pe = 0, 5
        workload = _single_pair_workload(tiny_config, src_pe, dst_pe, 3.0)
        tile_of_pe = design.tile_of_pe()
        path = routing.path_links(int(tile_of_pe[src_pe]), int(tile_of_pe[dst_pe]))
        utilization = link_utilizations(design, workload, routing)
        for link_idx in range(design.num_links):
            expected = 3.0 if link_idx in path else 0.0
            assert utilization[link_idx] == pytest.approx(expected)

    def test_utilization_scales_linearly_with_traffic(self, tiny_config, tiny_workload, tiny_designs):
        design = tiny_designs[0]
        base = link_utilizations(design, tiny_workload)
        doubled = link_utilizations(design, tiny_workload.scaled(2.0))
        assert np.allclose(doubled, 2.0 * base)

    def test_total_utilization_at_least_total_traffic(self, tiny_config, tiny_workload, tiny_designs):
        # Every flow between distinct tiles crosses at least one link.
        design = tiny_designs[0]
        utilization = link_utilizations(design, tiny_workload)
        same_tile = sum(
            f for s, d, f in tiny_workload.communicating_pairs()
            if design.tile_of(s) == design.tile_of(d)
        )
        assert utilization.sum() >= tiny_workload.total_traffic() - same_tile - 1e-9

    def test_shared_routing_gives_same_result(self, tiny_config, tiny_workload, tiny_designs):
        design = tiny_designs[0]
        routing = RoutingTables(design, tiny_config.grid)
        assert np.allclose(
            link_utilizations(design, tiny_workload, routing),
            link_utilizations(design, tiny_workload),
        )


class TestMeanVariance:
    def test_mean_and_variance_formulas(self):
        utilization = np.array([1.0, 2.0, 3.0, 6.0])
        assert traffic_mean(utilization) == pytest.approx(3.0)
        assert traffic_variance(utilization) == pytest.approx(np.var(utilization))

    def test_uniform_utilization_has_zero_variance(self):
        utilization = np.full(10, 4.2)
        assert traffic_variance(utilization) == pytest.approx(0.0)

    def test_empty_utilization(self):
        empty = np.array([])
        assert traffic_mean(empty) == 0.0
        assert traffic_variance(empty) == 0.0
