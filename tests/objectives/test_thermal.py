"""Tests for the thermal model (Eqs. 5-7)."""

import numpy as np
import pytest

from repro.noc.constraints import random_design
from repro.noc.platform import PlatformConfig
from repro.objectives.thermal import ThermalModel, thermal_objective
from repro.workloads.workload import Workload


def _uniform_workload(config, watts=2.0):
    traffic = np.zeros((config.num_tiles, config.num_tiles))
    traffic[0, 1] = 1.0
    power = np.full(config.num_tiles, watts)
    return Workload("uniform", config, traffic, power)


class TestTemperatures:
    def test_manual_two_layer_stack(self, tiny_config):
        config = tiny_config
        model = ThermalModel(config)
        design = random_design(config, np.random.default_rng(0))
        workload = _uniform_workload(config, watts=2.0)
        temperatures = model.temperatures(design, workload)
        r, rb = config.vertical_resistance, config.base_resistance
        # Layer 0 (closest to sink): T = P*R1 + Rb*P
        expected_layer0 = 2.0 * r + rb * 2.0
        # Layer 1: T = P*R1 + P*(R1+R2) + Rb*(P+P)
        expected_layer1 = 2.0 * r + 2.0 * (2 * r) + rb * 4.0
        assert np.allclose(temperatures[:, 0], expected_layer0)
        assert np.allclose(temperatures[:, 1], expected_layer1)

    def test_upper_layers_run_hotter_under_uniform_power(self, small_config, small_designs):
        model = ThermalModel(small_config)
        workload = _uniform_workload(small_config)
        temperatures = model.temperatures(small_designs[0], workload)
        per_layer = temperatures.mean(axis=0)
        assert np.all(np.diff(per_layer) > 0)

    def test_uniform_power_has_zero_spread(self, small_config, small_designs):
        model = ThermalModel(small_config)
        workload = _uniform_workload(small_config)
        temperatures = model.temperatures(small_designs[0], workload)
        assert np.allclose(model.layer_spread(temperatures), 0.0)

    def test_objective_zero_for_uniform_power(self, small_config, small_designs):
        # Eq. 7 multiplies the peak by the maximum same-layer spread, which is
        # zero when every column carries identical power.
        workload = _uniform_workload(small_config)
        assert ThermalModel(small_config).objective(small_designs[0], workload) == pytest.approx(0.0)

    def test_peak_temperature_positive(self, small_config, small_workload, small_designs):
        model = ThermalModel(small_config)
        assert model.peak_temperature(small_designs[0], small_workload) > 0

    def test_objective_depends_on_placement(self, small_config, small_workload, small_designs):
        values = {round(thermal_objective(d, small_workload), 6) for d in small_designs}
        assert len(values) > 1

    def test_moving_hot_pe_away_from_sink_raises_peak(self, tiny_config):
        config = tiny_config
        traffic = np.zeros((config.num_tiles, config.num_tiles))
        traffic[0, 1] = 1.0
        power = np.ones(config.num_tiles)
        power[0] = 10.0  # PE 0 is the hot one
        workload = Workload("hot", config, traffic, power)
        base = random_design(config, np.random.default_rng(1))
        hot_tile = base.tile_of(0)
        grid = config.grid
        model = ThermalModel(config)
        if grid.layer_of(hot_tile) == 0:
            # Swap the hot PE with whatever sits directly above it.
            above = grid.vertical_neighbors(hot_tile)[0]
            placement = list(base.placement)
            placement[hot_tile], placement[above] = placement[above], placement[hot_tile]
            moved = base.__class__(placement=tuple(placement), links=base.links)
            assert model.peak_temperature(moved, workload) > model.peak_temperature(base, workload)


class TestCustomResistances:
    def test_wrong_resistance_count_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            ThermalModel(tiny_config, layer_resistances=(0.5,))

    def test_nonpositive_resistance_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            ThermalModel(tiny_config, layer_resistances=(0.5, 0.0))

    def test_custom_resistances_used(self, tiny_config, tiny_designs):
        workload = _uniform_workload(tiny_config)
        low = ThermalModel(tiny_config, layer_resistances=(0.1, 0.1))
        high = ThermalModel(tiny_config, layer_resistances=(2.0, 2.0))
        assert high.peak_temperature(tiny_designs[0], workload) > low.peak_temperature(
            tiny_designs[0], workload
        )
