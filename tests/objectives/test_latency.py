"""Tests for the CPU-LLC latency objective (Eq. 3)."""

import numpy as np
import pytest

from repro.noc.mesh import mesh_design
from repro.noc.routing import RoutingTables
from repro.objectives.latency import cpu_llc_latency
from repro.workloads.workload import Workload


def _cpu_llc_only_workload(config, rate=2.0):
    traffic = np.zeros((config.num_tiles, config.num_tiles))
    for cpu in config.cpu_ids:
        for llc in config.llc_ids:
            traffic[cpu, llc] = rate
    return Workload("cpu-llc", config, traffic, np.ones(config.num_tiles))


class TestLatency:
    def test_manual_computation_single_pair(self, tiny_config):
        design = mesh_design(tiny_config)
        routing = RoutingTables(design, tiny_config.grid)
        config = tiny_config
        traffic = np.zeros((config.num_tiles, config.num_tiles))
        cpu, llc = int(config.cpu_ids[0]), int(config.llc_ids[0])
        traffic[cpu, llc] = 4.0
        workload = Workload("one", config, traffic, np.ones(config.num_tiles))
        cpu_tile, llc_tile = design.tile_of(cpu), design.tile_of(llc)
        hops = routing.hops(cpu_tile, llc_tile)
        length = routing.path_length(cpu_tile, llc_tile)
        expected = (config.router_stages * hops + length) * 4.0 / (config.num_cpus * config.num_llcs)
        assert cpu_llc_latency(design, workload, routing) == pytest.approx(expected)

    def test_latency_counts_both_directions(self, tiny_config):
        design = mesh_design(tiny_config)
        config = tiny_config
        cpu, llc = int(config.cpu_ids[0]), int(config.llc_ids[0])
        forward = np.zeros((config.num_tiles, config.num_tiles))
        forward[cpu, llc] = 4.0
        backward = np.zeros((config.num_tiles, config.num_tiles))
        backward[llc, cpu] = 4.0
        wl_forward = Workload("f", config, forward, np.ones(config.num_tiles))
        wl_backward = Workload("b", config, backward, np.ones(config.num_tiles))
        assert cpu_llc_latency(design, wl_forward) == pytest.approx(
            cpu_llc_latency(design, wl_backward)
        )

    def test_latency_ignores_gpu_traffic(self, tiny_config):
        design = mesh_design(tiny_config)
        config = tiny_config
        traffic = np.zeros((config.num_tiles, config.num_tiles))
        gpu = int(config.gpu_ids[0])
        llc = int(config.llc_ids[0])
        traffic[gpu, llc] = 50.0
        workload = Workload("gpu-only", config, traffic, np.ones(config.num_tiles))
        assert cpu_llc_latency(design, workload) == pytest.approx(0.0)

    def test_placing_cpus_near_llcs_reduces_latency(self, tiny_config, tiny_workload, tiny_designs):
        # Compare two placements of the same links: original vs one where a CPU
        # was moved onto a tile adjacent to the busiest LLC.  We simply check
        # the objective varies across designs (it is placement sensitive).
        values = {round(cpu_llc_latency(d, tiny_workload), 6) for d in tiny_designs}
        assert len(values) > 1

    def test_latency_scales_with_traffic(self, tiny_config, tiny_designs):
        design = tiny_designs[0]
        workload = _cpu_llc_only_workload(tiny_config, rate=2.0)
        doubled = _cpu_llc_only_workload(tiny_config, rate=4.0)
        assert cpu_llc_latency(design, doubled) == pytest.approx(
            2.0 * cpu_llc_latency(design, workload)
        )
