"""Tests for the composite objective evaluator and scenarios."""

import numpy as np
import pytest

from repro.objectives.evaluator import (
    OBJECTIVE_NAMES,
    ObjectiveEvaluator,
    ObjectiveScenario,
    SCENARIO_3OBJ,
    SCENARIO_4OBJ,
    SCENARIO_5OBJ,
    scenario_for,
)


class TestScenarios:
    def test_paper_scenarios(self):
        assert scenario_for(3) is SCENARIO_3OBJ
        assert scenario_for(4) is SCENARIO_4OBJ
        assert scenario_for(5) is SCENARIO_5OBJ
        assert SCENARIO_3OBJ.objectives == OBJECTIVE_NAMES[:3]
        assert SCENARIO_5OBJ.num_objectives == 5

    def test_invalid_scenario_count(self):
        with pytest.raises(ValueError):
            scenario_for(2)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveScenario("bad", ("traffic_mean", "bogus"))

    def test_duplicate_objective_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveScenario("bad", ("traffic_mean", "traffic_mean"))

    def test_single_objective_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveScenario("bad", ("traffic_mean",))


class TestEvaluator:
    def test_vector_length_matches_scenario(self, tiny_workload, tiny_designs):
        for count in (3, 4, 5):
            evaluator = ObjectiveEvaluator(tiny_workload, scenario_for(count))
            assert evaluator.evaluate(tiny_designs[0]).shape == (count,)

    def test_prefix_consistency_across_scenarios(self, tiny_workload, tiny_designs):
        design = tiny_designs[0]
        three = ObjectiveEvaluator(tiny_workload, SCENARIO_3OBJ).evaluate(design)
        five = ObjectiveEvaluator(tiny_workload, SCENARIO_5OBJ).evaluate(design)
        assert np.allclose(three, five[:3])

    def test_all_objectives_nonnegative(self, tiny_workload, tiny_designs):
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_5OBJ)
        for design in tiny_designs:
            assert np.all(evaluator.evaluate(design) >= 0)

    def test_cache_hits_counted(self, tiny_workload, tiny_designs):
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_3OBJ)
        first = evaluator.evaluate(tiny_designs[0])
        second = evaluator.evaluate(tiny_designs[0])
        assert np.allclose(first, second)
        assert evaluator.evaluations == 1
        assert evaluator.cache_hits == 1

    def test_cache_can_be_disabled(self, tiny_workload, tiny_designs):
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_3OBJ, cache_size=0)
        evaluator.evaluate(tiny_designs[0])
        evaluator.evaluate(tiny_designs[0])
        assert evaluator.evaluations == 2

    def test_results_are_readonly_views_protecting_the_cache(self, tiny_workload, tiny_designs):
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_3OBJ)
        first = evaluator.evaluate(tiny_designs[0])
        with pytest.raises(ValueError):
            first[0] = -1.0
        assert evaluator.evaluate(tiny_designs[0])[0] >= 0
        # Callers that need a mutable vector copy explicitly.
        mutable = first.copy()
        mutable[0] = -1.0
        assert evaluator.evaluate(tiny_designs[0])[0] >= 0

    def test_evaluate_many_shape(self, tiny_workload, tiny_designs):
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_4OBJ)
        matrix = evaluator.evaluate_many(list(tiny_designs))
        assert matrix.shape == (len(tiny_designs), 4)

    def test_evaluate_many_partitions_hits_and_misses(self, tiny_workload, tiny_designs):
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_3OBJ)
        warm = evaluator.evaluate(tiny_designs[0])
        batch = evaluator.evaluate_many([tiny_designs[0], tiny_designs[1], tiny_designs[1]])
        # One pre-warmed hit, one computed miss reused for its duplicate.
        assert evaluator.evaluations == 2
        assert evaluator.cache_hits == 2
        assert np.array_equal(batch[0], warm)
        assert np.array_equal(batch[1], batch[2])

    def test_evaluate_many_returns_writable_matrix(self, tiny_workload, tiny_designs):
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_3OBJ)
        matrix = evaluator.evaluate_many(list(tiny_designs[:2]))
        matrix[0, 0] = -1.0  # callers own the batch matrix
        assert evaluator.evaluate(tiny_designs[0])[0] >= 0

    def test_evaluate_many_empty_batch(self, tiny_workload):
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_5OBJ)
        assert evaluator.evaluate_many([]).shape == (0, 5)

    def test_evaluate_many_uncached_counts_match_scalar_loop(self, tiny_workload, tiny_designs):
        # With caching disabled the scalar loop recomputes duplicates, so the
        # batch path must report the same evaluation count (even though it
        # computes the duplicate only once).
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_3OBJ, cache_size=0)
        evaluator.evaluate_many([tiny_designs[0], tiny_designs[0], tiny_designs[1]])
        assert evaluator.evaluations == 3
        assert evaluator.cache_hits == 0

    def test_reference_path_bypasses_cache(self, tiny_workload, tiny_designs):
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_5OBJ)
        fast = evaluator.evaluate(tiny_designs[0])
        reference = evaluator.evaluate_reference(tiny_designs[0])
        assert evaluator.evaluations == 1
        np.testing.assert_allclose(fast, reference, rtol=1e-12)

    def test_full_report_contains_all_objectives(self, tiny_workload, tiny_designs):
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_3OBJ)
        report = evaluator.full_report(tiny_designs[0])
        for name in OBJECTIVE_NAMES:
            assert name in report
        assert "peak_temperature" in report

    def test_objective_names_property(self, tiny_workload):
        evaluator = ObjectiveEvaluator(tiny_workload, SCENARIO_4OBJ)
        assert evaluator.objective_names == SCENARIO_4OBJ.objectives
        assert evaluator.num_objectives == 4
