"""Equivalence tests: vectorized/batch objective paths vs. scalar references.

The vectorized engine (sparse incidence-matrix products, batch evaluation)
must reproduce the original per-pair scalar loops exactly (up to summation
order) across random designs, all three paper scenarios and disconnected
error cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc.constraints import random_design
from repro.noc.design import NocDesign
from repro.noc.mesh import mesh_design
from repro.noc.routing import RoutingTables
from repro.objectives.energy import communication_energy, communication_energy_reference
from repro.objectives.evaluator import ObjectiveEvaluator, scenario_for
from repro.objectives.latency import cpu_llc_latency, cpu_llc_latency_reference
from repro.objectives.thermal import ThermalModel
from repro.objectives.traffic import link_utilizations, link_utilizations_reference
from repro.workloads.registry import get_workload
from repro.workloads.workload import Workload

RTOL = 1e-12


def _all_pairs_workload(config, rate=1.5):
    """Every distinct PE pair communicates (exercises every route)."""
    traffic = np.full((config.num_tiles, config.num_tiles), rate)
    np.fill_diagonal(traffic, 0.0)
    return Workload("all-pairs", config, traffic, np.ones(config.num_tiles))


def _disconnected_design(config, isolated=None):
    """A mesh with one tile fully cut off."""
    design = mesh_design(config)
    if isolated is None:
        isolated = config.num_tiles - 1
    links = tuple(l for l in design.links if isolated not in l.endpoints())
    return NocDesign(placement=design.placement, links=links), isolated


class TestObjectiveFunctionEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_link_utilizations_match(self, small_config, small_workload, seed):
        design = random_design(small_config, seed)
        routing = RoutingTables(design, small_config.grid)
        fast = link_utilizations(design, small_workload, routing)
        reference = link_utilizations_reference(design, small_workload, routing)
        np.testing.assert_allclose(fast, reference, rtol=RTOL)

    @pytest.mark.parametrize("seed", range(5))
    def test_cpu_llc_latency_matches(self, small_config, small_workload, seed):
        design = random_design(small_config, seed)
        routing = RoutingTables(design, small_config.grid)
        assert cpu_llc_latency(design, small_workload, routing) == pytest.approx(
            cpu_llc_latency_reference(design, small_workload, routing), rel=RTOL
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_communication_energy_matches(self, small_config, small_workload, seed):
        design = random_design(small_config, seed)
        routing = RoutingTables(design, small_config.grid)
        assert communication_energy(design, small_workload, routing) == pytest.approx(
            communication_energy_reference(design, small_workload, routing), rel=RTOL
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_thermal_field_matches(self, small_config, small_workload, seed):
        design = random_design(small_config, seed)
        model = ThermalModel(small_config)
        np.testing.assert_allclose(
            model.column_powers(design, small_workload),
            model.column_powers_reference(design, small_workload),
            rtol=RTOL,
        )
        np.testing.assert_allclose(
            model.temperatures(design, small_workload),
            model.temperatures_reference(design, small_workload),
            rtol=RTOL,
        )
        assert model.objective(design, small_workload) == pytest.approx(
            model.objective_reference(design, small_workload), rel=1e-9
        )

    def test_all_pairs_workload_equivalence(self, small_config):
        workload = _all_pairs_workload(small_config)
        design = random_design(small_config, 3)
        routing = RoutingTables(design, small_config.grid)
        np.testing.assert_allclose(
            link_utilizations(design, workload, routing),
            link_utilizations_reference(design, workload, routing),
            rtol=RTOL,
        )
        assert communication_energy(design, workload, routing) == pytest.approx(
            communication_energy_reference(design, workload, routing), rel=RTOL
        )


class TestScenarioEquivalence:
    @pytest.mark.parametrize("num_objectives", [3, 4, 5])
    @pytest.mark.parametrize("seed", range(3))
    def test_evaluate_matches_reference(self, small_config, num_objectives, seed):
        workload = get_workload("BFS", small_config, seed=0)
        evaluator = ObjectiveEvaluator(workload, scenario_for(num_objectives), cache_size=0)
        design = random_design(small_config, seed)
        np.testing.assert_allclose(
            evaluator.evaluate(design), evaluator.evaluate_reference(design), rtol=RTOL
        )

    @pytest.mark.parametrize("num_objectives", [3, 4, 5])
    def test_evaluate_many_matches_looped_evaluate(self, small_config, num_objectives):
        workload = get_workload("BFS", small_config, seed=0)
        batch_eval = ObjectiveEvaluator(workload, scenario_for(num_objectives), cache_size=0)
        loop_eval = ObjectiveEvaluator(workload, scenario_for(num_objectives), cache_size=0)
        designs = [random_design(small_config, seed) for seed in range(8)]
        batch = batch_eval.evaluate_many(designs)
        looped = np.array([loop_eval.evaluate(d) for d in designs])
        np.testing.assert_array_equal(batch, looped)

    def test_evaluate_many_parallel_matches_serial(self, tiny_config):
        workload = get_workload("BFS", tiny_config, seed=0)
        serial = ObjectiveEvaluator(workload, scenario_for(5), cache_size=0)
        parallel = ObjectiveEvaluator(workload, scenario_for(5), cache_size=0)
        designs = [random_design(tiny_config, seed) for seed in range(4)]
        np.testing.assert_allclose(
            parallel.evaluate_many(designs, parallel=True, max_workers=2),
            serial.evaluate_many(designs),
            rtol=RTOL,
        )


class TestDisconnectedEquivalence:
    def test_both_paths_raise_on_disconnected_utilization(self, tiny_config):
        design, _ = _disconnected_design(tiny_config)
        workload = _all_pairs_workload(tiny_config)
        routing = RoutingTables(design, tiny_config.grid)
        with pytest.raises(ValueError, match="disconnected"):
            link_utilizations(design, workload, routing)
        with pytest.raises(ValueError, match="disconnected"):
            link_utilizations_reference(design, workload, routing)

    def test_both_paths_raise_on_disconnected_latency(self, tiny_config):
        # Cut off the tile hosting the first CPU so a CPU-LLC route is missing.
        cpu_tile = int(mesh_design(tiny_config).tile_of(int(tiny_config.cpu_ids[0])))
        design, _ = _disconnected_design(tiny_config, isolated=cpu_tile)
        workload = _all_pairs_workload(tiny_config)
        routing = RoutingTables(design, tiny_config.grid)
        with pytest.raises(ValueError, match="no route"):
            cpu_llc_latency(design, workload, routing)
        with pytest.raises(ValueError, match="no route"):
            cpu_llc_latency_reference(design, workload, routing)

    def test_both_paths_raise_on_disconnected_energy(self, tiny_config):
        design, _ = _disconnected_design(tiny_config)
        workload = _all_pairs_workload(tiny_config)
        routing = RoutingTables(design, tiny_config.grid)
        with pytest.raises(ValueError, match="disconnected"):
            communication_energy(design, workload, routing)
        with pytest.raises(ValueError, match="disconnected"):
            communication_energy_reference(design, workload, routing)

    def test_unreachable_pairs_without_traffic_do_not_raise(self, tiny_config):
        design, isolated = _disconnected_design(tiny_config)
        # Traffic only between PEs hosted on still-connected tiles.
        connected_pes = [design.pe_at(t) for t in range(design.num_tiles) if t != isolated]
        traffic = np.zeros((tiny_config.num_tiles, tiny_config.num_tiles))
        traffic[connected_pes[0], connected_pes[1]] = 2.0
        workload = Workload("partial", tiny_config, traffic, np.ones(tiny_config.num_tiles))
        routing = RoutingTables(design, tiny_config.grid)
        np.testing.assert_allclose(
            link_utilizations(design, workload, routing),
            link_utilizations_reference(design, workload, routing),
            rtol=RTOL,
        )


class TestRoutingBatchTables:
    def test_incidence_rows_match_walked_paths(self, small_config):
        design = random_design(small_config, 1)
        routing = RoutingTables(design, small_config.grid)
        incidence = routing.pair_link_incidence()
        tiles_incidence = routing.pair_tile_incidence()
        for src in range(0, design.num_tiles, 4):
            for dst in range(0, design.num_tiles, 3):
                pair = routing.pair_index(src, dst)
                row = incidence.getrow(pair)
                assert set(row.indices) == set(routing.path_links(src, dst))
                tile_row = tiles_incidence.getrow(pair)
                assert set(tile_row.indices) == set(routing.path_tiles(src, dst))

    def test_pair_hops_and_lengths_match_scalar_queries(self, small_config):
        design = random_design(small_config, 2)
        routing = RoutingTables(design, small_config.grid)
        hops = routing.pair_hops()
        lengths = routing.pair_lengths()
        for src in range(0, design.num_tiles, 5):
            for dst in range(0, design.num_tiles, 2):
                pair = routing.pair_index(src, dst)
                assert hops[pair] == len(routing.path_links(src, dst))
                assert lengths[pair] == pytest.approx(routing.path_length(src, dst), rel=RTOL)

    def test_reachability_flags_disconnected_pairs(self, tiny_config):
        design, isolated = _disconnected_design(tiny_config)
        routing = RoutingTables(design, tiny_config.grid)
        reachable = routing.reachable_matrix()
        assert not reachable[0, isolated]
        assert reachable[isolated, isolated]
        assert reachable[0, 1]
        # Unreachable pairs carry empty incidence rows instead of garbage.
        pair = routing.pair_index(0, isolated)
        assert routing.pair_link_incidence().getrow(pair).nnz == 0
        assert routing.pair_hops()[pair] == 0
