"""Tests for the Workload container."""

import numpy as np
import pytest

from repro.workloads.workload import Workload


def _traffic(config, value=1.0):
    matrix = np.full((config.num_tiles, config.num_tiles), value, dtype=float)
    np.fill_diagonal(matrix, 0.0)
    return matrix


def _power(config, value=2.0):
    return np.full(config.num_tiles, value, dtype=float)


class TestValidation:
    def test_valid_workload(self, tiny_config):
        workload = Workload("X", tiny_config, _traffic(tiny_config), _power(tiny_config))
        assert workload.num_pes == tiny_config.num_tiles

    def test_wrong_traffic_shape_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            Workload("X", tiny_config, np.zeros((2, 2)), _power(tiny_config))

    def test_wrong_power_shape_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            Workload("X", tiny_config, _traffic(tiny_config), np.zeros(3))

    def test_negative_traffic_rejected(self, tiny_config):
        traffic = _traffic(tiny_config)
        traffic[0, 1] = -1.0
        with pytest.raises(ValueError):
            Workload("X", tiny_config, traffic, _power(tiny_config))

    def test_nonzero_diagonal_rejected(self, tiny_config):
        traffic = _traffic(tiny_config)
        traffic[2, 2] = 1.0
        with pytest.raises(ValueError):
            Workload("X", tiny_config, traffic, _power(tiny_config))

    def test_negative_power_rejected(self, tiny_config):
        power = _power(tiny_config)
        power[0] = -0.5
        with pytest.raises(ValueError):
            Workload("X", tiny_config, _traffic(tiny_config), power)

    def test_nonpositive_compute_cycles_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            Workload("X", tiny_config, _traffic(tiny_config), _power(tiny_config), compute_cycles=0.0)


class TestViews:
    def test_communicating_pairs_match_nonzeros(self, tiny_workload):
        pairs = tiny_workload.communicating_pairs()
        assert len(pairs) == int(np.count_nonzero(tiny_workload.traffic))
        for src, dst, freq in pairs:
            assert freq == pytest.approx(tiny_workload.traffic[src, dst])

    def test_total_traffic(self, tiny_workload):
        assert tiny_workload.total_traffic() == pytest.approx(float(tiny_workload.traffic.sum()))

    def test_traffic_by_class_sums_to_total(self, tiny_workload):
        by_class = tiny_workload.traffic_by_class()
        assert sum(by_class.values()) == pytest.approx(tiny_workload.total_traffic())

    def test_power_by_type_sums_to_total(self, tiny_workload):
        by_type = tiny_workload.power_by_type()
        assert sum(by_type.values()) == pytest.approx(float(tiny_workload.power.sum()))

    def test_tile_power_follows_placement(self, tiny_config, tiny_workload, tiny_designs):
        design = tiny_designs[0]
        tile_power = tiny_workload.tile_power(design.placement_array())
        for tile in range(tiny_config.num_tiles):
            assert tile_power[tile] == pytest.approx(tiny_workload.power[design.pe_at(tile)])

    def test_scaled_multiplies_traffic_only(self, tiny_workload):
        scaled = tiny_workload.scaled(2.0)
        assert np.allclose(scaled.traffic, 2.0 * tiny_workload.traffic)
        assert np.allclose(scaled.power, tiny_workload.power)
        with pytest.raises(ValueError):
            tiny_workload.scaled(0.0)
