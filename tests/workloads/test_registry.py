"""Tests for the workload registry."""

import numpy as np
import pytest

from repro.workloads.registry import WorkloadRegistry, get_workload, list_applications
from repro.workloads.rodinia import RODINIA_APPLICATIONS
from repro.workloads.workload import Workload


class TestDefaultRegistry:
    def test_lists_all_rodinia_applications(self):
        assert set(list_applications()) >= set(RODINIA_APPLICATIONS)

    def test_get_workload_round_trip(self, tiny_config):
        workload = get_workload("BFS", tiny_config, seed=3)
        assert workload.name == "BFS"
        assert workload.config == tiny_config

    def test_get_workload_is_cached(self, tiny_config):
        a = get_workload("BP", tiny_config, seed=3)
        b = get_workload("BP", tiny_config, seed=3)
        assert a is b

    def test_different_seeds_not_cached_together(self, tiny_config):
        a = get_workload("BP", tiny_config, seed=3)
        b = get_workload("BP", tiny_config, seed=4)
        assert a is not b
        assert not np.allclose(a.traffic, b.traffic)


class TestCustomRegistration:
    def _custom_factory(self, config, seed):
        traffic = np.zeros((config.num_tiles, config.num_tiles))
        traffic[0, 1] = 1.0
        power = np.ones(config.num_tiles)
        return Workload("CUSTOM", config, traffic, power)

    def test_register_and_get(self, tiny_config):
        registry = WorkloadRegistry()
        registry.register("custom", self._custom_factory)
        workload = registry.get("CUSTOM", tiny_config)
        assert workload.name == "CUSTOM"
        assert "CUSTOM" in registry.applications()

    def test_duplicate_registration_rejected(self):
        registry = WorkloadRegistry()
        registry.register("custom", self._custom_factory)
        with pytest.raises(ValueError):
            registry.register("custom", self._custom_factory)
        registry.register("custom", self._custom_factory, overwrite=True)

    def test_unknown_application_rejected(self, tiny_config):
        registry = WorkloadRegistry()
        with pytest.raises(KeyError):
            registry.get("missing", tiny_config)
