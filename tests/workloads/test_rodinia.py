"""Tests for the synthetic Rodinia application workloads."""

import numpy as np
import pytest

from repro.workloads.rodinia import (
    RODINIA_APPLICATIONS,
    RODINIA_PROFILES,
    generate_rodinia_workload,
)


class TestCatalogue:
    def test_seven_applications_from_the_paper(self):
        assert set(RODINIA_APPLICATIONS) == {"BP", "BFS", "GAU", "HOT", "PF", "SC", "SRAD"}

    def test_profiles_have_descriptions(self):
        for profile in RODINIA_PROFILES.values():
            assert profile.description
            assert profile.compute_kilocycles > 0


class TestGeneration:
    @pytest.mark.parametrize("app", RODINIA_APPLICATIONS)
    def test_every_application_generates_valid_workload(self, tiny_config, app):
        workload = generate_rodinia_workload(app, tiny_config, seed=1)
        assert workload.name == app
        assert workload.traffic.shape == (tiny_config.num_tiles, tiny_config.num_tiles)
        assert workload.total_traffic() > 0
        assert float(workload.power.sum()) > 0

    def test_unknown_application_rejected(self, tiny_config):
        with pytest.raises(KeyError):
            generate_rodinia_workload("NOPE", tiny_config)

    def test_case_insensitive_lookup(self, tiny_config):
        workload = generate_rodinia_workload("bfs", tiny_config, seed=1)
        assert workload.name == "BFS"

    def test_same_seed_reproducible(self, tiny_config):
        a = generate_rodinia_workload("GAU", tiny_config, seed=5)
        b = generate_rodinia_workload("GAU", tiny_config, seed=5)
        assert np.allclose(a.traffic, b.traffic)
        assert np.allclose(a.power, b.power)

    def test_different_seeds_differ(self, tiny_config):
        a = generate_rodinia_workload("GAU", tiny_config, seed=5)
        b = generate_rodinia_workload("GAU", tiny_config, seed=6)
        assert not np.allclose(a.traffic, b.traffic)

    def test_different_applications_differ(self, tiny_config):
        a = generate_rodinia_workload("BFS", tiny_config, seed=5)
        b = generate_rodinia_workload("HOT", tiny_config, seed=5)
        assert not np.allclose(a.traffic, b.traffic)


class TestQualitativeStructure:
    def test_streamcluster_is_cpu_heavy(self, small_config):
        sc = generate_rodinia_workload("SC", small_config, seed=0)
        hot = generate_rodinia_workload("HOT", small_config, seed=0)
        sc_cpu_share = sc.traffic_by_class()["CPU->LLC"] / sc.total_traffic()
        hot_cpu_share = hot.traffic_by_class()["CPU->LLC"] / hot.total_traffic()
        assert sc_cpu_share > hot_cpu_share

    def test_hotspot3d_is_gpu_exchange_heavy(self, small_config):
        hot = generate_rodinia_workload("HOT", small_config, seed=0)
        bfs = generate_rodinia_workload("BFS", small_config, seed=0)
        hot_share = hot.traffic_by_class()["GPU->GPU"] / hot.total_traffic()
        bfs_share = bfs.traffic_by_class()["GPU->GPU"] / bfs.total_traffic()
        assert hot_share > bfs_share

    def test_gpu_power_scales_with_activity(self, small_config):
        hot = generate_rodinia_workload("HOT", small_config, seed=0)  # gpu_activity 1.3
        sc = generate_rodinia_workload("SC", small_config, seed=0)  # gpu_activity 0.7
        assert hot.power_by_type()["GPU"] > sc.power_by_type()["GPU"]
