"""Tests for the per-PE power model."""

import numpy as np
import pytest

from repro.noc.platform import PEType
from repro.workloads.power import DEFAULT_POWER_MODEL, PowerModel


class TestPowerModel:
    def test_baselines_by_type(self):
        model = PowerModel(cpu_base_watts=4.0, gpu_base_watts=2.0, llc_base_watts=1.0)
        assert model.baseline(PEType.CPU) == 4.0
        assert model.baseline(PEType.GPU) == 2.0
        assert model.baseline(PEType.LLC) == 1.0

    def test_generate_shape_and_positivity(self, small_config):
        power = DEFAULT_POWER_MODEL.generate(small_config, rng=np.random.default_rng(0))
        assert power.shape == (small_config.num_tiles,)
        assert np.all(power > 0)

    def test_activity_scales_power(self, small_config):
        model = PowerModel(variation_sigma=1e-9)
        base = model.generate(small_config, rng=np.random.default_rng(0))
        doubled = model.generate(small_config, gpu_activity=2.0, rng=np.random.default_rng(0))
        gpu = small_config.gpu_ids
        cpu = small_config.cpu_ids
        assert np.allclose(doubled[gpu], 2.0 * base[gpu], rtol=1e-6)
        assert np.allclose(doubled[cpu], base[cpu], rtol=1e-6)

    def test_negative_activity_rejected(self, small_config):
        with pytest.raises(ValueError):
            DEFAULT_POWER_MODEL.generate(small_config, cpu_activity=-1.0)

    def test_cpu_draws_more_than_llc_on_average(self, small_config):
        power = DEFAULT_POWER_MODEL.generate(small_config, rng=np.random.default_rng(1))
        assert power[small_config.cpu_ids].mean() > power[small_config.llc_ids].mean()

    def test_generation_is_reproducible(self, small_config):
        a = DEFAULT_POWER_MODEL.generate(small_config, rng=np.random.default_rng(2))
        b = DEFAULT_POWER_MODEL.generate(small_config, rng=np.random.default_rng(2))
        assert np.allclose(a, b)
