"""Tests for the traffic-pattern primitives."""

import numpy as np
import pytest

from repro.workloads import traffic_patterns as patterns


GENERATORS = [
    patterns.cpu_llc_requests,
    patterns.gpu_llc_streaming,
    patterns.gpu_neighbor_sharing,
    patterns.hotspot,
    patterns.cpu_gpu_coordination,
    patterns.uniform_random,
]

ALL_PATTERNS = [
    (lambda config, rng, gen=gen: gen(config, 5.0, rng)) for gen in GENERATORS
]


class TestCommonProperties:
    @pytest.mark.parametrize("factory", ALL_PATTERNS)
    def test_shape_nonnegative_zero_diagonal(self, small_config, factory):
        rng = np.random.default_rng(0)
        traffic = factory(small_config, rng)
        n = small_config.num_tiles
        assert traffic.shape == (n, n)
        assert np.all(traffic >= 0)
        assert np.all(np.diag(traffic) == 0)

    @pytest.mark.parametrize("factory", ALL_PATTERNS)
    def test_deterministic_for_seeded_rng(self, small_config, factory):
        a = factory(small_config, np.random.default_rng(3))
        b = factory(small_config, np.random.default_rng(3))
        # Exact, not approximate: seeded generators must be bit-reproducible
        # (scenario transforms and cache keys depend on it).
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_different_seeds_differ(self, small_config, generator):
        a = generator(small_config, 5.0, np.random.default_rng(3))
        b = generator(small_config, 5.0, np.random.default_rng(4))
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_intensity_scales_volume_monotonically(self, small_config, generator):
        """More intensity never means less traffic (same seeded stream)."""
        totals = [
            generator(small_config, intensity, np.random.default_rng(5)).sum()
            for intensity in (1.0, 2.0, 4.0, 8.0)
        ]
        assert totals[0] > 0
        assert all(lo < hi for lo, hi in zip(totals, totals[1:]))

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_zero_diagonal_on_tiny_platform_too(self, tiny_config, generator):
        traffic = generator(tiny_config, 5.0, np.random.default_rng(6))
        assert traffic.shape == (tiny_config.num_tiles, tiny_config.num_tiles)
        assert np.all(np.diag(traffic) == 0)
        assert np.all(traffic >= 0)


class TestClassStructure:
    def test_cpu_llc_requests_only_touch_cpu_llc_pairs(self, small_config):
        traffic = patterns.cpu_llc_requests(small_config, 4.0, np.random.default_rng(1))
        gpu = small_config.gpu_ids
        assert traffic[np.ix_(gpu, gpu)].sum() == 0.0
        cpu, llc = small_config.cpu_ids, small_config.llc_ids
        assert traffic[np.ix_(cpu, llc)].sum() > 0
        assert traffic[np.ix_(llc, cpu)].sum() > 0

    def test_llc_responses_exceed_requests(self, small_config):
        traffic = patterns.cpu_llc_requests(small_config, 4.0, np.random.default_rng(1))
        cpu, llc = small_config.cpu_ids, small_config.llc_ids
        assert traffic[np.ix_(llc, cpu)].sum() > traffic[np.ix_(cpu, llc)].sum()

    def test_gpu_streaming_reads_dominate(self, small_config):
        traffic = patterns.gpu_llc_streaming(small_config, 4.0, np.random.default_rng(2))
        gpu, llc = small_config.gpu_ids, small_config.llc_ids
        assert traffic[np.ix_(llc, gpu)].sum() > traffic[np.ix_(gpu, llc)].sum()

    def test_neighbor_sharing_only_between_gpus(self, small_config):
        traffic = patterns.gpu_neighbor_sharing(small_config, 4.0, np.random.default_rng(3))
        cpu, llc = small_config.cpu_ids, small_config.llc_ids
        others = np.concatenate([cpu, llc])
        assert traffic[others, :].sum() == 0.0
        assert traffic[:, others].sum() == 0.0

    def test_hotspot_concentrates_on_few_llcs(self, small_config):
        traffic = patterns.hotspot(small_config, 6.0, np.random.default_rng(4), num_hot=2)
        llc = small_config.llc_ids
        received = traffic[:, llc].sum(axis=0)
        assert int(np.count_nonzero(received)) <= 2

    def test_coordination_links_each_gpu_to_one_cpu(self, small_config):
        traffic = patterns.cpu_gpu_coordination(small_config, 4.0, np.random.default_rng(5))
        cpu, gpu = small_config.cpu_ids, small_config.gpu_ids
        per_gpu_sources = (traffic[np.ix_(cpu, gpu)] > 0).sum(axis=0)
        assert np.all(per_gpu_sources == 1)

    def test_uniform_random_density(self, small_config):
        traffic = patterns.uniform_random(small_config, 4.0, np.random.default_rng(6), density=0.5)
        n = small_config.num_tiles
        fraction = np.count_nonzero(traffic) / (n * n - n)
        assert 0.2 < fraction < 0.8

    def test_empty_traffic_is_zero(self, small_config):
        assert patterns.empty_traffic(small_config).sum() == 0.0
