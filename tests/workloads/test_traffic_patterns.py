"""Tests for the traffic-pattern primitives."""

import numpy as np
import pytest

from repro.workloads import traffic_patterns as patterns


ALL_PATTERNS = [
    lambda config, rng: patterns.cpu_llc_requests(config, 5.0, rng),
    lambda config, rng: patterns.gpu_llc_streaming(config, 5.0, rng),
    lambda config, rng: patterns.gpu_neighbor_sharing(config, 5.0, rng),
    lambda config, rng: patterns.hotspot(config, 5.0, rng),
    lambda config, rng: patterns.cpu_gpu_coordination(config, 5.0, rng),
    lambda config, rng: patterns.uniform_random(config, 5.0, rng),
]


class TestCommonProperties:
    @pytest.mark.parametrize("factory", ALL_PATTERNS)
    def test_shape_nonnegative_zero_diagonal(self, small_config, factory):
        rng = np.random.default_rng(0)
        traffic = factory(small_config, rng)
        n = small_config.num_tiles
        assert traffic.shape == (n, n)
        assert np.all(traffic >= 0)
        assert np.all(np.diag(traffic) == 0)

    @pytest.mark.parametrize("factory", ALL_PATTERNS)
    def test_deterministic_for_seeded_rng(self, small_config, factory):
        a = factory(small_config, np.random.default_rng(3))
        b = factory(small_config, np.random.default_rng(3))
        assert np.allclose(a, b)


class TestClassStructure:
    def test_cpu_llc_requests_only_touch_cpu_llc_pairs(self, small_config):
        traffic = patterns.cpu_llc_requests(small_config, 4.0, np.random.default_rng(1))
        gpu = small_config.gpu_ids
        assert traffic[np.ix_(gpu, gpu)].sum() == 0.0
        cpu, llc = small_config.cpu_ids, small_config.llc_ids
        assert traffic[np.ix_(cpu, llc)].sum() > 0
        assert traffic[np.ix_(llc, cpu)].sum() > 0

    def test_llc_responses_exceed_requests(self, small_config):
        traffic = patterns.cpu_llc_requests(small_config, 4.0, np.random.default_rng(1))
        cpu, llc = small_config.cpu_ids, small_config.llc_ids
        assert traffic[np.ix_(llc, cpu)].sum() > traffic[np.ix_(cpu, llc)].sum()

    def test_gpu_streaming_reads_dominate(self, small_config):
        traffic = patterns.gpu_llc_streaming(small_config, 4.0, np.random.default_rng(2))
        gpu, llc = small_config.gpu_ids, small_config.llc_ids
        assert traffic[np.ix_(llc, gpu)].sum() > traffic[np.ix_(gpu, llc)].sum()

    def test_neighbor_sharing_only_between_gpus(self, small_config):
        traffic = patterns.gpu_neighbor_sharing(small_config, 4.0, np.random.default_rng(3))
        cpu, llc = small_config.cpu_ids, small_config.llc_ids
        others = np.concatenate([cpu, llc])
        assert traffic[others, :].sum() == 0.0
        assert traffic[:, others].sum() == 0.0

    def test_hotspot_concentrates_on_few_llcs(self, small_config):
        traffic = patterns.hotspot(small_config, 6.0, np.random.default_rng(4), num_hot=2)
        llc = small_config.llc_ids
        received = traffic[:, llc].sum(axis=0)
        assert int(np.count_nonzero(received)) <= 2

    def test_coordination_links_each_gpu_to_one_cpu(self, small_config):
        traffic = patterns.cpu_gpu_coordination(small_config, 4.0, np.random.default_rng(5))
        cpu, gpu = small_config.cpu_ids, small_config.gpu_ids
        per_gpu_sources = (traffic[np.ix_(cpu, gpu)] > 0).sum(axis=0)
        assert np.all(per_gpu_sources == 1)

    def test_uniform_random_density(self, small_config):
        traffic = patterns.uniform_random(small_config, 4.0, np.random.default_rng(6), density=0.5)
        n = small_config.num_tiles
        fraction = np.count_nonzero(traffic) / (n * n - n)
        assert 0.2 < fraction < 0.8

    def test_empty_traffic_is_zero(self, small_config):
        assert patterns.empty_traffic(small_config).sum() == 0.0
