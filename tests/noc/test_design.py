"""Tests for the design encoding."""

import numpy as np
import pytest

from repro.noc.design import NocDesign, summarize
from repro.noc.links import Link, LinkKind
from repro.noc.mesh import mesh_design


class TestConstruction:
    def test_from_arrays_normalises_links(self, tiny_config):
        design = NocDesign.from_arrays(
            placement=range(tiny_config.num_tiles),
            links=[(1, 0), Link(2, 3)],
        )
        assert design.links == (Link(0, 1), Link(2, 3))

    def test_links_are_sorted(self, tiny_designs):
        for design in tiny_designs:
            assert list(design.links) == sorted(design.links)

    def test_repr_mentions_sizes(self, tiny_designs):
        text = repr(tiny_designs[0])
        assert "num_tiles" in text and "num_links" in text


class TestLookups:
    def test_pe_and_tile_are_inverse(self, tiny_designs):
        design = tiny_designs[0]
        for tile in range(design.num_tiles):
            pe = design.pe_at(tile)
            assert design.tile_of(pe) == tile

    def test_tile_of_pe_is_permutation_inverse(self, tiny_designs):
        design = tiny_designs[0]
        inverse = design.tile_of_pe()
        placement = design.placement_array()
        assert np.array_equal(placement[inverse], np.arange(design.num_tiles))

    def test_degrees_sum_to_twice_links(self, tiny_designs):
        design = tiny_designs[0]
        assert int(design.degrees().sum()) == 2 * design.num_links

    def test_adjacency_is_symmetric(self, tiny_designs):
        design = tiny_designs[0]
        adjacency = design.adjacency()
        for node, neighbors in adjacency.items():
            for neighbor in neighbors:
                assert node in adjacency[neighbor]

    def test_has_link(self, tiny_designs):
        design = tiny_designs[0]
        link = design.links[0]
        assert design.has_link(link.a, link.b)
        assert design.has_link(link.b, link.a)

    def test_links_by_kind_partitions(self, tiny_config, tiny_designs):
        design = tiny_designs[0]
        partition = design.links_by_kind(tiny_config.grid)
        total = len(partition[LinkKind.PLANAR]) + len(partition[LinkKind.VERTICAL])
        assert total == design.num_links

    def test_link_lengths_positive(self, tiny_config, tiny_designs):
        lengths = tiny_designs[0].link_lengths(tiny_config.grid)
        assert np.all(lengths >= 1)

    def test_tiles_of_type_counts(self, tiny_config, tiny_designs):
        from repro.noc.platform import PEType

        design = tiny_designs[0]
        assert len(design.tiles_of_type(tiny_config, PEType.CPU)) == tiny_config.num_cpus
        assert len(design.tiles_of_type(tiny_config, PEType.GPU)) == tiny_config.num_gpus
        assert len(design.tiles_of_type(tiny_config, PEType.LLC)) == tiny_config.num_llcs


class TestIdentity:
    def test_equal_designs_hash_equal(self, tiny_designs):
        design = tiny_designs[0]
        clone = NocDesign(placement=design.placement, links=design.links)
        assert design == clone
        assert hash(design) == hash(clone)

    def test_different_designs_not_equal(self, tiny_designs):
        assert tiny_designs[0] != tiny_designs[1]

    def test_key_is_hashable(self, tiny_designs):
        assert {tiny_designs[0].key(): 1}


class TestSummary:
    def test_summary_of_mesh_design(self, tiny_config):
        design = mesh_design(tiny_config)
        summary = summarize(design, tiny_config)
        assert summary.connected
        assert summary.num_links == design.num_links
        assert summary.num_planar_links + summary.num_vertical_links == design.num_links
        assert summary.max_degree <= tiny_config.max_router_degree

    def test_summary_counts_match_budgets(self, small_config, small_designs):
        summary = summarize(small_designs[0], small_config)
        assert summary.num_planar_links == small_config.num_planar_links
        assert summary.num_vertical_links == small_config.num_vertical_links
