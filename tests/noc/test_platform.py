"""Tests for the platform configuration."""

import numpy as np
import pytest

from repro.noc.platform import PEType, PlatformConfig


class TestFactoryConfigs:
    def test_paper_platform_matches_section_v(self):
        config = PlatformConfig.paper_4x4x4()
        assert config.num_tiles == 64
        assert config.num_cpus == 8
        assert config.num_gpus == 40
        assert config.num_llcs == 16
        assert config.num_planar_links == 96
        assert config.num_vertical_links == 48
        assert config.cpu_frequency_ghz == pytest.approx(2.5)
        assert config.gpu_frequency_ghz == pytest.approx(0.7)

    def test_paper_planar_budget_equals_mesh(self):
        config = PlatformConfig.paper_4x4x4()
        assert config.num_planar_links == config.mesh_planar_links

    def test_small_and_tiny_configs_are_valid(self):
        for config in (PlatformConfig.small_3x3x3(), PlatformConfig.tiny_2x2x2(), PlatformConfig.flat_4x4x1()):
            assert config.num_cpus + config.num_gpus + config.num_llcs == config.num_tiles

    def test_vertical_budget_matches_candidates(self):
        config = PlatformConfig.paper_4x4x4()
        assert config.max_vertical_candidates == 48


class TestValidation:
    def test_pe_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(n=2, layers=2, num_cpus=1, num_gpus=1, num_llcs=1,
                           num_planar_links=8, num_vertical_links=4)

    def test_too_many_vertical_links_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(n=2, layers=2, num_cpus=2, num_gpus=3, num_llcs=3,
                           num_planar_links=8, num_vertical_links=5)

    def test_insufficient_links_for_connectivity_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(n=2, layers=2, num_cpus=2, num_gpus=3, num_llcs=3,
                           num_planar_links=2, num_vertical_links=1)

    def test_llcs_must_fit_on_edge_tiles(self):
        # A 3x3x1 die has 8 edge tiles; 9 LLCs cannot fit.
        with pytest.raises(ValueError):
            PlatformConfig(n=3, layers=1, num_cpus=0, num_gpus=0, num_llcs=9,
                           num_planar_links=12, num_vertical_links=0)

    def test_zero_llcs_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(n=2, layers=1, num_cpus=2, num_gpus=2, num_llcs=0,
                           num_planar_links=4, num_vertical_links=0)


class TestPECatalogue:
    def test_pe_type_blocks(self):
        config = PlatformConfig.tiny_2x2x2()
        types = [config.pe_type(i) for i in range(config.num_tiles)]
        assert types[: config.num_cpus] == [PEType.CPU] * config.num_cpus
        assert types[config.num_cpus : config.num_cpus + config.num_gpus] == [PEType.GPU] * config.num_gpus
        assert types[config.num_cpus + config.num_gpus :] == [PEType.LLC] * config.num_llcs

    def test_id_arrays_partition_all_pes(self):
        config = PlatformConfig.small_3x3x3()
        ids = np.concatenate([config.cpu_ids, config.gpu_ids, config.llc_ids])
        assert sorted(ids.tolist()) == list(range(config.num_tiles))

    def test_pe_type_out_of_range(self):
        config = PlatformConfig.tiny_2x2x2()
        with pytest.raises(ValueError):
            config.pe_type(config.num_tiles)

    def test_frequency_by_type(self):
        config = PlatformConfig.paper_4x4x4()
        assert config.frequency_ghz(int(config.cpu_ids[0])) == pytest.approx(2.5)
        assert config.frequency_ghz(int(config.gpu_ids[0])) == pytest.approx(0.7)
        assert config.frequency_ghz(int(config.llc_ids[0])) == pytest.approx(2.5)

    def test_pe_types_tuple_length(self):
        config = PlatformConfig.small_3x3x3()
        assert len(config.pe_types) == config.num_tiles
