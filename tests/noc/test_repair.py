"""Tests for the directed feasibility repair walk (:mod:`repro.noc.repair`).

Includes the PR's acceptance corpus: >= 50 seeded infeasible designs per
platform class (the paper's 4x4x4 and the big 8x8x4), of which the directed
walk must repair at least 90% within its default budget, with every plan
replaying bit-identically from its seed and ``repro explain`` rendering a
non-empty structured report for each.
"""

import numpy as np
import pytest

from repro.noc.constraints import ConstraintChecker, random_design
from repro.noc.design import NocDesign
from repro.noc.links import Link
from repro.noc.platform import PlatformConfig
from repro.noc.repair import RepairBudget, RepairPlan, repair_design


def _drop_links(design: NocDesign, count: int) -> NocDesign:
    return NocDesign(placement=design.placement, links=design.links[: len(design.links) - count])


def corrupt(design: NocDesign, config: PlatformConfig, seed: int) -> NocDesign:
    """Seeded corruption: one of three infeasibility modes, never feasible.

    Dropping links always breaks the exact per-kind budgets; duplicating
    additionally trips ``duplicate-link``; splicing in a max-length-violating
    planar link trips ``link-range``.
    """
    rng = np.random.default_rng(seed)
    mode = seed % 3
    if mode == 0:
        return _drop_links(design, int(rng.integers(1, 5)))
    if mode == 1:
        links = list(design.links[:-1])
        links.append(links[int(rng.integers(len(links)))])
        return NocDesign(placement=design.placement, links=tuple(links))
    # mode 2: replace one link with a same-layer link longer than the cap
    # (opposite corners of layer 0 are 2*(n-1) hops apart)
    corner_a, corner_b = 0, config.n * config.n - 1
    links = list(design.links[:-1])
    links.append(Link(corner_a, corner_b))
    return NocDesign(placement=design.placement, links=tuple(links))


class TestRepairBudget:
    def test_defaults_and_smoke(self):
        assert RepairBudget().to_dict() == {
            "max_rounds": 4, "candidates_per_round": 8, "max_evaluations": 32,
        }
        smoke = RepairBudget.smoke()
        assert smoke.max_rounds < RepairBudget().max_rounds

    @pytest.mark.parametrize("kwargs", [
        {"max_rounds": 0},
        {"candidates_per_round": 0},
        {"max_evaluations": -1},
    ])
    def test_rejects_bad_bounds(self, kwargs):
        with pytest.raises(ValueError):
            RepairBudget(**kwargs)


class TestRepairWalk:
    def test_feasible_input_is_a_trivial_plan(self, tiny_config):
        design = random_design(tiny_config, np.random.default_rng(0))
        plan = repair_design(design, tiny_config, seed=0)
        assert plan.feasible and plan.rounds_used == 0
        assert plan.design is design
        assert plan.evaluations_used == 0

    def test_fatal_reports_are_refused(self, tiny_config):
        design = random_design(tiny_config, np.random.default_rng(0))
        placement = list(design.placement)
        placement[0] = placement[1]
        broken = NocDesign(placement=tuple(placement), links=design.links)
        plan = repair_design(broken, tiny_config, seed=0)
        assert not plan.feasible and plan.rounds_used == 0
        assert plan.final_report.fatal

    def test_repairs_dropped_links(self, tiny_config):
        design = _drop_links(random_design(tiny_config, np.random.default_rng(1)), 2)
        plan = repair_design(design, tiny_config, seed=7)
        assert plan.feasible
        assert ConstraintChecker(tiny_config).is_feasible(plan.design)
        assert plan.design.placement == design.placement
        assert plan.steps and plan.steps[-1].actions

    def test_repairs_interior_llc_placement(self, small_config):
        from repro.noc.platform import PEType

        design = random_design(small_config, np.random.default_rng(6))
        grid = small_config.grid
        placement = list(design.placement)
        interior = grid.interior_tiles()[0]
        llc_tile = next(
            t for t, pe in enumerate(placement)
            if small_config.pe_type(int(pe)) is PEType.LLC
        )
        placement[interior], placement[llc_tile] = placement[llc_tile], placement[interior]
        broken = NocDesign(placement=tuple(placement), links=design.links)
        plan = repair_design(broken, small_config, seed=9)
        assert "llc-edge" in plan.initial_report.codes
        assert plan.feasible
        assert "llc-edge-swap" in plan.steps[-1].actions

    def test_trims_excess_links(self, tiny_config):
        from repro.noc.links import is_feasible_link

        design = random_design(tiny_config, np.random.default_rng(7))
        grid = tiny_config.grid
        extra = next(
            Link(a, b)
            for a in range(tiny_config.num_tiles)
            for b in range(a + 1, tiny_config.num_tiles)
            if grid.coord(a).same_layer(grid.coord(b))
            and is_feasible_link(Link(a, b), tiny_config)
            and Link(a, b) not in design.links
        )
        broken = NocDesign(placement=design.placement, links=design.links + (extra,))
        plan = repair_design(broken, tiny_config, seed=4)
        assert plan.feasible
        assert len(plan.design.links) == len(design.links)

    def test_scoring_uses_the_evaluator_within_budget(self, tiny_config, tiny_problem):
        design = _drop_links(random_design(tiny_config, np.random.default_rng(2)), 2)
        before = tiny_problem.evaluations
        plan = tiny_problem.repair_design(design, seed=5)
        assert plan.feasible
        assert 0 < plan.evaluations_used <= RepairBudget().max_evaluations
        # repair evaluations flow through the problem's cached counter
        assert tiny_problem.evaluations >= before

    def test_scored_choice_is_deterministic(self, tiny_config, tiny_problem):
        design = _drop_links(random_design(tiny_config, np.random.default_rng(3)), 3)
        first = tiny_problem.repair_design(design, seed=11)
        second = tiny_problem.repair_design(design, seed=11)
        assert first.to_dict() == second.to_dict()

    def test_budget_exhaustion_returns_partial_progress(self, tiny_config):
        """A walk that never reaches feasibility still reports every round
        and adopts the candidate with the fewest violations."""
        from dataclasses import replace as dc_replace

        from repro.noc.constraints import ConstraintViolation

        class NeverSatisfied(ConstraintChecker):
            # keeps one synthetic non-fatal violation alive forever, so the
            # walk exhausts its rounds no matter what the operators do
            def report(self, design):
                base = super().report(design)
                stuck = ConstraintViolation("llc-edge", "synthetic: never satisfied")
                return dc_replace(base, violations=base.violations + (stuck,))

        design = _drop_links(random_design(tiny_config, np.random.default_rng(8)), 2)
        budget = RepairBudget.smoke()
        plan = repair_design(
            design, tiny_config, seed=6, budget=budget, checker=NeverSatisfied(tiny_config)
        )
        assert not plan.feasible
        assert plan.rounds_used == budget.max_rounds
        # the real (budget) violation was still repaired along the way
        assert len(plan.final_report.violations) < len(plan.initial_report.violations)
        assert all(not step.feasible_candidates for step in plan.steps)

    def test_transcript_is_rendered(self, tiny_config):
        design = _drop_links(random_design(tiny_config, np.random.default_rng(4)), 1)
        plan = repair_design(design, tiny_config, seed=1)
        text = plan.format()
        assert "repair walk (seed 1)" in text
        assert "round 0" in text

    def test_plan_serializes_to_json_data(self, tiny_config):
        import json

        design = _drop_links(random_design(tiny_config, np.random.default_rng(5)), 2)
        plan = repair_design(design, tiny_config, seed=2)
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["feasible"] is plan.feasible
        assert payload["initial_report"]["violations"]
        rebuilt = NocDesign.from_arrays(
            payload["design"]["placement"],
            [tuple(pair) for pair in payload["design"]["links"]],
        )
        assert rebuilt == plan.design


CORPUS_SIZE = 50


class TestAcceptanceCorpus:
    """The ISSUE's acceptance bar, per platform class."""

    @pytest.fixture(
        scope="class",
        params=[PlatformConfig.paper_4x4x4, PlatformConfig.big_8x8x4],
        ids=["paper-4x4x4", "big-8x8x4"],
    )
    def corpus(self, request):
        config = request.param()
        checker = ConstraintChecker(config)
        designs = []
        for seed in range(CORPUS_SIZE):
            base = random_design(config, np.random.default_rng(1000 + seed))
            broken = corrupt(base, config, seed)
            assert not checker.report(broken).feasible, (config.name, seed)
            designs.append(broken)
        return config, checker, designs

    @pytest.fixture(scope="class")
    def plans(self, corpus):
        config, checker, designs = corpus
        return [repair_design(d, config, seed=i, checker=checker)
                for i, d in enumerate(designs)]

    def test_repair_rate_at_least_90_percent(self, corpus, plans):
        config, checker, _ = corpus
        repaired = [p for p in plans if p.feasible]
        assert len(repaired) >= 0.9 * CORPUS_SIZE, config.name
        for plan in repaired:
            assert checker.is_feasible(plan.design)

    def test_every_plan_replays_from_its_seed(self, corpus, plans):
        config, checker, designs = corpus
        for i, (design, first) in enumerate(zip(designs, plans)):
            again = repair_design(design, config, seed=i, checker=checker)
            assert first.to_dict() == again.to_dict(), (config.name, i)

    def test_explain_renders_every_report(self, corpus, tmp_path, capsys):
        """``repro explain`` produces a non-empty structured report per design."""
        from repro.cli import main
        from repro.utils.serialization import save_design

        config, checker, designs = corpus
        for i, design in enumerate(designs):
            path = save_design(design, tmp_path / f"design_{i}.json")
            code = main(["explain", str(path), "--platform", config.name])
            out = capsys.readouterr().out
            assert code == 1, (config.name, i)
            assert f"design on {config.name}" in out
            assert "violation(s)" in out
            assert "[" in out  # at least one [code] line
