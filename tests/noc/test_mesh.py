"""Tests for the reference 3D-mesh topology."""

import pytest

from repro.noc.constraints import ConstraintChecker
from repro.noc.links import LinkKind, link_kind
from repro.noc.mesh import mesh_design, mesh_links, mesh_placement
from repro.noc.platform import PEType, PlatformConfig


class TestMeshLinks:
    def test_paper_mesh_counts(self):
        config = PlatformConfig.paper_4x4x4()
        links = mesh_links(config)
        grid = config.grid
        planar = [l for l in links if link_kind(l, grid) is LinkKind.PLANAR]
        vertical = [l for l in links if link_kind(l, grid) is LinkKind.VERTICAL]
        assert len(planar) == 96
        assert len(vertical) == 48

    def test_mesh_links_are_unit_length(self, small_config):
        grid = small_config.grid
        for link in mesh_links(small_config):
            assert grid.manhattan_distance(link.a, link.b) == 1

    def test_mesh_exceeding_budget_raises(self):
        config = PlatformConfig(
            n=3, layers=1, num_cpus=2, num_gpus=3, num_llcs=4,
            num_planar_links=10, num_vertical_links=0,
        )
        with pytest.raises(ValueError):
            mesh_links(config)


class TestMeshDesign:
    def test_mesh_design_is_feasible(self, small_config):
        design = mesh_design(small_config)
        assert ConstraintChecker(small_config).is_feasible(design)

    def test_mesh_design_feasible_on_paper_platform(self, paper_config):
        design = mesh_design(paper_config)
        assert ConstraintChecker(paper_config).is_feasible(design)

    def test_mesh_placement_is_permutation_with_llcs_on_edges(self, small_config):
        grid = small_config.grid
        placement = mesh_placement(small_config)
        assert sorted(placement) == list(range(small_config.num_tiles))
        for tile, pe in enumerate(placement):
            if small_config.pe_type(pe) is PEType.LLC:
                assert grid.is_edge_tile(tile)
