"""Tests for the neighbourhood move operators."""

import numpy as np
import pytest

from repro.noc.constraints import ConstraintChecker, random_design
from repro.noc.moves import MoveGenerator, mutate
from repro.noc.platform import PEType


@pytest.fixture(scope="module")
def small_moves(small_config):
    return MoveGenerator(small_config)


class TestRandomNeighbor:
    def test_neighbors_are_feasible(self, small_config, small_moves):
        checker = ConstraintChecker(small_config)
        rng = np.random.default_rng(0)
        design = random_design(small_config, rng)
        for _ in range(20):
            neighbor = small_moves.random_neighbor(design, rng)
            assert checker.is_feasible(neighbor)

    def test_neighbors_usually_differ_from_parent(self, small_config, small_moves):
        rng = np.random.default_rng(1)
        design = random_design(small_config, rng)
        neighbors = small_moves.neighbors(design, 10, rng)
        assert any(n != design for n in neighbors)

    def test_iter_neighbors_is_endless(self, small_config, small_moves):
        rng = np.random.default_rng(2)
        design = random_design(small_config, rng)
        stream = small_moves.iter_neighbors(design, rng)
        produced = [next(stream) for _ in range(5)]
        assert len(produced) == 5


class TestIndividualMoves:
    def test_swap_pe_preserves_links(self, small_config, small_moves):
        rng = np.random.default_rng(3)
        design = random_design(small_config, rng)
        swapped = small_moves.swap_pe(design, rng)
        assert swapped is not None
        assert swapped.links == design.links
        assert sorted(swapped.placement) == sorted(design.placement)

    def test_swap_pe_respects_llc_edge_rule(self, small_config, small_moves):
        checker = ConstraintChecker(small_config)
        rng = np.random.default_rng(4)
        design = random_design(small_config, rng)
        for _ in range(20):
            swapped = small_moves.swap_pe(design, rng)
            if swapped is not None:
                assert checker.is_feasible(swapped)

    def test_swap_llc_keeps_feasibility(self, small_config, small_moves):
        checker = ConstraintChecker(small_config)
        rng = np.random.default_rng(5)
        design = random_design(small_config, rng)
        swapped = small_moves.swap_llc(design, rng)
        if swapped is not None:
            assert checker.is_feasible(swapped)
            assert swapped.links == design.links

    def test_rewire_link_keeps_budgets_and_connectivity(self, small_config, small_moves):
        checker = ConstraintChecker(small_config)
        rng = np.random.default_rng(6)
        design = random_design(small_config, rng)
        for _ in range(10):
            rewired = small_moves.rewire_link(design, rng)
            if rewired is not None:
                assert checker.is_feasible(rewired)
                assert rewired.num_links == design.num_links
                assert rewired.placement == design.placement

    def test_rewire_changes_exactly_one_link(self, small_config, small_moves):
        rng = np.random.default_rng(7)
        design = random_design(small_config, rng)
        rewired = small_moves.rewire_link(design, rng)
        if rewired is not None:
            removed = set(design.links) - set(rewired.links)
            added = set(rewired.links) - set(design.links)
            assert len(removed) == 1
            assert len(added) == 1


class TestMutate:
    def test_mutate_returns_feasible_design(self, small_config):
        checker = ConstraintChecker(small_config)
        rng = np.random.default_rng(8)
        design = random_design(small_config, rng)
        mutated = mutate(design, small_config, rng, strength=3)
        assert checker.is_feasible(mutated)

    def test_mutate_strength_minimum_one(self, tiny_config):
        rng = np.random.default_rng(9)
        design = random_design(tiny_config, rng)
        mutated = mutate(design, tiny_config, rng, strength=0)
        assert ConstraintChecker(tiny_config).is_feasible(mutated)
