"""Tests for deterministic shortest-path routing."""

import numpy as np
import pytest

from repro.noc.constraints import random_design
from repro.noc.design import NocDesign
from repro.noc.links import Link
from repro.noc.mesh import mesh_design
from repro.noc.routing import RoutingTables


@pytest.fixture(scope="module")
def tiny_routing(tiny_config):
    design = mesh_design(tiny_config)
    return design, RoutingTables(design, tiny_config.grid)


class TestBasicRouting:
    def test_self_route_is_empty(self, tiny_routing):
        _, routing = tiny_routing
        assert routing.path_links(0, 0) == []
        assert routing.path_tiles(0, 0) == [0]
        assert routing.hops(0, 0) == 0

    def test_all_pairs_reachable_on_mesh(self, tiny_routing):
        design, routing = tiny_routing
        for src in range(design.num_tiles):
            for dst in range(design.num_tiles):
                assert routing.is_reachable(src, dst)

    def test_path_tiles_form_a_walk_over_links(self, tiny_routing):
        design, routing = tiny_routing
        link_set = design.link_set()
        for src in range(design.num_tiles):
            for dst in range(design.num_tiles):
                tiles = routing.path_tiles(src, dst)
                assert tiles[0] == src and tiles[-1] == dst
                for a, b in zip(tiles[:-1], tiles[1:]):
                    assert Link.make(a, b) in link_set

    def test_hops_equals_number_of_links(self, tiny_routing):
        design, routing = tiny_routing
        for src in range(design.num_tiles):
            for dst in range(design.num_tiles):
                assert routing.hops(src, dst) == len(routing.path_links(src, dst))

    def test_adjacent_tiles_route_directly(self, tiny_routing):
        design, routing = tiny_routing
        link = design.links[0]
        assert routing.hops(link.a, link.b) == 1

    def test_routes_are_minimal_on_mesh(self, tiny_config, tiny_routing):
        design, routing = tiny_routing
        grid = tiny_config.grid
        # On a full mesh the minimum hop count equals the Manhattan distance.
        for src in range(design.num_tiles):
            for dst in range(design.num_tiles):
                assert routing.hops(src, dst) == grid.manhattan_distance(src, dst)

    def test_path_length_accumulates_link_lengths(self, tiny_config, tiny_routing):
        design, routing = tiny_routing
        for src in range(design.num_tiles):
            for dst in range(design.num_tiles):
                links = routing.path_links(src, dst)
                expected = float(routing.link_lengths[links].sum()) if links else 0.0
                assert routing.path_length(src, dst) == pytest.approx(expected)


class TestDeterminism:
    def test_same_design_same_routes(self, small_config):
        design = random_design(small_config, np.random.default_rng(0))
        first = RoutingTables(design, small_config.grid)
        second = RoutingTables(design, small_config.grid)
        for src in range(0, design.num_tiles, 5):
            for dst in range(0, design.num_tiles, 3):
                assert first.path_links(src, dst) == second.path_links(src, dst)


class TestDisconnected:
    def test_unreachable_raises(self, tiny_config):
        design = mesh_design(tiny_config)
        # Remove every link attached to tile 7 to isolate it.
        links = tuple(l for l in design.links if 7 not in l.endpoints())
        broken = NocDesign(placement=design.placement, links=links)
        routing = RoutingTables(broken, tiny_config.grid)
        assert not routing.is_reachable(0, 7)
        with pytest.raises(ValueError, match="no route"):
            routing.path_links(0, 7)
