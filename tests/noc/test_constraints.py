"""Tests for constraint checking, random design generation and repair."""

import numpy as np
import pytest

import json

from repro.noc.constraints import (
    SEVERITY_ERROR,
    SEVERITY_FATAL,
    ConstraintChecker,
    ConstraintViolation,
    InfeasibleDesignError,
    ViolationReport,
    is_connected,
    random_design,
    random_designs,
    random_link_placement,
    random_placement,
    repair_links,
    violation_details,
)
from repro.noc.design import NocDesign
from repro.noc.links import Link, LinkKind
from repro.noc.platform import PEType, PlatformConfig


class TestRandomGeneration:
    def test_random_designs_are_feasible(self, small_config):
        checker = ConstraintChecker(small_config)
        rng = np.random.default_rng(3)
        for _ in range(5):
            design = random_design(small_config, rng)
            assert checker.violations(design) == []

    def test_random_designs_on_paper_platform(self, paper_config):
        checker = ConstraintChecker(paper_config)
        design = random_design(paper_config, np.random.default_rng(5))
        assert checker.is_feasible(design)

    def test_random_placement_is_permutation(self, small_config):
        placement = random_placement(small_config, np.random.default_rng(0))
        assert sorted(placement) == list(range(small_config.num_tiles))

    def test_random_placement_llcs_on_edges(self, small_config):
        grid = small_config.grid
        placement = random_placement(small_config, np.random.default_rng(1))
        for tile, pe in enumerate(placement):
            if small_config.pe_type(pe) is PEType.LLC:
                assert grid.is_edge_tile(tile)

    def test_random_link_placement_respects_budgets(self, small_config):
        links = random_link_placement(small_config, np.random.default_rng(2))
        grid = small_config.grid
        planar = sum(1 for l in links if grid.coord(l.a).same_layer(grid.coord(l.b)))
        assert planar == small_config.num_planar_links
        assert len(links) - planar == small_config.num_vertical_links

    def test_random_designs_helper_count(self, tiny_config):
        designs = random_designs(tiny_config, 4, np.random.default_rng(0))
        assert len(designs) == 4

    def test_generation_is_reproducible(self, tiny_config):
        a = random_design(tiny_config, 42)
        b = random_design(tiny_config, 42)
        assert a == b

    def test_flat_platform_designs_feasible(self):
        config = PlatformConfig.flat_4x4x1()
        checker = ConstraintChecker(config)
        design = random_design(config, np.random.default_rng(9))
        assert checker.is_feasible(design)


class TestChecker:
    def test_detects_llc_on_interior_tile(self, small_config):
        design = random_design(small_config, np.random.default_rng(0))
        grid = small_config.grid
        interior = grid.interior_tiles()[0]
        llc_pe = int(small_config.llc_ids[0])
        placement = list(design.placement)
        llc_tile = placement.index(llc_pe)
        placement[interior], placement[llc_tile] = placement[llc_tile], placement[interior]
        bad = NocDesign(placement=tuple(placement), links=design.links)
        codes = [v.code for v in ConstraintChecker(small_config).violations(bad)]
        assert "llc-edge" in codes

    def test_detects_wrong_budget(self, tiny_config):
        design = random_design(tiny_config, np.random.default_rng(0))
        trimmed = NocDesign(placement=design.placement, links=design.links[:-1])
        codes = [v.code for v in ConstraintChecker(tiny_config).violations(trimmed)]
        assert any(code.endswith("-budget") for code in codes)

    def test_detects_disconnection(self, tiny_config):
        # Keep the budgets but concentrate links so a node is isolated if possible:
        # simpler: build an obviously disconnected design by dropping all links
        # touching tile 0 and duplicating others is invalid; instead check helper.
        design = random_design(tiny_config, np.random.default_rng(0))
        assert is_connected(design)
        empty = NocDesign(placement=design.placement, links=())
        assert not is_connected(empty)

    def test_detects_non_permutation(self, tiny_config):
        design = random_design(tiny_config, np.random.default_rng(0))
        placement = list(design.placement)
        placement[0] = placement[1]
        bad = NocDesign(placement=tuple(placement), links=design.links)
        codes = [v.code for v in ConstraintChecker(tiny_config).violations(bad)]
        assert "placement-permutation" in codes

    def test_check_raises_with_details(self, tiny_config):
        design = random_design(tiny_config, np.random.default_rng(0))
        bad = NocDesign(placement=design.placement, links=design.links[:-2])
        with pytest.raises(ValueError, match="infeasible design"):
            ConstraintChecker(tiny_config).check(bad)

    def test_feasible_design_passes_check(self, tiny_config):
        design = random_design(tiny_config, np.random.default_rng(0))
        ConstraintChecker(tiny_config).check(design)


class TestTypedExceptionContract:
    """The message contract ``check()`` has always exposed, now typed.

    Callers that matched the bare ``ValueError`` by its ``"infeasible
    design"`` prefix keep working; new callers get the structured report via
    ``InfeasibleDesignError.report``.
    """

    @pytest.fixture()
    def damaged(self, tiny_config):
        design = random_design(tiny_config, np.random.default_rng(0))
        return NocDesign(placement=design.placement, links=design.links[:-2])

    def test_is_a_value_error(self, tiny_config, damaged):
        with pytest.raises(ValueError):
            ConstraintChecker(tiny_config).check(damaged)
        assert issubclass(InfeasibleDesignError, ValueError)

    def test_message_keeps_historical_prefix(self, tiny_config, damaged):
        with pytest.raises(InfeasibleDesignError) as excinfo:
            ConstraintChecker(tiny_config).check(damaged)
        message = str(excinfo.value)
        assert message.startswith("infeasible design: ")
        # every violation is rendered as "[code] message" in the string
        for violation in excinfo.value.report.violations:
            assert f"[{violation.code}]" in message

    def test_carries_the_structured_report(self, tiny_config, damaged):
        with pytest.raises(InfeasibleDesignError) as excinfo:
            ConstraintChecker(tiny_config).check(damaged)
        report = excinfo.value.report
        assert isinstance(report, ViolationReport)
        assert not report.feasible
        assert report.violations


class TestViolationReport:
    def test_feasible_report_is_empty(self, tiny_config):
        design = random_design(tiny_config, np.random.default_rng(0))
        report = ConstraintChecker(tiny_config).report(design)
        assert report.feasible and not report.fatal
        assert report.violations == ()
        assert "feasible" in report.format()

    def test_budget_violation_details(self, tiny_config):
        design = random_design(tiny_config, np.random.default_rng(0))
        trimmed = NocDesign(placement=design.placement, links=design.links[:-1])
        report = ConstraintChecker(tiny_config).report(trimmed)
        assert not report.feasible
        budget = next(v for v in report.violations if v.code.endswith("-budget"))
        assert budget.severity == SEVERITY_ERROR
        assert budget.detail("delta") == budget.detail("used") - budget.detail("budget")

    def test_placement_violations_are_fatal(self, tiny_config):
        design = random_design(tiny_config, np.random.default_rng(0))
        placement = list(design.placement)
        placement[0] = placement[1]
        bad = NocDesign(placement=tuple(placement), links=design.links)
        report = ConstraintChecker(tiny_config).report(bad)
        assert report.fatal
        (fatal,) = report.by_code("placement-permutation")
        assert fatal.severity == SEVERITY_FATAL

    def test_report_round_trips_through_json(self, tiny_config):
        design = random_design(tiny_config, np.random.default_rng(0))
        trimmed = NocDesign(placement=design.placement, links=design.links[:-2])
        report = ConstraintChecker(tiny_config).report(trimmed)
        payload = json.loads(report.to_json())
        assert payload == report.to_dict()
        assert payload["platform"] == tiny_config.name
        assert [v["code"] for v in payload["violations"]] == list(report.codes)

    def test_violations_are_hashable_value_objects(self):
        a = ConstraintViolation("demo", "demo message", details=violation_details(x=1))
        b = ConstraintViolation("demo", "demo message", details=violation_details(x=1))
        assert a == b and hash(a) == hash(b)
        assert str(a) == "[demo] demo message"


class TestRepair:
    def test_repair_restores_budgets(self, small_config):
        rng = np.random.default_rng(4)
        design = random_design(small_config, rng)
        damaged = NocDesign(placement=design.placement, links=design.links[:-5])
        repaired = repair_links(damaged, small_config, rng)
        assert ConstraintChecker(small_config).is_feasible(repaired)

    def test_repair_keeps_placement(self, small_config):
        rng = np.random.default_rng(4)
        design = random_design(small_config, rng)
        damaged = NocDesign(placement=design.placement, links=design.links[: len(design.links) // 2])
        repaired = repair_links(damaged, small_config, rng)
        assert repaired.placement == design.placement

    def test_repair_is_noop_for_feasible_links(self, small_config):
        rng = np.random.default_rng(4)
        design = random_design(small_config, rng)
        repaired = repair_links(design, small_config, rng)
        assert ConstraintChecker(small_config).is_feasible(repaired)

    def test_repair_handles_duplicate_and_infeasible_links(self, tiny_config):
        rng = np.random.default_rng(4)
        design = random_design(tiny_config, rng)
        # Inject an infeasible (diagonal) link by replacing one planar link.
        links = list(design.links)
        links[0] = Link.make(0, 5)
        broken = NocDesign(placement=design.placement, links=tuple(links))
        repaired = repair_links(broken, tiny_config, rng)
        assert ConstraintChecker(tiny_config).is_feasible(repaired)
