"""Tests for link modelling and candidate enumeration."""

import pytest

from repro.noc.geometry import Grid3D
from repro.noc.links import (
    Link,
    LinkKind,
    candidate_links,
    candidate_planar_links,
    candidate_vertical_links,
    is_feasible_link,
    link_kind,
    link_length,
)
from repro.noc.platform import PlatformConfig


class TestLink:
    def test_make_normalises_order(self):
        assert Link.make(5, 2) == Link(2, 5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Link(3, 3)

    def test_unordered_construction_rejected(self):
        with pytest.raises(ValueError):
            Link(5, 2)

    def test_other_endpoint(self):
        link = Link(1, 4)
        assert link.other(1) == 4
        assert link.other(4) == 1
        with pytest.raises(ValueError):
            link.other(2)

    def test_links_sort_lexicographically(self):
        links = [Link(2, 5), Link(0, 3), Link(0, 1)]
        assert sorted(links) == [Link(0, 1), Link(0, 3), Link(2, 5)]


class TestClassification:
    def test_planar_and_vertical_kinds(self, tiny_config):
        grid = tiny_config.grid
        planar = Link(0, 1)  # same layer neighbours
        vertical = Link(0, 4)  # same column, adjacent layer in a 2x2x2 grid
        assert link_kind(planar, grid) is LinkKind.PLANAR
        assert link_kind(vertical, grid) is LinkKind.VERTICAL

    def test_diagonal_link_rejected(self, tiny_config):
        grid = tiny_config.grid
        with pytest.raises(ValueError):
            link_kind(Link(0, 5), grid)  # different layer, different column

    def test_link_length_is_manhattan(self):
        grid = Grid3D(4, 1)
        assert link_length(Link(0, 3), grid) == 3
        assert link_length(Link(0, 1), grid) == 1


class TestFeasibility:
    def test_planar_length_limit(self):
        config = PlatformConfig.paper_4x4x4()
        grid = config.grid
        # Opposite corners of one 4x4 layer are 6 units apart (> 5).
        far = Link(0, 15)
        assert grid.coord(0).same_layer(grid.coord(15))
        assert not is_feasible_link(far, config)

    def test_vertical_must_be_adjacent_layers(self):
        config = PlatformConfig.paper_4x4x4()
        two_layers_apart = Link(0, 32)
        assert not is_feasible_link(two_layers_apart, config)
        adjacent = Link(0, 16)
        assert is_feasible_link(adjacent, config)


class TestCandidateEnumeration:
    def test_vertical_candidates_count(self):
        config = PlatformConfig.paper_4x4x4()
        assert len(candidate_vertical_links(config)) == config.max_vertical_candidates

    def test_planar_candidates_respect_length(self):
        config = PlatformConfig.small_3x3x3()
        grid = config.grid
        for link in candidate_planar_links(config):
            assert 1 <= grid.planar_distance(link.a, link.b) <= config.max_planar_length
            assert grid.coord(link.a).same_layer(grid.coord(link.b))

    def test_candidates_are_unique_and_combined(self):
        config = PlatformConfig.tiny_2x2x2()
        all_links = candidate_links(config)
        assert len(all_links) == len(set(all_links))
        assert len(all_links) == len(candidate_planar_links(config)) + len(candidate_vertical_links(config))

    def test_tiny_planar_candidates(self):
        # In a 2x2 layer every pair of tiles is within distance 2, so each
        # layer contributes C(4,2) = 6 planar candidates.
        config = PlatformConfig.tiny_2x2x2()
        assert len(candidate_planar_links(config)) == 12
