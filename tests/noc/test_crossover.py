"""Tests for the genetic crossover operator."""

import numpy as np
import pytest

from repro.noc.constraints import ConstraintChecker, random_design
from repro.noc.crossover import crossover, crossover_links, crossover_placement
from repro.noc.platform import PEType


class TestCrossoverPlacement:
    def test_child_placement_is_permutation(self, small_config):
        rng = np.random.default_rng(0)
        a = random_design(small_config, rng)
        b = random_design(small_config, rng)
        child = crossover_placement(a, b, small_config, rng)
        assert sorted(child) == list(range(small_config.num_tiles))

    def test_child_llcs_on_edge_tiles(self, small_config):
        rng = np.random.default_rng(1)
        grid = small_config.grid
        a = random_design(small_config, rng)
        b = random_design(small_config, rng)
        for _ in range(10):
            child = crossover_placement(a, b, small_config, rng)
            for tile, pe in enumerate(child):
                if small_config.pe_type(pe) is PEType.LLC:
                    assert grid.is_edge_tile(tile)

    def test_child_inherits_common_assignments(self, small_config):
        rng = np.random.default_rng(2)
        a = random_design(small_config, rng)
        child = crossover_placement(a, a, small_config, rng)
        assert tuple(child) == a.placement


class TestCrossoverLinks:
    def test_common_links_are_inherited(self, small_config):
        rng = np.random.default_rng(3)
        a = random_design(small_config, rng)
        b = random_design(small_config, rng)
        child_links = set(crossover_links(a, b, small_config, rng))
        common = a.link_set() & b.link_set()
        assert common <= child_links

    def test_identical_parents_reproduce_links(self, small_config):
        rng = np.random.default_rng(4)
        a = random_design(small_config, rng)
        child_links = set(crossover_links(a, a, small_config, rng))
        assert child_links == a.link_set()


class TestFullCrossover:
    def test_offspring_is_feasible(self, small_config):
        checker = ConstraintChecker(small_config)
        rng = np.random.default_rng(5)
        a = random_design(small_config, rng)
        b = random_design(small_config, rng)
        for _ in range(5):
            child = crossover(a, b, small_config, rng)
            assert checker.is_feasible(child)

    def test_offspring_feasible_on_paper_platform(self, paper_config):
        checker = ConstraintChecker(paper_config)
        rng = np.random.default_rng(6)
        a = random_design(paper_config, rng)
        b = random_design(paper_config, rng)
        child = crossover(a, b, paper_config, rng)
        assert checker.is_feasible(child)

    def test_crossover_is_reproducible_with_seed(self, tiny_config):
        a = random_design(tiny_config, 1)
        b = random_design(tiny_config, 2)
        child_1 = crossover(a, b, tiny_config, np.random.default_rng(9))
        child_2 = crossover(a, b, tiny_config, np.random.default_rng(9))
        assert child_1 == child_2
