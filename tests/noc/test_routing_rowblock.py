"""Row-block pair-table adoption: spliced tables are byte-identical to fresh.

``RoutingTables.incremental_update`` no longer rebuilds the lazy pair tables
from scratch: surviving parent rows are spliced block-wise into the child's
CSR incidences (``_adopt_pair_tables`` / ``_spliced_csr``).  These tests pin
the contract that adoption is invisible — every array a fresh
``from_links`` build produces is byte-for-byte identical, on the 256-tile
grid the optimisation targets and across delta shapes (single link, multiple
links, placement-only).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.noc.constraints import random_design
from repro.noc.design import NocDesign
from repro.noc.links import Link, candidate_links
from repro.noc.moves import MoveGenerator
from repro.noc.platform import PlatformConfig
from repro.noc.routing import RoutingTables

BIG = PlatformConfig.big_8x8x4()
SMALL = PlatformConfig.small_3x3x3()
TINY = PlatformConfig.tiny_2x2x2()


def assert_byte_identical(adopted: RoutingTables, fresh: RoutingTables) -> None:
    """Every pair-table array matches the fresh build byte for byte.

    ``tobytes()`` equality is stricter than ``==``: it also pins dtypes and
    element order, so a splice that produced the right values in a different
    dtype (e.g. int64 indices where scipy downcasts to int32) still fails.

    The raw Dijkstra ``_distance`` is the one exception: for equal-cost path
    ties, scipy's traversal order (and thus float summation grouping) depends
    on the graph it ran on, so adopted parent rows can differ from a fresh
    child build by ~1 ulp.  That is exactly why canonical predecessors are
    derived with ``_TIE_TOLERANCE`` — everything downstream of the tolerance
    (routes, hops, incidences, objectives) is byte-checked above; the raw
    distances are pinned to the tolerance instead.
    """
    for name in ("pair_link_incidence", "pair_tile_incidence"):
        a, b = getattr(adopted, name)(), getattr(fresh, name)()
        assert a.shape == b.shape
        for attr in ("indptr", "indices", "data"):
            left, right = getattr(a, attr), getattr(b, attr)
            assert left.dtype == right.dtype, f"{name}.{attr} dtype"
            assert left.tobytes() == right.tobytes(), f"{name}.{attr} bytes"
    assert adopted.pair_hops().tobytes() == fresh.pair_hops().tobytes()
    assert adopted.pair_lengths().tobytes() == fresh.pair_lengths().tobytes()
    np.testing.assert_array_equal(adopted._predecessors, fresh._predecessors)
    np.testing.assert_allclose(
        adopted._distance, fresh._distance, rtol=0, atol=RoutingTables._TIE_TOLERANCE
    )


def rewired_links(links, rng, moves=1):
    """A feasible-ish link-set delta: swap ``moves`` links for unused candidates.

    Feasibility (degree caps, budgets) does not matter for routing-table
    equivalence — only connectivity does, which replacing non-bridge links
    preserves often enough that we simply retry until the fresh build agrees
    the graph stayed connected.
    """
    pool = [c for c in candidate_links(BIG) if c not in set(links)]
    for _ in range(200):
        trial = list(links)
        removed = rng.choice(len(trial), size=moves, replace=False)
        added = rng.choice(len(pool), size=moves, replace=False)
        for slot, pick in zip(sorted(removed.tolist(), reverse=True), added.tolist()):
            trial[slot] = pool[pick]
        trial_tuple = tuple(sorted(trial))
        fresh = RoutingTables.from_links(trial_tuple, BIG.num_tiles, BIG.grid)
        if np.all(np.isfinite(fresh._distance)):
            return trial_tuple, fresh
    raise AssertionError("no connected rewire found in 200 tries")


class TestBigGridAdoption:
    """Seeded equivalence on the 8x8x4 grid (the scale that motivated splicing)."""

    @pytest.fixture(scope="class")
    def parent(self):
        design = random_design(BIG, 7)
        return design, RoutingTables(design, BIG.grid)

    def test_single_link_rewire_matches_fresh(self, parent):
        design, tables = parent
        rng = np.random.default_rng(1)
        child_links, fresh = rewired_links(design.links, rng, moves=1)
        assert_byte_identical(tables.incremental_update(child_links), fresh)

    def test_multi_link_rewire_matches_fresh(self, parent):
        design, tables = parent
        rng = np.random.default_rng(2)
        for moves in (2, 4, 8):
            child_links, fresh = rewired_links(design.links, rng, moves=moves)
            assert_byte_identical(tables.incremental_update(child_links), fresh)

    def test_placement_delta_adopts_every_row(self, parent):
        """A placement-only move keeps the link set: zero affected sources,
        so adoption splices *all* parent rows — still byte-identical."""
        design, tables = parent
        updated = tables.incremental_update(design.links)
        fresh = RoutingTables.from_links(design.links, BIG.num_tiles, BIG.grid)
        assert_byte_identical(updated, fresh)

    def test_adoption_after_parent_tables_materialised(self, parent):
        """Splicing reads the parent's built tables; building them first (the
        cache-warm case an engine is always in) must not change the child."""
        design, tables = parent
        tables.pair_link_incidence()  # force the lazy build
        rng = np.random.default_rng(3)
        child_links, fresh = rewired_links(design.links, rng, moves=2)
        assert_byte_identical(tables.incremental_update(child_links), fresh)


class TestMoveGeneratorDeltas:
    """Adoption under the real move operators on the 27-tile platform."""

    def test_rewire_chain_matches_fresh(self):
        moves = MoveGenerator(SMALL)
        rng = np.random.default_rng(11)
        design = random_design(SMALL, 5)
        tables = RoutingTables(design, SMALL.grid)
        for _ in range(6):
            child = moves.random_neighbor(design, rng)
            updated = tables.incremental_update(child.links)
            fresh = RoutingTables.from_links(child.links, SMALL.num_tiles, SMALL.grid)
            assert_byte_identical(updated, fresh)
            design, tables = child, updated


@given(seed=st.integers(min_value=0, max_value=10_000), steps=st.integers(min_value=1, max_value=5))
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_adopted_rows_byte_identical_property(seed, steps):
    """Hypothesis: chained random moves keep adoption byte-exact (tiny grid)."""
    moves = MoveGenerator(TINY)
    rng = np.random.default_rng(seed)
    design = random_design(TINY, rng)
    tables = RoutingTables(design, TINY.grid)
    for _ in range(steps):
        design = moves.random_neighbor(design, rng)
        tables = tables.incremental_update(design.links)
        fresh = RoutingTables.from_links(design.links, TINY.num_tiles, TINY.grid)
        assert_byte_identical(tables, fresh)
