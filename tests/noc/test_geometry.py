"""Tests for the 3D tile grid geometry."""

import pytest

from repro.noc.geometry import Grid3D, TileCoord


class TestTileCoord:
    def test_planar_distance_ignores_layer(self):
        a = TileCoord(0, 0, 0)
        b = TileCoord(2, 3, 3)
        assert a.planar_distance(b) == 5

    def test_manhattan_distance_includes_layer(self):
        a = TileCoord(0, 0, 0)
        b = TileCoord(2, 3, 3)
        assert a.manhattan_distance(b) == 8

    def test_same_layer_and_column(self):
        assert TileCoord(1, 2, 0).same_layer(TileCoord(3, 0, 0))
        assert not TileCoord(1, 2, 0).same_layer(TileCoord(1, 2, 1))
        assert TileCoord(1, 2, 0).same_column(TileCoord(1, 2, 3))
        assert not TileCoord(1, 2, 0).same_column(TileCoord(2, 2, 0))


class TestGrid3D:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Grid3D(0, 3)
        with pytest.raises(ValueError):
            Grid3D(3, 0)

    def test_tile_counts(self):
        grid = Grid3D(3, 3)
        assert grid.num_tiles == 27
        assert grid.tiles_per_layer == 9
        assert grid.num_columns == 9

    def test_tile_id_round_trip(self):
        grid = Grid3D(4, 4)
        for tile_id in range(grid.num_tiles):
            assert grid.tile_id(grid.coord(tile_id)) == tile_id

    def test_tile_id_ordering_is_layer_major(self):
        grid = Grid3D(3, 2)
        assert grid.tile_id(TileCoord(0, 0, 0)) == 0
        assert grid.tile_id(TileCoord(2, 0, 0)) == 2
        assert grid.tile_id(TileCoord(0, 1, 0)) == 3
        assert grid.tile_id(TileCoord(0, 0, 1)) == 9

    def test_out_of_range_rejected(self):
        grid = Grid3D(2, 2)
        with pytest.raises(ValueError):
            grid.coord(8)
        with pytest.raises(ValueError):
            grid.tile_id(TileCoord(2, 0, 0))

    def test_column_and_layer(self):
        grid = Grid3D(3, 3)
        tile = grid.tile_id(TileCoord(1, 2, 2))
        assert grid.column_id(tile) == 2 * 3 + 1
        assert grid.layer_of(tile) == 2

    def test_edge_tiles_in_3x3(self):
        grid = Grid3D(3, 2)
        edge = set(grid.edge_tiles())
        interior = set(grid.interior_tiles())
        assert edge | interior == set(range(grid.num_tiles))
        assert edge & interior == set()
        # The centre tile of every 3x3 layer is interior.
        assert grid.tile_id(TileCoord(1, 1, 0)) in interior
        assert grid.tile_id(TileCoord(1, 1, 1)) in interior
        assert len(interior) == 2

    def test_all_tiles_are_edge_in_2x2(self):
        grid = Grid3D(2, 2)
        assert len(grid.edge_tiles()) == grid.num_tiles
        assert grid.interior_tiles() == []

    def test_planar_neighbors_center(self):
        grid = Grid3D(3, 1)
        center = grid.tile_id(TileCoord(1, 1, 0))
        assert len(grid.planar_neighbors(center)) == 4

    def test_planar_neighbors_corner(self):
        grid = Grid3D(3, 1)
        corner = grid.tile_id(TileCoord(0, 0, 0))
        assert len(grid.planar_neighbors(corner)) == 2

    def test_vertical_neighbors(self):
        grid = Grid3D(2, 3)
        bottom = grid.tile_id(TileCoord(0, 0, 0))
        middle = grid.tile_id(TileCoord(0, 0, 1))
        top = grid.tile_id(TileCoord(0, 0, 2))
        assert grid.vertical_neighbors(bottom) == [middle]
        assert set(grid.vertical_neighbors(middle)) == {bottom, top}
        assert grid.vertical_neighbors(top) == [middle]

    def test_single_layer_has_no_vertical_neighbors(self):
        grid = Grid3D(3, 1)
        assert all(grid.vertical_neighbors(t) == [] for t in grid.tiles())

    def test_distances(self):
        grid = Grid3D(3, 3)
        a = grid.tile_id(TileCoord(0, 0, 0))
        b = grid.tile_id(TileCoord(2, 2, 2))
        assert grid.planar_distance(a, b) == 4
        assert grid.manhattan_distance(a, b) == 6

    def test_equality_and_hash(self):
        assert Grid3D(3, 2) == Grid3D(3, 2)
        assert Grid3D(3, 2) != Grid3D(2, 3)
        assert hash(Grid3D(3, 2)) == hash(Grid3D(3, 2))

    def test_coords_iteration_matches_ids(self):
        grid = Grid3D(2, 2)
        coords = list(grid.coords())
        assert len(coords) == grid.num_tiles
        assert [grid.tile_id(c) for c in coords] == list(range(grid.num_tiles))
