"""Tests for the cross-design route cache (RoutingEngine) and move deltas."""

import numpy as np
import pytest

from repro.noc.constraints import random_design
from repro.noc.design import MoveDelta, NocDesign, annotate_move, move_delta_of
from repro.noc.moves import MoveGenerator, mutate
from repro.noc.crossover import crossover
from repro.noc.routing import RoutingTables
from repro.noc.routing_engine import RoutingEngine


def assert_tables_identical(left: RoutingTables, right: RoutingTables) -> None:
    """Full structural equality: distances, routes, incidence matrices."""
    np.testing.assert_array_equal(left._predecessors, right._predecessors)
    assert np.allclose(left._distance, right._distance, rtol=0, atol=1e-9)
    assert (left.pair_link_incidence() != right.pair_link_incidence()).nnz == 0
    assert (left.pair_tile_incidence() != right.pair_tile_incidence()).nnz == 0
    np.testing.assert_array_equal(left.pair_hops(), right.pair_hops())
    np.testing.assert_array_equal(left.pair_lengths(), right.pair_lengths())
    np.testing.assert_array_equal(left.reachable_pairs(), right.reachable_pairs())


class TestMoveDeltas:
    def test_placement_moves_annotate_placement_only_deltas(self, small_config, rng):
        moves = MoveGenerator(small_config)
        design = random_design(small_config, rng)
        swapped = moves.swap_pe(design, rng)
        delta = move_delta_of(swapped)
        assert delta is not None
        assert delta.kind == "swap_pe"
        assert delta.placement_only
        assert delta.tiles_swapped is not None
        assert delta.parent_links == design.links

    def test_rewire_annotates_link_delta(self, small_config, rng):
        moves = MoveGenerator(small_config)
        design = random_design(small_config, rng)
        rewired = moves.rewire_link(design, rng)
        assert rewired is not None
        delta = move_delta_of(rewired)
        assert delta.kind == "rewire_link"
        assert not delta.placement_only
        assert delta.num_link_changes == 2
        assert set(delta.links_removed) == set(design.links) - set(rewired.links)
        assert set(delta.links_added) == set(rewired.links) - set(design.links)

    def test_crossover_annotates_against_closest_parent(self, small_config, rng):
        parent_a = random_design(small_config, rng)
        parent_b = random_design(small_config, rng)
        child = crossover(parent_a, parent_b, small_config, rng)
        delta = move_delta_of(child)
        assert delta is not None and delta.kind == "crossover"
        assert delta.parent_links in (parent_a.links, parent_b.links)
        parent_set = set(delta.parent_links)
        assert set(delta.links_added) == set(child.links) - parent_set
        assert set(delta.links_removed) == parent_set - set(child.links)

    def test_multi_move_mutation_composes_delta_against_original(self, small_config, rng):
        design = random_design(small_config, rng)
        mutated = mutate(design, small_config, rng, strength=3)
        delta = move_delta_of(mutated)
        assert delta is not None
        assert delta.parent_links == design.links

    def test_annotation_does_not_change_identity(self, small_config, rng):
        design = random_design(small_config, rng)
        twin = NocDesign(placement=design.placement, links=design.links)
        annotated = annotate_move(twin, MoveDelta(kind="test", parent_links=design.links))
        assert annotated == design
        assert hash(annotated) == hash(design)
        assert annotated.key() == design.key()


class TestRoutingEngine:
    def test_same_link_set_is_a_hit_across_placements(self, small_config, rng):
        engine = RoutingEngine(small_config.grid)
        moves = MoveGenerator(small_config)
        design = random_design(small_config, rng)
        first = engine.tables(design)
        swapped = moves.swap_pe(design, rng)
        second = engine.tables(swapped)
        assert second is first  # shared read-only instance, no rebuild
        assert engine.stats() == {
            "hits": 1,
            "misses": 1,
            "incremental_repairs": 0,
            "requests": 2,
            "hit_rate": 0.5,
            "cached_topologies": 1,
        }

    def test_link_move_repairs_incrementally_and_matches_fresh(self, small_config, rng):
        engine = RoutingEngine(small_config.grid)
        moves = MoveGenerator(small_config)
        design = random_design(small_config, rng)
        engine.tables(design)
        rewired = moves.rewire_link(design, rng)
        assert rewired is not None
        repaired = engine.tables(rewired)
        assert engine.incremental_repairs == 1
        assert_tables_identical(repaired, RoutingTables(rewired, small_config.grid))

    def test_unknown_parent_falls_back_to_fresh_build(self, small_config, rng):
        engine = RoutingEngine(small_config.grid)
        moves = MoveGenerator(small_config)
        design = random_design(small_config, rng)
        rewired = moves.rewire_link(design, rng)
        assert rewired is not None
        tables = engine.tables(rewired)  # parent never seen by this engine
        assert engine.misses == 1 and engine.incremental_repairs == 0
        assert_tables_identical(tables, RoutingTables(rewired, small_config.grid))

    def test_stale_delta_hint_is_harmless(self, small_config, rng):
        """A wrong annotation may cost a rebuild but never a wrong route."""
        engine = RoutingEngine(small_config.grid)
        design_a = random_design(small_config, rng)
        design_b = random_design(small_config, rng)
        engine.tables(design_a)
        # Lie: claim design_b is one move away from design_a.
        forged = annotate_move(
            NocDesign(placement=design_b.placement, links=design_b.links),
            MoveDelta(kind="forged", parent_links=design_a.links),
        )
        tables = engine.tables(forged)
        assert_tables_identical(tables, RoutingTables(design_b, small_config.grid))

    def test_lru_eviction_bounds_cache(self, small_config):
        engine = RoutingEngine(small_config.grid, cache_size=2)
        designs = [random_design(small_config, seed) for seed in range(4)]
        for design in designs:
            engine.tables(design)
        assert len(engine) == 2
        assert engine.tables_for_links(designs[0].links) is None
        assert engine.tables_for_links(designs[-1].links) is not None

    def test_incremental_false_disables_repairs(self, small_config, rng):
        engine = RoutingEngine(small_config.grid, incremental=False)
        moves = MoveGenerator(small_config)
        design = random_design(small_config, rng)
        engine.tables(design)
        rewired = moves.rewire_link(design, rng)
        engine.tables(rewired)
        assert engine.incremental_repairs == 0
        assert engine.misses == 2

    def test_zero_repair_fraction_disables_repairs(self, small_config, rng):
        engine = RoutingEngine(small_config.grid, max_repair_fraction=0.0)
        moves = MoveGenerator(small_config)
        design = random_design(small_config, rng)
        engine.tables(design)
        rewired = moves.rewire_link(design, rng)
        engine.tables(rewired)
        assert engine.incremental_repairs == 0
        assert engine.misses == 2

    def test_invalid_parameters_rejected(self, small_config):
        with pytest.raises(ValueError):
            RoutingEngine(small_config.grid, cache_size=0)
        with pytest.raises(ValueError):
            RoutingEngine(small_config.grid, max_repair_fraction=1.5)


class TestFromLinks:
    def test_from_links_matches_design_constructor(self, small_config, rng):
        design = random_design(small_config, rng)
        direct = RoutingTables(design, small_config.grid)
        indirect = RoutingTables.from_links(design.links, design.num_tiles, small_config.grid)
        assert_tables_identical(direct, indirect)

    def test_from_links_sorts_into_canonical_order(self, small_config, rng):
        design = random_design(small_config, rng)
        shuffled = list(design.links)[::-1]
        tables = RoutingTables.from_links(shuffled, design.num_tiles, small_config.grid)
        assert tables.links == design.links
