"""RouteStore: disk warm-start entries round-trip byte-exact and degrade to misses.

The store crosses process boundaries the in-memory engine cannot (pool
workers, campaign cells), so its contract is strict: a load either
reconstructs tables bit-identical to the build that was saved, or returns
``None`` — never wrong routes, never an exception, no matter what is on disk.
"""

import numpy as np
import pytest

from repro.noc.constraints import random_design
from repro.noc.platform import PlatformConfig
from repro.noc.route_store import DEFAULT_MAX_ENTRIES, RouteStore
from repro.noc.routing import RoutingTables
from repro.noc.routing_engine import RoutingEngine

PLATFORM = PlatformConfig.small_3x3x3()


@pytest.fixture
def tables():
    design = random_design(PLATFORM, 3)
    return RoutingTables(design, PLATFORM.grid)


class TestRoundTrip:
    def test_load_reconstructs_saved_state_byte_exact(self, tmp_path, tables):
        store = RouteStore(tmp_path)
        assert store.save(tables) is True
        loaded = store.load(tables.links, tables.num_tiles, tables.grid)
        assert loaded is not None
        assert loaded.links == tables.links
        assert loaded._distance.tobytes() == tables._distance.tobytes()
        assert loaded._predecessors.tobytes() == tables._predecessors.tobytes()
        for name in ("pair_link_incidence", "pair_tile_incidence"):
            a, b = getattr(loaded, name)(), getattr(tables, name)()
            assert a.indptr.tobytes() == b.indptr.tobytes()
            assert a.indices.tobytes() == b.indices.tobytes()
            assert a.data.tobytes() == b.data.tobytes()
        assert loaded.pair_hops().tobytes() == tables.pair_hops().tobytes()

    def test_missing_key_is_none(self, tmp_path, tables):
        store = RouteStore(tmp_path)
        assert store.load(tables.links, tables.num_tiles, tables.grid) is None

    def test_save_is_idempotent(self, tmp_path, tables):
        store = RouteStore(tmp_path)
        assert store.save(tables) is True
        assert store.save(tables) is False
        assert len(store) == 1

    def test_identical_content_across_two_stores(self, tmp_path, tables):
        """Entry names derive from content only: two stores populated from the
        same tables are file-for-file identical (determinism contract)."""
        first, second = RouteStore(tmp_path / "a"), RouteStore(tmp_path / "b")
        first.save(tables)
        second.save(tables)
        (file_a,) = sorted(p.name for p in (tmp_path / "a").iterdir())
        (file_b,) = sorted(p.name for p in (tmp_path / "b").iterdir())
        assert file_a == file_b
        assert (tmp_path / "a" / file_a).read_bytes() == (tmp_path / "b" / file_b).read_bytes()


class TestBounds:
    def test_max_entries_caps_saves(self, tmp_path):
        store = RouteStore(tmp_path, max_entries=2)
        outcomes = []
        for seed in range(4):
            design = random_design(PLATFORM, seed)
            outcomes.append(store.save(RoutingTables(design, PLATFORM.grid)))
        assert outcomes == [True, True, False, False]
        assert len(store) == 2

    def test_default_bound(self, tmp_path):
        assert RouteStore(tmp_path).max_entries == DEFAULT_MAX_ENTRIES

    def test_invalid_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RouteStore(tmp_path, max_entries=0)

    def test_len_of_missing_directory_is_zero(self, tmp_path):
        assert len(RouteStore(tmp_path / "never-created")) == 0


class TestMissNotError:
    def test_grid_mismatch_is_none(self, tmp_path, tables):
        """Same links hashed under another grid must not resolve — the key
        includes the dims, so this is simply a different entry."""
        store = RouteStore(tmp_path)
        store.save(tables)
        other = PlatformConfig.paper_4x4x4()
        assert store.load(tables.links, other.num_tiles, other.grid) is None

    def test_link_set_mismatch_degrades_to_miss(self, tmp_path, tables):
        """A file renamed onto another key (simulated collision / stale cache)
        fails the stored-endpoint verification and loads as None."""
        store = RouteStore(tmp_path)
        store.save(tables)
        (entry,) = list(tmp_path.iterdir())
        victim = random_design(PLATFORM, 99)
        victim_key = RouteStore.key_for(victim.links, victim.num_tiles, PLATFORM.grid)
        entry.rename(tmp_path / f"{victim_key}.npz")
        assert store.load(victim.links, victim.num_tiles, PLATFORM.grid) is None

    def test_corrupt_file_degrades_to_miss(self, tmp_path, tables):
        store = RouteStore(tmp_path)
        store.save(tables)
        (entry,) = list(tmp_path.iterdir())
        entry.write_bytes(b"not an npz archive")
        assert store.load(tables.links, tables.num_tiles, tables.grid) is None

    def test_truncated_file_degrades_to_miss(self, tmp_path, tables):
        store = RouteStore(tmp_path)
        store.save(tables)
        (entry,) = list(tmp_path.iterdir())
        entry.write_bytes(entry.read_bytes()[:40])
        assert store.load(tables.links, tables.num_tiles, tables.grid) is None


class TestEngineIntegration:
    def test_store_hit_turns_sibling_miss_into_repair(self, tmp_path):
        """A second engine (another process in real runs) repairs from the
        store-loaded parent instead of cold-building the child."""
        store = RouteStore(tmp_path)
        parent = random_design(PLATFORM, 5)
        first = RoutingEngine(PLATFORM.grid, store=store)
        first.tables(parent)
        # Fresh builds are auto-saved to an attached store; a later explicit
        # share is a no-op on the already-persisted entry.
        assert first.store_saves == 1
        assert first.share_to_store(parent.links) is False

        from repro.noc.moves import MoveGenerator

        rng = np.random.default_rng(8)
        moves = MoveGenerator(PLATFORM)
        child = None
        while child is None:
            child = moves.rewire_link(parent, rng)

        second = RoutingEngine(PLATFORM.grid, store=store)
        repaired = second.tables(child)
        assert second.store_hits == 1
        assert second.incremental_repairs == 1
        fresh = RoutingTables(child, PLATFORM.grid)
        assert repaired.pair_hops().tobytes() == fresh.pair_hops().tobytes()
        assert np.array_equal(repaired._predecessors, fresh._predecessors)

    def test_stats_expose_store_counters_only_when_attached(self, tmp_path):
        bare = RoutingEngine(PLATFORM.grid)
        assert "store_hits" not in bare.stats()
        stored = RoutingEngine(PLATFORM.grid, store=RouteStore(tmp_path))
        stats = stored.stats()
        assert stats["store_hits"] == 0 and stats["store_saves"] == 0
