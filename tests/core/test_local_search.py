"""Tests for MOELA's Eq.-8 local search."""

import numpy as np
import pytest

from repro.core.local_search import MoelaLocalSearch
from repro.moo.scalarization import weighted_distance
from tests.moo.toyproblem import GridAnchorProblem


class TestMoelaLocalSearch:
    def _search(self, problem, start, weight, steps=30, neighbors=4, rng=0):
        start_obj = problem.evaluate(start)
        reference = np.zeros(problem.num_objectives)
        searcher = MoelaLocalSearch(problem, max_steps=steps, neighbors_per_step=neighbors, patience=5)
        return searcher.search(start, start_obj, np.asarray(weight), reference, rng=np.random.default_rng(rng))

    def test_improves_weighted_distance(self):
        problem = GridAnchorProblem(2)
        outcome = self._search(problem, (10, 10), [1.0, 0.0])
        assert outcome.value <= weighted_distance(
            problem.evaluate((10, 10)), np.array([1.0, 0.0]), np.zeros(2)
        )
        assert outcome.improvement >= 0

    def test_weight_direction_steers_the_search(self):
        problem = GridAnchorProblem(2)
        toward_first = self._search(problem, (5, 5), [1.0, 0.0], steps=60, neighbors=6)
        toward_second = self._search(problem, (5, 5), [0.0, 1.0], steps=60, neighbors=6)
        # Anchor 0 is (0,0) and anchor 1 is (10,10): each search should end
        # closer to its weighted anchor.
        assert toward_first.objectives[0] < toward_second.objectives[0]
        assert toward_second.objectives[1] < toward_first.objectives[1]

    def test_training_samples_cover_trajectory_with_final_outcome(self):
        problem = GridAnchorProblem(2)
        outcome = self._search(problem, (8, 8), [0.5, 0.5], steps=5, neighbors=2)
        assert len(outcome.samples) == outcome.evaluations + 1
        outcomes = {sample.outcome for sample in outcome.samples}
        assert outcomes == {outcome.value}
        for sample in outcome.samples:
            assert np.allclose(sample.weight, [0.5, 0.5])
            assert sample.features.shape == (4,)

    def test_scale_parameter_changes_objective_trade_off(self):
        problem = GridAnchorProblem(2)
        start = (5, 5)
        start_obj = problem.evaluate(start)
        searcher = MoelaLocalSearch(problem, max_steps=40, neighbors_per_step=4)
        reference = np.zeros(2)
        unscaled = searcher.search(start, start_obj, np.array([0.5, 0.5]), reference,
                                   rng=np.random.default_rng(0))
        scaled = searcher.search(start, start_obj, np.array([0.5, 0.5]), reference,
                                 scale=np.array([1.0, 100.0]), rng=np.random.default_rng(0))
        # Heavily down-weighting the second objective should let the search end
        # with a first objective at least as good as the unscaled search.
        assert scaled.objectives[0] <= unscaled.objectives[0] + 1e-9

    def test_counts_evaluations_through_custom_callable(self):
        problem = GridAnchorProblem(2)
        count = {"n": 0}

        def counting(design):
            count["n"] += 1
            return problem.evaluate(design)

        searcher = MoelaLocalSearch(problem, max_steps=4, neighbors_per_step=2)
        outcome = searcher.search((5, 5), problem.evaluate((5, 5)), np.array([0.5, 0.5]),
                                  np.zeros(2), rng=np.random.default_rng(1), evaluate=counting)
        assert count["n"] == outcome.evaluations

    def test_invalid_parameters(self):
        problem = GridAnchorProblem(2)
        with pytest.raises(ValueError):
            MoelaLocalSearch(problem, max_steps=0)
        with pytest.raises(ValueError):
            MoelaLocalSearch(problem, neighbors_per_step=0)
