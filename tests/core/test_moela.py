"""Tests for the MOELA optimiser (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import MOELAConfig
from repro.core.moela import MOELA
from repro.moo.termination import Budget
from tests.moo.toyproblem import GridAnchorProblem


def _smoke_config(**overrides):
    base = dict(
        population_size=8,
        generations=50,
        iter_early=1,
        n_local=2,
        delta=0.9,
        neighborhood_size=4,
        local_search_steps=4,
        local_search_neighbors=2,
        max_training_samples=300,
        forest_size=5,
        forest_depth=5,
        seed=0,
    )
    base.update(overrides)
    return MOELAConfig(**base)


class TestMOELAOnToyProblem:
    def test_run_produces_population_and_history(self):
        problem = GridAnchorProblem(2)
        result = MOELA(problem, _smoke_config(), rng=0).run(Budget.iterations(5))
        assert result.algorithm == "MOELA"
        assert len(result.designs) == 8
        assert result.objectives.shape == (8, 2)
        assert len(result.history) == 6

    def test_hypervolume_improves_over_random_init(self):
        problem = GridAnchorProblem(2)
        result = MOELA(problem, _smoke_config(), rng=1).run(Budget.iterations(12))
        reference = np.array([250.0, 250.0])
        history = result.hypervolume_history(reference)
        assert history[-1] > history[0]

    def test_training_set_grows_and_eval_model_trains(self):
        problem = GridAnchorProblem(2)
        optimizer = MOELA(problem, _smoke_config(), rng=2)
        result = optimizer.run(Budget.iterations(5))
        assert len(optimizer.training_set) > 0
        assert optimizer.eval_model.is_trained
        assert result.metadata["eval_trained"]
        assert result.metadata["training_samples"] == len(optimizer.training_set)

    def test_training_set_respects_cap(self):
        problem = GridAnchorProblem(2)
        optimizer = MOELA(problem, _smoke_config(max_training_samples=20), rng=3)
        optimizer.run(Budget.iterations(6))
        assert len(optimizer.training_set) <= 20

    def test_reference_point_is_population_ideal_or_better(self):
        problem = GridAnchorProblem(2)
        optimizer = MOELA(problem, _smoke_config(), rng=4)
        optimizer.run(Budget.iterations(4))
        assert np.all(optimizer.reference <= optimizer.objectives.min(axis=0) + 1e-9)

    def test_respects_evaluation_budget(self):
        problem = GridAnchorProblem(2)
        optimizer = MOELA(problem, _smoke_config(), rng=5)
        optimizer.run(Budget.evaluations(60))
        # Initial population + at most one in-flight local-search step overshoot.
        assert problem.eval_count <= 60 + 8 + 4

    def test_three_objective_run(self):
        problem = GridAnchorProblem(3)
        result = MOELA(problem, _smoke_config(), rng=6).run(Budget.iterations(4))
        assert result.objectives.shape[1] == 3

    def test_reproducible_with_seed(self):
        a = MOELA(GridAnchorProblem(2), _smoke_config(), rng=7).run(Budget.iterations(4))
        b = MOELA(GridAnchorProblem(2), _smoke_config(), rng=7).run(Budget.iterations(4))
        assert np.allclose(a.objectives, b.objectives)

    def test_default_config_used_when_none_given(self):
        optimizer = MOELA(GridAnchorProblem(2))
        assert optimizer.config.population_size == MOELAConfig().population_size

    def test_feature_cache_evicts_lru_not_everything(self):
        problem = GridAnchorProblem(2)
        optimizer = MOELA(problem, _smoke_config(), rng=0)
        cap = 4 * optimizer.config.population_size
        hot = (0, 0)
        hot_features = optimizer._features(hot)
        # Flood the cache past its bound while keeping the hot entry live.
        for x in range(cap + 10):
            optimizer._features((x % (problem.size + 1), x // (problem.size + 1)))
            optimizer._features(hot)
        assert len(optimizer._feature_cache) <= cap
        # The recently-touched entry survived the overflow (no wholesale flush).
        assert optimizer._features(hot) is hot_features


class TestMOELAOnNocProblem:
    def test_short_run_on_tiny_platform(self, tiny_problem):
        config = MOELAConfig.smoke()
        result = MOELA(tiny_problem, config, rng=0).run(Budget.evaluations(120))
        assert result.objectives.shape[1] == 3
        assert np.all(result.objectives >= 0)
        assert len(result.pareto_front()) >= 1
        # All returned designs satisfy the Section III constraints.
        for design in result.designs:
            assert tiny_problem.is_feasible(design)
