"""Tests for the Eval model and the MLguide starting-point selection (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.ml_guide import EvalModel, MLGuide, TrainingSample


def _make_samples(count: int, rng: np.random.Generator) -> list[TrainingSample]:
    samples = []
    for _ in range(count):
        features = rng.uniform(size=4)
        weight = rng.dirichlet(np.ones(3))
        # The outcome depends linearly on the first feature so the model can learn it.
        outcome = 5.0 * features[0] + 0.5 * weight[0]
        samples.append(TrainingSample(features=features, weight=weight, outcome=outcome))
    return samples


class TestTrainingSample:
    def test_row_concatenates_features_and_weight(self):
        sample = TrainingSample(np.array([1.0, 2.0]), np.array([0.3, 0.7]), outcome=4.2)
        assert np.allclose(sample.row(), [1.0, 2.0, 0.3, 0.7])


class TestEvalModel:
    def test_untrained_until_enough_samples(self):
        model = EvalModel(rng=0)
        assert not model.is_trained
        model.train(_make_samples(2, np.random.default_rng(0)))
        assert not model.is_trained
        model.train(_make_samples(50, np.random.default_rng(0)))
        assert model.is_trained

    def test_predictions_track_targets(self):
        rng = np.random.default_rng(1)
        samples = _make_samples(200, rng)
        model = EvalModel(n_estimators=20, max_depth=8, rng=0)
        model.train(samples)
        low = model.predict(np.array([0.05, 0.5, 0.5, 0.5]), np.array([0.3, 0.3, 0.4]))
        high = model.predict(np.array([0.95, 0.5, 0.5, 0.5]), np.array([0.3, 0.3, 0.4]))
        assert low < high

    def test_predict_before_training_raises(self):
        with pytest.raises(RuntimeError):
            EvalModel(rng=0).predict(np.zeros(4), np.zeros(3))

    def test_predict_many_shape(self):
        rng = np.random.default_rng(2)
        model = EvalModel(rng=0)
        model.train(_make_samples(60, rng))
        features = rng.uniform(size=(5, 4))
        weights = rng.dirichlet(np.ones(3), size=5)
        assert model.predict_many(features, weights).shape == (5,)


class TestMLGuide:
    def test_untrained_guide_selects_randomly_but_valid(self):
        guide = MLGuide(EvalModel(rng=0))
        features = np.random.default_rng(0).uniform(size=(10, 4))
        weights = np.random.default_rng(1).dirichlet(np.ones(3), size=10)
        chosen = guide.select(features, weights, n_local=4, rng=0)
        assert len(chosen) == 4
        assert len(set(chosen.tolist())) == 4
        assert all(0 <= int(i) < 10 for i in chosen)

    def test_trained_guide_prefers_lowest_predicted_outcome(self):
        rng = np.random.default_rng(3)
        model = EvalModel(n_estimators=20, max_depth=8, rng=0)
        model.train(_make_samples(300, rng))
        guide = MLGuide(model)
        # Population features: outcome grows with the first feature, so the
        # lowest first-feature designs should be selected.
        features = np.column_stack([
            np.linspace(0.0, 1.0, 12),
            np.full(12, 0.5),
            np.full(12, 0.5),
            np.full(12, 0.5),
        ])
        weights = np.tile(np.array([1 / 3, 1 / 3, 1 / 3]), (12, 1))
        chosen = guide.select(features, weights, n_local=3, rng=0)
        assert set(chosen.tolist()) <= set(range(6))

    def test_n_local_clamped_to_population(self):
        guide = MLGuide(EvalModel(rng=0))
        features = np.zeros((3, 4))
        weights = np.full((3, 2), 0.5)
        chosen = guide.select(features, weights, n_local=10, rng=0)
        assert len(chosen) == 3
