"""Tests for the MOELA configuration (Section V.B parameters)."""

import pytest

from repro.core.config import MOELAConfig


class TestPaperParameters:
    def test_paper_defaults_match_section_vb(self):
        config = MOELAConfig.paper()
        assert config.population_size == 50
        assert config.generations == 1000
        assert config.iter_early == 2
        assert config.delta == pytest.approx(0.9)
        assert config.max_training_samples == 10_000

    def test_default_config_is_paper_like(self):
        config = MOELAConfig()
        assert config.population_size == 50
        assert config.delta == pytest.approx(0.9)

    def test_reduced_and_smoke_are_valid_and_smaller(self):
        reduced = MOELAConfig.reduced()
        smoke = MOELAConfig.smoke()
        assert reduced.population_size < MOELAConfig.paper().population_size
        assert smoke.population_size <= reduced.population_size
        assert smoke.generations <= reduced.generations


class TestValidation:
    def test_population_too_small(self):
        with pytest.raises(ValueError):
            MOELAConfig(population_size=2)

    def test_n_local_cannot_exceed_population(self):
        with pytest.raises(ValueError):
            MOELAConfig(population_size=10, n_local=11)

    def test_delta_must_be_probability(self):
        with pytest.raises(ValueError):
            MOELAConfig(delta=1.2)

    def test_mutation_probability_must_be_probability(self):
        with pytest.raises(ValueError):
            MOELAConfig(mutation_probability=-0.1)

    def test_negative_iter_early_rejected(self):
        with pytest.raises(ValueError):
            MOELAConfig(iter_early=-1)

    def test_positive_quantities_required(self):
        with pytest.raises(ValueError):
            MOELAConfig(generations=0)
        with pytest.raises(ValueError):
            MOELAConfig(local_search_steps=0)
        with pytest.raises(ValueError):
            MOELAConfig(forest_size=0)
        with pytest.raises(ValueError):
            MOELAConfig(max_training_samples=0)

    def test_config_is_frozen(self):
        config = MOELAConfig()
        with pytest.raises(Exception):
            config.population_size = 10
