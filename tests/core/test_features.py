"""Tests for the design featuriser."""

import numpy as np
import pytest

from repro.core.features import DesignFeaturizer


class TestFeaturizer:
    def test_feature_vector_shape_and_names(self, tiny_config, tiny_workload, tiny_designs):
        featurizer = DesignFeaturizer(tiny_config, tiny_workload)
        features = featurizer.features(tiny_designs[0])
        assert features.shape == (featurizer.num_features,)
        assert len(featurizer.feature_names) == featurizer.num_features
        assert len(set(featurizer.feature_names)) == featurizer.num_features

    def test_features_are_finite(self, tiny_config, tiny_workload, tiny_designs):
        featurizer = DesignFeaturizer(tiny_config, tiny_workload)
        for design in tiny_designs:
            assert np.all(np.isfinite(featurizer.features(design)))

    def test_features_deterministic(self, tiny_config, tiny_workload, tiny_designs):
        featurizer = DesignFeaturizer(tiny_config, tiny_workload)
        a = featurizer.features(tiny_designs[0])
        b = featurizer.features(tiny_designs[0])
        assert np.allclose(a, b)

    def test_different_designs_get_different_features(self, tiny_config, tiny_workload, tiny_designs):
        featurizer = DesignFeaturizer(tiny_config, tiny_workload)
        a = featurizer.features(tiny_designs[0])
        b = featurizer.features(tiny_designs[1])
        assert not np.allclose(a, b)

    def test_link_features_match_summary(self, small_config, small_workload, small_designs):
        featurizer = DesignFeaturizer(small_config, small_workload)
        design = small_designs[0]
        features = dict(zip(featurizer.feature_names, featurizer.features(design)))
        lengths = design.link_lengths(small_config.grid)
        degrees = design.degrees()
        assert features["link_length_mean"] == pytest.approx(lengths.mean())
        assert features["link_length_max"] == pytest.approx(lengths.max())
        assert features["degree_max"] == pytest.approx(degrees.max())

    def test_distance_features_are_placement_sensitive(self, small_config, small_workload, small_designs):
        featurizer = DesignFeaturizer(small_config, small_workload)
        values = {
            round(float(featurizer.features(d)[0]), 9) for d in small_designs
        }
        assert len(values) > 1

    def test_works_on_paper_platform(self, paper_config):
        from repro.noc.constraints import random_design
        from repro.workloads.registry import get_workload

        workload = get_workload("GAU", paper_config, seed=0)
        featurizer = DesignFeaturizer(paper_config, workload)
        design = random_design(paper_config, np.random.default_rng(0))
        assert np.all(np.isfinite(featurizer.features(design)))
