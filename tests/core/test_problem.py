"""Tests for the NocDesignProblem binding."""

import numpy as np
import pytest

from repro.core.problem import NocDesignProblem
from repro.objectives.evaluator import SCENARIO_4OBJ


class TestNocDesignProblem:
    def test_name_mentions_workload_scenario_platform(self, tiny_problem):
        assert "BFS" in tiny_problem.name
        assert "3-obj" in tiny_problem.name

    def test_scenario_selection_by_int(self, tiny_workload):
        problem = NocDesignProblem(tiny_workload, scenario=4)
        assert problem.num_objectives == 4
        assert problem.objective_names == SCENARIO_4OBJ.objectives

    def test_scenario_object_accepted(self, tiny_workload):
        problem = NocDesignProblem(tiny_workload, scenario=SCENARIO_4OBJ)
        assert problem.num_objectives == 4

    def test_random_design_is_feasible(self, tiny_problem):
        design = tiny_problem.random_design(0)
        assert tiny_problem.is_feasible(design)

    def test_evaluate_returns_scenario_length_vector(self, tiny_problem, tiny_designs):
        assert tiny_problem.evaluate(tiny_designs[0]).shape == (3,)

    def test_neighbor_crossover_mutate_feasible(self, tiny_problem, tiny_designs, rng):
        neighbor = tiny_problem.neighbor(tiny_designs[0], rng)
        child = tiny_problem.crossover(tiny_designs[0], tiny_designs[1], rng)
        mutant = tiny_problem.mutate(tiny_designs[2], rng)
        for design in (neighbor, child, mutant):
            assert tiny_problem.is_feasible(design)

    def test_features_are_finite_and_fixed_length(self, tiny_problem, tiny_designs):
        features = tiny_problem.features(tiny_designs[0])
        assert features.shape == (tiny_problem.featurizer.num_features,)
        assert np.all(np.isfinite(features))

    def test_design_key_is_hashable(self, tiny_problem, tiny_designs):
        key = tiny_problem.design_key(tiny_designs[0])
        assert {key: 1}

    def test_evaluations_counter_tracks_unique_designs(self, tiny_workload, tiny_designs):
        problem = NocDesignProblem(tiny_workload, scenario=3)
        problem.evaluate(tiny_designs[0])
        problem.evaluate(tiny_designs[0])
        problem.evaluate(tiny_designs[1])
        assert problem.evaluations == 2

    def test_full_report_contains_peak_temperature(self, tiny_problem, tiny_designs):
        report = tiny_problem.full_report(tiny_designs[0])
        assert "peak_temperature" in report
        assert report["thermal"] >= 0

    def test_mutation_strength_parameter(self, tiny_workload, tiny_designs, rng):
        problem = NocDesignProblem(tiny_workload, scenario=3, mutation_strength=3)
        mutated = problem.mutate(tiny_designs[0], rng)
        assert problem.is_feasible(mutated)
