"""Tests for MOELA's decomposition-based EA step."""

import numpy as np
import pytest

from repro.core.ea import DecompositionEA
from repro.moo.scalarization import tchebycheff
from repro.moo.weights import neighborhoods, uniform_weights
from tests.moo.toyproblem import GridAnchorProblem


def _setup(population_size=10, num_objectives=2, seed=0):
    problem = GridAnchorProblem(num_objectives)
    rng = np.random.default_rng(seed)
    weights = uniform_weights(num_objectives, population_size, rng)
    neighbor_index = neighborhoods(weights, 4)
    designs = [problem.random_design(rng) for _ in range(population_size)]
    objectives = np.array([problem.evaluate(d) for d in designs])
    ea = DecompositionEA(problem, weights, neighbor_index, delta=0.9, replacement_limit=2)
    return problem, ea, designs, objectives, rng


class TestDecompositionEA:
    def test_evolve_improves_scalarised_fitness(self):
        problem, ea, designs, objectives, rng = _setup()
        reference = objectives.min(axis=0)
        before = [
            tchebycheff(objectives[i], ea.weights[i], reference) for i in range(len(designs))
        ]
        new_reference = ea.evolve(designs, objectives, reference, rng=rng)
        after = [
            tchebycheff(objectives[i], ea.weights[i], new_reference) for i in range(len(designs))
        ]
        assert sum(after) <= sum(before) + 1e-9

    def test_reference_point_never_worsens(self):
        problem, ea, designs, objectives, rng = _setup(seed=1)
        reference = objectives.min(axis=0)
        new_reference = ea.evolve(designs, objectives, reference, rng=rng)
        assert np.all(new_reference <= reference + 1e-12)

    def test_population_size_is_preserved(self):
        problem, ea, designs, objectives, rng = _setup(seed=2)
        reference = objectives.min(axis=0)
        ea.evolve(designs, objectives, reference, rng=rng)
        assert len(designs) == 10
        assert objectives.shape == (10, 2)

    def test_should_stop_aborts_early(self):
        problem, ea, designs, objectives, rng = _setup(seed=3)
        reference = objectives.min(axis=0)
        evaluations_before = problem.eval_count
        ea.evolve(designs, objectives, reference, rng=rng, should_stop=lambda: True)
        assert problem.eval_count == evaluations_before

    def test_custom_evaluate_callable_counts(self):
        problem, ea, designs, objectives, rng = _setup(seed=4)
        reference = objectives.min(axis=0)
        calls = {"n": 0}

        def counting(design):
            calls["n"] += 1
            return problem.evaluate(design)

        ea.evolve(designs, objectives, reference, rng=rng, evaluate=counting)
        assert calls["n"] == len(designs)

    def test_invalid_parameters(self):
        problem = GridAnchorProblem(2)
        weights = uniform_weights(2, 6, 0)
        index = neighborhoods(weights, 3)
        with pytest.raises(ValueError):
            DecompositionEA(problem, weights, index, delta=1.5)
        with pytest.raises(ValueError):
            DecompositionEA(problem, weights, index, replacement_limit=0)
        with pytest.raises(ValueError):
            DecompositionEA(problem, weights, index, mutation_probability=2.0)
