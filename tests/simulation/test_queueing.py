"""Tests for the queueing primitives."""

import numpy as np
import pytest

from repro.simulation.queueing import MAX_UTILIZATION, mm1_waiting_time, normalize_injection


class TestMM1:
    def test_zero_load_zero_wait(self):
        assert mm1_waiting_time(0.0) == 0.0

    def test_half_load_waits_one_service_time(self):
        assert mm1_waiting_time(0.5) == pytest.approx(1.0)

    def test_wait_is_monotone_in_load(self):
        loads = np.linspace(0.0, 0.95, 20)
        waits = mm1_waiting_time(loads)
        assert np.all(np.diff(waits) > 0)

    def test_saturated_load_is_clamped(self):
        assert mm1_waiting_time(5.0) == pytest.approx(
            MAX_UTILIZATION / (1.0 - MAX_UTILIZATION)
        )

    def test_array_input_returns_array(self):
        waits = mm1_waiting_time(np.array([0.1, 0.2]))
        assert isinstance(waits, np.ndarray)
        assert waits.shape == (2,)

    def test_invalid_clamp_rejected(self):
        with pytest.raises(ValueError):
            mm1_waiting_time(0.5, max_utilization=1.0)


class TestNormalizeInjection:
    def test_scaling(self):
        loads = np.array([50.0, 100.0])
        assert np.allclose(normalize_injection(loads, 200.0), [0.25, 0.5])

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            normalize_injection(np.array([1.0]), 0.0)
