"""Tests for the queueing-based NoC performance/energy simulator."""

import numpy as np
import pytest

from repro.noc.mesh import mesh_design
from repro.simulation.simulator import NocSimulator


class TestSimulator:
    def test_result_fields_are_consistent(self, tiny_workload, tiny_designs):
        simulator = NocSimulator(tiny_workload)
        result = simulator.simulate(tiny_designs[0])
        assert result.execution_time_ms > 0
        assert result.average_packet_latency_cycles > 0
        assert result.total_energy_mj == pytest.approx(
            result.network_energy_mj + result.pe_energy_mj
        )
        assert result.edp == pytest.approx(result.total_energy_mj * result.execution_time_ms)
        assert result.peak_temperature > 0

    def test_as_dict_round_trip(self, tiny_workload, tiny_designs):
        result = NocSimulator(tiny_workload).simulate(tiny_designs[0])
        payload = result.as_dict()
        assert payload["edp"] == pytest.approx(result.edp)
        assert set(payload) >= {"execution_time_ms", "total_energy_mj", "edp"}

    def test_edp_helper_matches_simulate(self, tiny_workload, tiny_designs):
        simulator = NocSimulator(tiny_workload)
        assert simulator.edp(tiny_designs[0]) == pytest.approx(
            simulator.simulate(tiny_designs[0]).edp
        )

    def test_latency_increases_with_traffic(self, tiny_workload, tiny_designs):
        design = tiny_designs[0]
        light = NocSimulator(tiny_workload)
        heavy = NocSimulator(tiny_workload.scaled(5.0))
        assert heavy.average_packet_latency(design) > light.average_packet_latency(design)

    def test_execution_time_increases_with_contention(self, tiny_workload, tiny_designs):
        design = tiny_designs[0]
        light = NocSimulator(tiny_workload)
        heavy = NocSimulator(tiny_workload.scaled(5.0))
        assert heavy.execution_time_ms(design) > light.execution_time_ms(design)

    def test_insensitive_platform_ignores_network(self, tiny_workload, tiny_designs):
        design = tiny_designs[0]
        insensitive = NocSimulator(tiny_workload, network_sensitivity=0.0)
        base_cycles = tiny_workload.compute_cycles * 1_000.0
        expected_ms = base_cycles / (tiny_workload.config.cpu_frequency_ghz * 1e9) * 1e3
        assert insensitive.execution_time_ms(design) == pytest.approx(expected_ms)

    def test_different_designs_get_different_edp(self, tiny_workload, tiny_designs):
        simulator = NocSimulator(tiny_workload)
        edps = {round(simulator.edp(d), 9) for d in tiny_designs}
        assert len(edps) > 1

    def test_invalid_parameters_rejected(self, tiny_workload):
        with pytest.raises(ValueError):
            NocSimulator(tiny_workload, link_capacity_flits_per_kcycle=0.0)
        with pytest.raises(ValueError):
            NocSimulator(tiny_workload, network_sensitivity=1.5)

    def test_mesh_design_simulates_on_small_platform(self, small_workload, small_config):
        simulator = NocSimulator(small_workload)
        result = simulator.simulate(mesh_design(small_config))
        assert result.edp > 0
