"""Tests for the standard scaler."""

import numpy as np
import pytest

from repro.ml.scaler import StandardScaler


class TestScaler:
    def test_transform_standardises(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        transformed = StandardScaler().fit_transform(X)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(transformed.std(axis=0), 1.0, atol=1e-9)

    def test_inverse_transform_round_trip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3)) * 7 + 2
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_feature_not_scaled(self):
        X = np.column_stack([np.full(10, 3.0), np.arange(10, dtype=float)])
        transformed = StandardScaler().fit_transform(X)
        assert np.allclose(transformed[:, 0], 0.0)

    def test_single_row_transform(self):
        X = np.arange(20, dtype=float).reshape(10, 2)
        scaler = StandardScaler().fit(X)
        row = scaler.transform(X[0])
        assert row.shape == (2,)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros((0, 2)))

    def test_non_2d_fit_rejected(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.zeros(5))
