"""Tests for the CART regression tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeRegressor


class TestFitting:
    def test_fits_piecewise_constant_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(200, 1))
        y = np.where(X[:, 0] < 0.5, 1.0, 3.0)
        tree = DecisionTreeRegressor(max_depth=3, rng=0).fit(X, y)
        predictions = tree.predict(np.array([[0.1], [0.9]]))
        assert predictions[0] == pytest.approx(1.0)
        assert predictions[1] == pytest.approx(3.0)

    def test_perfectly_fits_training_data_with_enough_depth(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(60, 3))
        y = 2.0 * X[:, 0] - X[:, 1]
        tree = DecisionTreeRegressor(max_depth=20, min_samples_split=2, min_samples_leaf=1, rng=0)
        tree.fit(X, y)
        mse = float(((tree.predict(X) - y) ** 2).mean())
        assert mse < 0.01

    def test_constant_target_yields_single_leaf(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.full(20, 7.0)
        tree = DecisionTreeRegressor(rng=0).fit(X, y)
        assert tree.num_nodes == 1
        assert np.allclose(tree.predict(X), 7.0)

    def test_max_depth_limits_tree(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(200, 2))
        y = np.sin(6 * X[:, 0]) + X[:, 1]
        shallow = DecisionTreeRegressor(max_depth=2, rng=0).fit(X, y)
        assert shallow.depth <= 2

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, size=(50, 1))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=10, rng=0).fit(X, y)
        # With a 10-sample minimum per leaf, no more than 5 leaves are possible.
        leaves = sum(1 for node in tree._nodes if node.is_leaf)
        assert leaves <= 5

    def test_predictions_bounded_by_target_range(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(0, 1, size=(100, 2))
        y = rng.uniform(5.0, 9.0, size=100)
        tree = DecisionTreeRegressor(rng=0).fit(X, y)
        predictions = tree.predict(X)
        assert predictions.min() >= 5.0 - 1e-9
        assert predictions.max() <= 9.0 + 1e-9


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_one_dimensional_x_rejected(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_feature_count_mismatch_on_predict(self):
        tree = DecisionTreeRegressor(rng=0).fit(np.zeros((10, 2)), np.zeros(10))
        with pytest.raises(ValueError):
            tree.predict(np.zeros((1, 3)))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    def test_single_row_prediction_accepts_1d_input(self):
        tree = DecisionTreeRegressor(rng=0).fit(np.arange(10, dtype=float).reshape(-1, 1), np.arange(10, dtype=float))
        assert tree.predict(np.array([3.0])).shape == (1,)
