"""Tests for train/test splitting."""

import numpy as np
import pytest

from repro.ml.split import train_test_split


class TestSplit:
    def test_sizes(self):
        X = np.arange(40).reshape(20, 2)
        y = np.arange(20)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_fraction=0.25, rng=0)
        assert len(X_test) == 5
        assert len(X_train) == 15
        assert len(X_train) == len(y_train)
        assert len(X_test) == len(y_test)

    def test_partition_is_complete_and_disjoint(self):
        X = np.arange(30).reshape(30, 1)
        y = np.arange(30)
        X_train, X_test, y_train, y_test = train_test_split(X, y, rng=1)
        combined = sorted(np.concatenate([y_train, y_test]).tolist())
        assert combined == list(range(30))

    def test_rows_stay_aligned(self):
        X = np.arange(30).reshape(30, 1)
        y = 2 * np.arange(30)
        X_train, X_test, y_train, y_test = train_test_split(X, y, rng=2)
        assert np.all(y_train == 2 * X_train[:, 0])
        assert np.all(y_test == 2 * X_test[:, 0])

    def test_at_least_one_sample_each_side(self):
        X = np.arange(4).reshape(2, 2)
        y = np.arange(2)
        X_train, X_test, _, _ = train_test_split(X, y, test_fraction=0.01, rng=0)
        assert len(X_test) >= 1 and len(X_train) >= 1

    def test_reproducible_with_seed(self):
        X = np.arange(20).reshape(20, 1)
        y = np.arange(20)
        a = train_test_split(X, y, rng=7)
        b = train_test_split(X, y, rng=7)
        assert np.array_equal(a[0], b[0])

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.0)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((1, 1)), np.zeros(1))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((3, 1)), np.zeros(4))
