"""Tests for the regression metrics."""

import numpy as np
import pytest

from repro.ml.metrics import mean_absolute_error, mean_squared_error, r2_score


class TestMetrics:
    def test_mse_known_value(self):
        assert mean_squared_error([1.0, 2.0, 3.0], [1.0, 2.0, 5.0]) == pytest.approx(4.0 / 3.0)

    def test_mae_known_value(self):
        assert mean_absolute_error([1.0, 2.0, 3.0], [2.0, 2.0, 1.0]) == pytest.approx(1.0)

    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_squared_error(y, y) == 0.0
        assert mean_absolute_error(y, y) == 0.0
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_predictor_has_zero_r2(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        predictions = np.full(4, y.mean())
        assert r2_score(y, predictions) == pytest.approx(0.0)

    def test_r2_can_be_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, [3.0, 3.0, 0.0]) < 0

    def test_constant_target_r2(self):
        y = np.full(5, 2.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1.0) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mean_squared_error([1.0, 2.0], [1.0])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_error([], [])
