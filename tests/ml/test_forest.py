"""Tests for the random-forest regressor."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestRegressor
from repro.ml.metrics import r2_score


class TestForest:
    def test_learns_smooth_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(300, 4))
        y = 3.0 * X[:, 0] + X[:, 1] ** 2 - 2.0 * X[:, 2]
        forest = RandomForestRegressor(n_estimators=25, max_depth=10, rng=0).fit(X, y)
        score = r2_score(y, forest.predict(X))
        assert score > 0.8

    def test_prediction_shape(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(50, 3))
        y = X.sum(axis=1)
        forest = RandomForestRegressor(n_estimators=5, rng=0).fit(X, y)
        assert forest.predict(X).shape == (50,)
        assert forest.predict(X[0]).shape == (1,)

    def test_reproducible_with_seed(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(80, 3))
        y = X[:, 0] - X[:, 1]
        a = RandomForestRegressor(n_estimators=8, rng=42).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=8, rng=42).fit(X, y).predict(X)
        assert np.allclose(a, b)

    def test_without_bootstrap_uses_full_data(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(60, 2))
        y = 5.0 * X[:, 0]
        forest = RandomForestRegressor(n_estimators=4, bootstrap=False, max_features=None, rng=0)
        forest.fit(X, y)
        assert r2_score(y, forest.predict(X)) > 0.9

    def test_ensemble_averages_trees(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(size=(40, 2))
        y = X[:, 0]
        forest = RandomForestRegressor(n_estimators=3, rng=0).fit(X, y)
        manual = np.mean([tree.predict(X) for tree in forest.trees_], axis=0)
        assert np.allclose(manual, forest.predict(X))

    def test_is_fitted_flag(self):
        forest = RandomForestRegressor(n_estimators=2, rng=0)
        assert not forest.is_fitted
        forest.fit(np.zeros((10, 2)), np.zeros(10))
        assert forest.is_fitted


class TestValidation:
    def test_invalid_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=2).fit(np.zeros((3, 2)), np.zeros(4))

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=2).fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor(n_estimators=2).predict(np.zeros((1, 2)))
