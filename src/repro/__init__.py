"""MOELA reproduction: multi-objective evolutionary/learning DSE for 3D heterogeneous manycore platforms.

This package reproduces the system described in "MOELA: A Multi-Objective
Evolutionary/Learning Design Space Exploration Framework for 3D Heterogeneous
Manycore Platforms" (DATE 2023).  It contains:

* ``repro.noc`` — the 3D NoC platform model (tiles, links, designs,
  constraints, routing, mesh references, move operators).
* ``repro.workloads`` — synthetic Rodinia-like traffic and power generators
  that stand in for the paper's gem5-GPU/McPAT/GPUWattch toolchain.
* ``repro.objectives`` — the five cost models of Section III (traffic mean,
  traffic variance, CPU-LLC latency, NoC energy, thermal).
* ``repro.simulation`` — a queueing-theoretic NoC performance/energy simulator
  used to compute EDP for final designs (Fig. 3 substitute).
* ``repro.ml`` — regression trees / random forests / scalers used by the
  learned evaluation functions (scikit-learn substitute).
* ``repro.moo`` — multi-objective optimisation substrate (dominance,
  hypervolume, weight vectors, scalarisation) and baseline optimisers
  (MOEA/D, NSGA-II, MOOS, MOO-STAGE).
* ``repro.core`` — the MOELA framework itself (Algorithms 1 and 2).
* ``repro.experiments`` — the harness that regenerates Table I, Table II and
  Fig. 3 of the paper.
"""

from repro.core.config import MOELAConfig
from repro.core.moela import MOELA
from repro.core.problem import NocDesignProblem
from repro.noc.platform import PlatformConfig
from repro.workloads.registry import WorkloadRegistry, get_workload

__all__ = [
    "MOELA",
    "MOELAConfig",
    "NocDesignProblem",
    "PlatformConfig",
    "WorkloadRegistry",
    "get_workload",
]

__version__ = "1.0.0"
