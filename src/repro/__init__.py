"""MOELA reproduction: multi-objective evolutionary/learning DSE for 3D heterogeneous manycore platforms.

This package reproduces the system described in "MOELA: A Multi-Objective
Evolutionary/Learning Design Space Exploration Framework for 3D Heterogeneous
Manycore Platforms" (DATE 2023).  It contains:

* ``repro.noc`` — the 3D NoC platform model (tiles, links, designs,
  constraints, routing, mesh references, move operators).
* ``repro.workloads`` — synthetic Rodinia-like traffic and power generators
  that stand in for the paper's gem5-GPU/McPAT/GPUWattch toolchain.
* ``repro.objectives`` — the five cost models of Section III (traffic mean,
  traffic variance, CPU-LLC latency, NoC energy, thermal).
* ``repro.simulation`` — a queueing-theoretic NoC performance/energy simulator
  used to compute EDP for final designs (Fig. 3 substitute).
* ``repro.ml`` — regression trees / random forests / scalers used by the
  learned evaluation functions (scikit-learn substitute).
* ``repro.moo`` — multi-objective optimisation substrate (dominance,
  hypervolume, weight vectors, scalarisation) and baseline optimisers
  (MOEA/D, NSGA-II, MOOS, MOO-STAGE).
* ``repro.core`` — the MOELA framework itself (Algorithms 1 and 2).
* ``repro.experiments`` — the harness that regenerates Table I, Table II and
  Fig. 3 of the paper.
* ``repro.study`` — the unified front door: the :class:`Study` façade, the
  optimizer registry every dispatch path resolves names through, and the
  streaming :class:`StudyEvent` progress protocol (``python -m repro`` is the
  CLI twin).

The workhorse types are re-exported here so user code never has to import
from deep modules: build a :class:`Study` (or an :class:`ExperimentConfig` /
:class:`CampaignConfig`), run it, and consume :class:`OptimizationResult`\\ s.
"""

from repro.core.config import MOELAConfig
from repro.core.moela import MOELA
from repro.core.problem import NocDesignProblem
from repro.experiments.compaction import CompactionSummary, compact_campaign
from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.runner import (
    CampaignExecution,
    compare_algorithms,
    run_algorithm,
    run_campaign,
    submit_campaign,
)
from repro.moo.result import OptimizationResult
from repro.moo.termination import Budget
from repro.noc.constraints import InfeasibleDesignError, ViolationReport
from repro.noc.platform import PlatformConfig
from repro.noc.repair import RepairBudget, RepairPlan, repair_design
from repro.objectives.evaluator import ObjectiveEvaluator
from repro.study.events import EventCallback, StudyEvent
from repro.study.registry import (
    OptimizerRegistry,
    OptimizerSpec,
    default_registry,
    register_optimizer,
)
from repro.study.study import Study, StudyResult
from repro.workloads.registry import WorkloadRegistry, get_workload

__all__ = [
    "Budget",
    "CampaignConfig",
    "CampaignExecution",
    "CompactionSummary",
    "EventCallback",
    "ExperimentConfig",
    "InfeasibleDesignError",
    "MOELA",
    "MOELAConfig",
    "NocDesignProblem",
    "ObjectiveEvaluator",
    "OptimizationResult",
    "OptimizerRegistry",
    "OptimizerSpec",
    "PlatformConfig",
    "RepairBudget",
    "RepairPlan",
    "Study",
    "StudyEvent",
    "StudyResult",
    "ViolationReport",
    "WorkloadRegistry",
    "compact_campaign",
    "compare_algorithms",
    "default_registry",
    "get_workload",
    "register_optimizer",
    "repair_design",
    "run_algorithm",
    "run_campaign",
    "submit_campaign",
]

__version__ = "1.1.0"
