"""Runs the optimisers on (application, scenario) problem instances.

Besides the single-run helpers (:func:`run_algorithm`,
:func:`compare_algorithms`), this module hosts the campaign engine: the full
(algorithm x application x scenario) grid fanned out over a process pool,
each cell streaming its result to one JSON shard next to a manifest so a
killed campaign resumes by running only the missing cells
(:func:`run_campaign`).

Campaigns are asynchronous and observable across processes: every cell —
pool worker or inline — appends its :class:`~repro.study.events.StudyEvent`\\ s
to a durable ``events.jsonl`` next to the manifest
(:mod:`repro.study.event_log`), a manifest-side tailer replays them into the
caller's subscribers, and :func:`submit_campaign` returns a non-blocking
:class:`CampaignExecution` handle (``.events()`` / ``.progress()`` /
``.wait()``).  :func:`run_campaign` is simply ``submit + wait``.

Finished shard directories can be bounded with
:func:`repro.experiments.compaction.compact_campaign`: completed shards roll
into a single indexed ``rollup.jsonl`` recorded in the manifest, and every
reader here (:func:`load_campaign_results`, :func:`campaign_status`, resume)
reads rollup-or-shards transparently.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.core.problem import NocDesignProblem
from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.moo.result import OptimizationResult
from repro.moo.termination import Budget
from repro.noc.repair import RepairBudget
from repro.noc.routing_engine import RoutingEngine, RoutingEnginePool
from repro.study.event_log import EVENT_LOG_NAME, EventLogReader, EventLogWriter
from repro.study.events import EventCallback, StudyEvent
from repro.study.optimizers import BUILTIN_ALGORITHMS
from repro.study.registry import default_registry
from repro.utils.serialization import result_from_dict, result_to_dict, write_json_atomic
from repro.workloads.registry import get_workload

#: Canonical names of the built-in algorithms.  :func:`run_algorithm` accepts
#: anything registered with the :class:`~repro.study.registry.OptimizerRegistry`
#: (including third-party registrations), under any alias spelling.
ALGORITHMS: tuple[str, ...] = BUILTIN_ALGORITHMS

#: File name of the campaign manifest inside a campaign output directory.
MANIFEST_NAME = "manifest.json"

#: Format tag written into every manifest (bump on incompatible changes).
MANIFEST_FORMAT = "repro-campaign/1"

#: File name of the shard rollup written by ``compact_campaign`` (one compact
#: JSON line per compacted cell; the byte-range index lives in the manifest's
#: ``rollup`` record so single cells are read with one seek, never a full
#: parse of the rollup).
ROLLUP_NAME = "rollup.jsonl"

#: Format tag of the manifest's ``rollup`` record.
ROLLUP_FORMAT = "repro-campaign-rollup/1"


def make_problem(
    experiment: ExperimentConfig,
    application: str,
    num_objectives: int,
    routing_cache: bool = True,
    scenario_model: str = "identity",
    scenario_seed: int = 0,
    routing_engine: "RoutingEngine | None" = None,
    route_store_path: "str | None" = None,
) -> NocDesignProblem:
    """Build the NoC design problem for one application and objective scenario.

    ``scenario_model`` optionally degrades the evaluation landscape (see
    :mod:`repro.scenarios`); ``scenario_seed`` seeds its deterministic
    streams (campaign cells pass their derived cell seed).
    ``routing_engine`` shares an externally-owned route cache with other
    problems (campaign cells on the same platform); ``route_store_path``
    points the evaluator at a disk-backed warm-start store spanning
    processes.  Both only affect speed and cache counters, never a route.
    """
    workload = get_workload(application, experiment.platform, seed=experiment.seed)
    return NocDesignProblem(
        workload,
        scenario=num_objectives,
        routing_cache=routing_cache,
        scenario_model=scenario_model,
        scenario_seed=scenario_seed,
        routing_engine=routing_engine,
        route_store_path=route_store_path,
    )


def _derived_seed(
    experiment: ExperimentConfig,
    algorithm: str,
    application: str,
    num_objectives: int,
    scenario: str = "identity",
) -> int:
    """Deterministic per-(algorithm, application, scenario) seed.

    Derived by hashing the cell identity together with the base seed, so every
    cell of a campaign grid gets a unique, reproducible stream (the previous
    weighted character sum could collide between cells, which would correlate
    searches that the paper's protocol treats as independent).  The identity
    scenario model is excluded from the hash string, so identity cells keep
    the exact seeds of pre-scenario campaigns (bit-identical shards, and old
    output directories stay resumable).
    """
    identity = f"{experiment.seed}|{algorithm}|{application}|{num_objectives}"
    if scenario != "identity":
        identity = f"{identity}|{scenario}"
    digest = hashlib.sha256(identity.encode()).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def run_algorithm(
    algorithm: str,
    problem: NocDesignProblem,
    experiment: ExperimentConfig,
    budget: Budget | None = None,
    seed: int | None = None,
    options: Mapping[str, Any] | None = None,
    on_event: EventCallback | None = None,
    repair_infeasible: bool = False,
    repair_budget: "RepairBudget | None" = None,
) -> OptimizationResult:
    """Run one algorithm on one problem instance and return its result.

    The algorithm name (any spelling the
    :class:`~repro.study.registry.OptimizerRegistry` accepts) is resolved to
    its registered spec, which owns the experiment-to-constructor wiring.
    ``options`` are hyper-parameter overrides validated against the spec's
    declared schema; ``on_event`` subscribes the run to streaming
    :class:`~repro.study.events.StudyEvent` progress (observation-only — a
    subscribed run is bit-identical to a silent one).

    ``repair_infeasible`` enables the opt-in directed feasibility repair
    path (:mod:`repro.noc.repair`): infeasible brood members are repaired
    before scoring instead of discarded, each walk seeded from the run seed
    so results replay deterministically; ``repair_budget`` bounds every walk.
    Like ``on_event``, repair is wired post-construction — off (the default)
    leaves seeded runs bit-identical to pre-repair behaviour.
    """
    spec = default_registry().spec(algorithm)
    budget = budget if budget is not None else spec.budget_for(experiment)
    if seed is None:
        seed = _derived_seed(experiment, spec.name, problem.workload.name, problem.num_objectives)
    optimizer = spec.create(problem, experiment, seed, **dict(options or {}))
    if repair_infeasible:
        optimizer.repair_infeasible = True
        optimizer.repair_seed = seed
        if repair_budget is not None:
            optimizer.repair_budget = repair_budget
    if on_event is not None:
        optimizer.on_event = on_event
        optimizer.event_context = {
            "algorithm": spec.name,
            "application": problem.workload.name,
            "num_objectives": problem.num_objectives,
        }
    return optimizer.run(budget)


def compare_algorithms(
    algorithms: list[str],
    experiment: ExperimentConfig,
    application: str,
    num_objectives: int,
    budget: Budget | None = None,
    on_event: EventCallback | None = None,
) -> dict[str, OptimizationResult]:
    """Run several algorithms on the same problem instance with matched budgets.

    Results are keyed by canonical algorithm name (aliases fold together).
    """
    registry = default_registry()
    problem = make_problem(experiment, application, num_objectives)
    results: dict[str, OptimizationResult] = {}
    for algorithm in algorithms:
        results[registry.canonical(algorithm)] = run_algorithm(
            algorithm, problem, experiment, budget=budget, on_event=on_event
        )
    return results


# ---------------------------------------------------------------------- #
# Campaign engine
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignCell:
    """One (algorithm, application, objective scenario, fault scenario) cell.

    ``scenario`` is a canonical scenario-model key (:mod:`repro.scenarios`).
    The default ``"identity"`` serialises, keys and hashes exactly like the
    pre-scenario cell format — identity campaigns produce byte-identical
    manifests and shards and resume from pre-scenario output directories.
    """

    algorithm: str
    application: str
    num_objectives: int
    seed: int
    scenario: str = "identity"

    @property
    def key(self) -> str:
        """Filesystem-safe cell identifier, e.g. ``MOEA-D_BFS_3obj``.

        Non-identity cells append a slug of the scenario key, e.g.
        ``MOEA-D_BFS_3obj_link_failure-k-1-mode-remove-derate_factor-0.5``.
        """
        algorithm = re.sub(r"[^A-Za-z0-9.-]+", "-", self.algorithm)
        base = f"{algorithm}_{self.application}_{self.num_objectives}obj"
        if self.scenario != "identity":
            scenario = re.sub(r"[^A-Za-z0-9._-]+", "-", self.scenario).strip("-")
            return f"{base}_{scenario}"
        return base

    @property
    def shard_name(self) -> str:
        """File name of the cell's result shard."""
        return f"cell_{self.key}.json"

    def to_dict(self) -> dict[str, Any]:
        """JSON representation used in the manifest and shard headers.

        The ``scenario`` field is only present for non-identity cells, so
        identity payloads stay byte-identical to the pre-scenario format
        (shard identity matching in :func:`cell_payload` compares these
        dicts verbatim).
        """
        payload = {
            "algorithm": self.algorithm,
            "application": self.application,
            "num_objectives": self.num_objectives,
            "seed": self.seed,
            "shard": self.shard_name,
        }
        if self.scenario != "identity":
            payload["scenario"] = self.scenario
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CampaignCell":
        """Rebuild a cell from :meth:`to_dict` output."""
        return cls(
            algorithm=payload["algorithm"],
            application=payload["application"],
            num_objectives=int(payload["num_objectives"]),
            seed=int(payload["seed"]),
            scenario=str(payload.get("scenario", "identity")),
        )


@dataclass
class CampaignSummary:
    """Outcome of one :func:`run_campaign` invocation."""

    output_dir: Path
    manifest_path: Path
    cells: list[CampaignCell]
    executed: list[str]
    skipped: list[str]
    parallel_evaluation: bool
    routing_cache: "dict[str, Any] | None" = None  # aggregate engine counters (see manifest)
    repair: "dict[str, Any] | None" = None  # aggregate repair counters (repair campaigns only)

    def shard_path(self, key: str) -> Path:
        """Path of the shard for a cell key."""
        for cell in self.cells:
            if cell.key == key:
                return self.output_dir / cell.shard_name
        raise KeyError(f"unknown cell key {key!r}")


def campaign_cells(campaign: CampaignConfig) -> list[CampaignCell]:
    """The full cell grid of a campaign, with per-cell derived seeds.

    Algorithm names are canonicalised through the optimizer registry, so alias
    spellings (``"MOEAD"`` vs ``"MOEA/D"``) always map to the same cell, seed
    and shard; unknown names raise with the registry's available-names
    message.
    """
    registry = default_registry()
    algorithms = tuple(
        registry.canonical(algorithm)
        for algorithm in (tuple(campaign.algorithms) or ALGORITHMS)
    )
    experiment = campaign.experiment
    cells = [
        CampaignCell(
            algorithm=algorithm,
            application=application,
            num_objectives=num_objectives,
            seed=_derived_seed(experiment, algorithm, application, num_objectives, scenario),
            scenario=scenario,
        )
        for algorithm in algorithms
        for application in experiment.applications
        for num_objectives in experiment.objective_counts
        for scenario in experiment.scenario_models
    ]
    keys = [cell.key for cell in cells]
    if len(set(keys)) != len(keys):
        raise ValueError("campaign grid contains duplicate cells (repeated algorithm/application?)")
    return cells


def _manifest_payload(campaign: CampaignConfig, cells: list[CampaignCell]) -> dict[str, Any]:
    experiment = campaign.experiment
    return {
        "format": MANIFEST_FORMAT,
        "platform": experiment.platform.name,
        "base_seed": experiment.seed,
        "cell_budget": campaign.cell_budget,
        "population_size": experiment.population_size,
        "cells": [cell.to_dict() for cell in cells],
    }


def load_manifest(output_dir: "str | Path") -> dict[str, Any]:
    """Read a campaign manifest written by :func:`run_campaign`."""
    path = Path(output_dir) / MANIFEST_NAME
    payload = json.loads(path.read_text())
    if payload.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"{path} is not a {MANIFEST_FORMAT} manifest")
    return payload


def cell_payload(
    output_dir: "str | Path", cell: CampaignCell, rollup: "Mapping[str, Any] | None" = None
) -> "dict[str, Any] | None":
    """The cell's completed result payload, from its loose shard or the rollup.

    A loose shard wins over a rollup entry (a re-run cell writes a fresh
    shard that must supersede its compacted copy); the rollup — the
    manifest's ``rollup`` record, whose byte-range index lets one cell be
    read with a single seek — answers for every compacted cell.  Either
    source must parse *and* match the cell's identity, guarding against
    foreign files and stale entries from a differently-seeded campaign.
    Returns ``None`` for an incomplete cell.
    """
    output_dir = Path(output_dir)
    try:
        payload = json.loads((output_dir / cell.shard_name).read_text())
        if isinstance(payload, dict) and payload.get("cell") == cell.to_dict():
            return payload
    except (OSError, json.JSONDecodeError):
        pass
    if rollup:
        entry = rollup.get("cells", {}).get(cell.key)
        if entry is not None:
            try:
                offset, length = int(entry[0]), int(entry[1])
                with open(output_dir / rollup.get("file", ROLLUP_NAME), "rb") as handle:
                    handle.seek(offset)
                    payload = json.loads(handle.read(length))
                if isinstance(payload, dict) and payload.get("cell") == cell.to_dict():
                    return payload
            except (OSError, ValueError, TypeError):
                return None
    return None


def _shard_complete(
    output_dir: Path, cell: CampaignCell, rollup: "Mapping[str, Any] | None" = None
) -> bool:
    """True when the cell has a completed result (loose shard or rollup entry)."""
    return cell_payload(output_dir, cell, rollup) is not None


def aggregate_routing_cache_stats(
    output_dir: "str | Path",
    cells: list[CampaignCell],
    rollup: "Mapping[str, Any] | None" = None,
) -> dict[str, Any]:
    """Fold the per-shard routing-cache counters into one campaign summary.

    Cells whose shard predates the routing-cache format (or is missing) are
    counted in ``cells_missing_stats`` instead of silently skewing the rate.
    """
    output_dir = Path(output_dir)
    totals = {"hits": 0, "misses": 0, "incremental_repairs": 0}
    # Warm-start store counters appear in shards only when the campaign ran
    # with a store attached; the summary mirrors that (absent keys stay
    # absent, so store-less manifests keep their historical shape).
    store_totals: dict[str, int] = {}
    counted = 0
    missing = 0
    for cell in cells:
        # One parse per shard: completion check (shard parses and matches the
        # cell identity) and counter extraction share the same payload —
        # paper-scale shards are multi-MB, so re-parsing per question adds up.
        payload = cell_payload(output_dir, cell, rollup)
        if payload is None:
            continue
        stats = payload.get("routing_cache")
        if not isinstance(stats, dict):
            missing += 1
            continue
        counted += 1
        for field_name in totals:
            totals[field_name] += int(stats.get(field_name, 0))
        for field_name in ("store_hits", "store_saves"):
            if field_name in stats:
                store_totals[field_name] = store_totals.get(field_name, 0) + int(stats[field_name])
    requests = totals["hits"] + totals["misses"] + totals["incremental_repairs"]
    return {
        "cells_counted": counted,
        "cells_missing_stats": missing,
        **totals,
        **store_totals,
        "requests": requests,
        "hit_rate": totals["hits"] / requests if requests else 0.0,
    }


def aggregate_repair_stats(
    output_dir: "str | Path",
    cells: list[CampaignCell],
    rollup: "Mapping[str, Any] | None" = None,
) -> dict[str, Any]:
    """Fold the per-shard directed-repair counters into one campaign summary.

    Mirrors :func:`aggregate_routing_cache_stats`: cells whose shard is
    missing or predates the repair format land in ``cells_missing_stats``
    instead of silently skewing the totals.
    """
    output_dir = Path(output_dir)
    totals = {"attempted": 0, "repaired": 0, "evaluations": 0}
    counted = 0
    missing = 0
    for cell in cells:
        payload = cell_payload(output_dir, cell, rollup)
        if payload is None:
            continue
        stats = payload.get("repair")
        if not isinstance(stats, dict):
            missing += 1
            continue
        counted += 1
        for field_name in totals:
            totals[field_name] += int(stats.get(field_name, 0))
    return {
        "cells_counted": counted,
        "cells_missing_stats": missing,
        **totals,
        "repair_rate": totals["repaired"] / totals["attempted"] if totals["attempted"] else 0.0,
    }


def campaign_status(output_dir: "str | Path") -> dict[str, bool]:
    """Completion state of every cell recorded in a campaign manifest."""
    output_dir = Path(output_dir)
    manifest = load_manifest(output_dir)
    rollup = manifest.get("rollup")
    cells = [CampaignCell.from_dict(entry) for entry in manifest["cells"]]
    return {cell.key: _shard_complete(output_dir, cell, rollup) for cell in cells}


def load_campaign_results(output_dir: "str | Path") -> Iterator[tuple[CampaignCell, OptimizationResult]]:
    """Yield ``(cell, result)`` for every completed cell of a campaign.

    Results are loaded lazily, one cell at a time — from loose shards or the
    compacted rollup, transparently — so summarising a large campaign never
    holds more than one cell's result in memory.
    """
    output_dir = Path(output_dir)
    manifest = load_manifest(output_dir)
    rollup = manifest.get("rollup")
    for entry in manifest["cells"]:
        cell = CampaignCell.from_dict(entry)
        payload = cell_payload(output_dir, cell, rollup)
        if payload is not None:
            yield cell, result_from_dict(payload)


def _run_campaign_cell(
    campaign: CampaignConfig,
    cell: CampaignCell,
    output_dir: str,
    on_event: EventCallback | None = None,
    event_log: "str | None" = None,
    route_store_path: "str | None" = None,
    engine_pool: "RoutingEnginePool | None" = None,
) -> dict[str, Any]:
    """Run one grid cell and stream its result to the cell's shard.

    Executed inside pool workers, so it takes only picklable arguments and
    writes the (potentially large) result to disk in the worker instead of
    shipping it back to the parent.  The cell's events — ``shard_started``,
    the optimiser's ``run_started``/``iteration``/``run_finished`` stream and
    ``shard_finished`` with the routing-cache counters — go to ``on_event``
    (inline execution only; callbacks do not cross the process boundary)
    and/or the durable event log named by ``event_log`` (a file name relative
    to ``output_dir``, appended atomically — this is how pooled cells reach
    the caller's subscribers).  ``shard_finished`` is appended *after* the
    shard's atomic write, so a logged completion always refers to a readable
    shard, however the campaign dies afterwards.

    Route-cache sharing: ``engine_pool`` (inline execution only — engines
    cannot cross the process boundary) hands the cell a
    :class:`~repro.noc.routing_engine.RoutingEngine` shared with its
    siblings; ``route_store_path`` (picklable, so it *does* reach pool
    workers) warm-starts the cell's engine from a disk store.  The shard's
    ``routing_cache`` record stays per-cell either way: the evaluator
    reports counter deltas against the shared engine's state at cell start.
    """
    callbacks: list[EventCallback] = []
    writer: EventLogWriter | None = None
    if on_event is not None:
        callbacks.append(on_event)
    if event_log is not None:
        writer = EventLogWriter(Path(output_dir) / event_log, origin=f"cell-{cell.key}")
        callbacks.append(writer.append)
    if not callbacks:
        emit = None
    elif len(callbacks) == 1:
        emit = callbacks[0]
    else:
        def emit(event: StudyEvent, _callbacks=tuple(callbacks)) -> None:
            for callback in _callbacks:
                callback(event)
    experiment = campaign.experiment
    shared_engine = None
    if engine_pool is not None and campaign.routing_cache:
        shared_engine = engine_pool.engine_for(experiment.platform.grid)
    problem = make_problem(
        experiment,
        cell.application,
        cell.num_objectives,
        routing_cache=campaign.routing_cache,
        scenario_model=cell.scenario,
        scenario_seed=cell.seed,
        routing_engine=shared_engine,
        route_store_path=route_store_path if campaign.routing_cache else None,
    )
    problem.parallel_evaluation = campaign.resolve_parallel_evaluation()
    try:
        if emit is not None:
            emit(_cell_event("shard_started", cell))
        result = run_algorithm(
            cell.algorithm,
            problem,
            experiment,
            budget=Budget.evaluations(campaign.cell_budget),
            seed=cell.seed,
            on_event=emit,
            repair_infeasible=campaign.repair_infeasible,
            repair_budget=campaign.repair_budget() if campaign.repair_infeasible else None,
        )
        routing_stats = problem.routing_cache_stats()
        payload = result_to_dict(result)
        payload["cell"] = cell.to_dict()
        payload["routing_cache"] = routing_stats
        # Repair counters appear only on repair-enabled campaigns, so default
        # shards stay byte-identical to the pre-repair format.
        if campaign.repair_infeasible:
            payload["repair"] = result.metadata.get(
                "repair", {"attempted": 0, "repaired": 0, "evaluations": 0}
            )
        write_json_atomic(payload, Path(output_dir) / cell.shard_name)
        outcome = {
            "key": cell.key,
            "evaluations": int(result.evaluations),
            "elapsed_seconds": float(result.elapsed_seconds),
            "routing_cache": routing_stats,
        }
        if emit is not None:
            emit(
                _cell_event(
                    "shard_finished",
                    cell,
                    evaluations=outcome["evaluations"],
                    elapsed_seconds=outcome["elapsed_seconds"],
                    routing_cache=routing_stats,
                )
            )
    finally:
        if writer is not None:
            writer.close()
        evaluator = getattr(problem, "evaluator", None)
        if evaluator is not None:
            evaluator.shutdown()
    return outcome


def _cell_event(kind: str, cell: CampaignCell, **payload: Any) -> StudyEvent:
    """Shard-level progress event for one campaign cell.

    Non-identity cells carry their scenario key in the event payload;
    identity cells emit the exact pre-scenario event shape.
    """
    evaluations = payload.pop("evaluations", None)
    elapsed = payload.pop("elapsed_seconds", 0.0)
    extra = {"scenario": cell.scenario} if cell.scenario != "identity" else {}
    return StudyEvent(
        kind=kind,
        algorithm=cell.algorithm,
        application=cell.application,
        num_objectives=cell.num_objectives,
        evaluations=evaluations,
        elapsed_seconds=elapsed,
        payload={"key": cell.key, **extra, **payload},
    )


def _execute_campaign(
    campaign: CampaignConfig,
    output_dir: Path,
    emit: EventCallback | None,
    event_log: "str | None",
) -> CampaignSummary:
    """Blocking campaign body shared by the sync and async front doors.

    ``emit`` receives the campaign-level events (``campaign_started``,
    ``shard_skipped``, ``campaign_finished``) — in event-log mode it is the
    parent's log writer, otherwise the caller's direct callback.  Cell-level
    events come from :func:`_run_campaign_cell`: through the log when
    ``event_log`` names one (pooled and inline cells alike, so both modes
    produce the identical stream), or through ``emit`` directly in the legacy
    no-log inline path.  In the no-log *pool* path workers stay silent, so
    the parent emits submission-time ``shard_started`` events
    (``payload["queued"] = True``) and completion-time ``shard_finished``.
    """
    output_dir.mkdir(parents=True, exist_ok=True)
    cells = campaign_cells(campaign)

    manifest_path = output_dir / MANIFEST_NAME
    rollup: "dict[str, Any] | None" = None
    if manifest_path.exists():
        existing = load_manifest(output_dir)
        if existing["cells"] != [cell.to_dict() for cell in cells]:
            raise ValueError(
                f"{output_dir} holds a different campaign grid; "
                "use a fresh output directory (or matching configuration) to resume"
            )
        if existing.get("cell_budget") != campaign.cell_budget:
            raise ValueError(
                f"{output_dir} was run with a per-cell budget of "
                f"{existing.get('cell_budget')} evaluations, not {campaign.cell_budget}; "
                "resuming would mix budgets across cells — use a fresh output "
                "directory or the original budget"
            )
        # A compacted directory's rollup record must survive the manifest
        # rewrite, or resume would forget every compacted cell.
        rollup = existing.get("rollup")
    manifest_payload = _manifest_payload(campaign, cells)
    if rollup is not None:
        manifest_payload["rollup"] = rollup
    write_json_atomic(manifest_payload, manifest_path)

    if campaign.resume:
        done = {cell.key for cell in cells if _shard_complete(output_dir, cell, rollup)}
    else:
        done = set()
    pending = [cell for cell in cells if cell.key not in done]

    if emit is not None:
        emit(
            StudyEvent(
                kind="campaign_started",
                payload={
                    "cells": len(cells),
                    "pending": len(pending),
                    "skipped": len(cells) - len(pending),
                    "output_dir": str(output_dir),
                },
            )
        )
        for cell in cells:
            if cell.key in done:
                emit(_cell_event("shard_skipped", cell))

    # Cross-cell route-cache sharing.  Inline cells share one engine pool
    # (same process, zero copies); pooled cells cannot, so the disk-backed
    # warm-start store is their sharing medium.  The store directory lives
    # next to the manifest, so a resumed campaign warm-starts from the
    # previous run's builds.
    route_store_path: "str | None" = None
    if campaign.routing_cache and campaign.routing_warm_start:
        route_store_path = str(output_dir / "routing_store")
    engine_pool: "RoutingEnginePool | None" = None
    if campaign.routing_cache and campaign.shared_routing_cache:
        engine_pool = RoutingEnginePool()

    if campaign.max_workers > 1 and len(pending) > 1:
        workers = min(campaign.max_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for cell in pending:
                if emit is not None and event_log is None:
                    # Without the log the worker-side start is unobservable,
                    # so shard_started marks *submission*; payload["queued"]
                    # distinguishes it from a worker-side start.
                    emit(_cell_event("shard_started", cell, queued=True))
                futures[
                    pool.submit(
                        _run_campaign_cell,
                        campaign,
                        cell,
                        str(output_dir),
                        None,
                        event_log,
                        route_store_path,
                    )
                ] = cell
            for future in as_completed(futures):
                outcome = future.result()
                if emit is not None and event_log is None:
                    emit(
                        _cell_event(
                            "shard_finished",
                            futures[future],
                            evaluations=outcome["evaluations"],
                            elapsed_seconds=outcome["elapsed_seconds"],
                            routing_cache=outcome["routing_cache"],
                        )
                    )
    else:
        for cell in pending:
            _run_campaign_cell(
                campaign,
                cell,
                str(output_dir),
                on_event=emit if event_log is None else None,
                event_log=event_log,
                route_store_path=route_store_path,
                engine_pool=engine_pool,
            )

    # Fold every completed shard's routing-engine counters into the manifest
    # so a finished campaign reports its cache effectiveness without anyone
    # re-reading the shards.  The rollup record is re-read rather than taken
    # from the start-of-run snapshot: compact_campaign may have run against
    # this directory while the cells executed, and carrying a stale (or
    # absent) record forward would orphan the cells it compacted.
    try:
        rollup = load_manifest(output_dir).get("rollup")
    except (OSError, ValueError):
        pass  # keep the snapshot if the manifest is momentarily unreadable
    routing_stats = aggregate_routing_cache_stats(output_dir, cells, rollup)
    manifest_payload = _manifest_payload(campaign, cells)
    if rollup is not None:
        manifest_payload["rollup"] = rollup
    manifest_payload["routing_cache"] = routing_stats
    repair_stats: "dict[str, Any] | None" = None
    if campaign.repair_infeasible:
        repair_stats = aggregate_repair_stats(output_dir, cells, rollup)
        manifest_payload["repair"] = repair_stats
    write_json_atomic(manifest_payload, manifest_path)

    if emit is not None:
        emit(
            StudyEvent(
                kind="campaign_finished",
                payload={
                    "executed": len(pending),
                    "skipped": len(cells) - len(pending),
                    "routing_cache": routing_stats,
                    "output_dir": str(output_dir),
                },
            )
        )

    return CampaignSummary(
        output_dir=output_dir,
        manifest_path=manifest_path,
        cells=cells,
        executed=[cell.key for cell in pending],
        skipped=[cell.key for cell in cells if cell.key in done],
        parallel_evaluation=campaign.resolve_parallel_evaluation(),
        routing_cache=routing_stats,
        repair=repair_stats,
    )


class CampaignExecution:
    """Non-blocking handle over a running campaign (see :func:`submit_campaign`).

    The campaign body runs on a background thread; this handle is the
    caller's side of the event stream.  With the event log enabled (the
    default) every event — campaign brackets from the parent, shard and
    iteration events from the cells, pooled or inline — round-trips through
    the durable ``events.jsonl`` and is replayed here by a manifest-side
    tailer; with ``event_log=False`` the in-process callbacks feed an
    in-memory buffer instead.  Either way, the subscriber passed to
    :func:`submit_campaign` is invoked on the thread that consumes the
    handle (:meth:`wait`, :meth:`events` or :meth:`poll`), never
    concurrently with it.

    The handle is a single-consumer object: drive it with *one* of
    :meth:`events` (live iteration), :meth:`wait` (block to completion,
    pumping subscribers), or repeated :meth:`poll`/:meth:`progress` calls —
    all three share one pump, so e.g. calling :meth:`progress` from inside an
    :meth:`events` loop would drain events the iterator then never yields
    (read the counters off the yielded events instead).

    Asynchrony changes failure semantics versus the old inline
    ``run_campaign``: the campaign body is not torn down by its observers.
    A subscriber exception (or a :meth:`wait` timeout) propagates to the
    *consumer* while the cells keep executing in the background; the handle
    stays valid, so call :meth:`wait` again to resume pumping and join.  Do
    not start a second campaign in the same output directory while a handle
    is unfinished.
    """

    def __init__(
        self,
        campaign: CampaignConfig,
        output_dir: "str | Path",
        on_event: EventCallback | None = None,
    ):
        self.campaign = campaign
        self.output_dir = Path(output_dir)
        self._on_event = on_event
        self._summary: CampaignSummary | None = None
        self._error: BaseException | None = None
        self._finished = threading.Event()
        self._lock = threading.Lock()
        self._buffer: list[StudyEvent] = []
        self._reader: EventLogReader | None = None
        self._writer: EventLogWriter | None = None
        self._counts = {"total": len(campaign_cells(campaign)), "started": 0,
                        "finished": 0, "skipped": 0, "evaluations": 0}
        if campaign.event_log:
            self.output_dir.mkdir(parents=True, exist_ok=True)
            log_path = self.output_dir / EVENT_LOG_NAME
            # Tail from the current end: a resumed campaign appends to the
            # previous run's durable log, and subscribers must only see this
            # invocation's events.
            self._reader = EventLogReader(log_path, start_at_end=True)
            self._writer = EventLogWriter(log_path, origin="campaign")
        self._thread = threading.Thread(
            target=self._execute, name="repro-campaign", daemon=True
        )

    # ------------------------------------------------------------------ #
    # Background execution
    # ------------------------------------------------------------------ #
    def _start(self) -> "CampaignExecution":
        self._thread.start()
        return self

    def _execute(self) -> None:
        emit: EventCallback = self._writer.append if self._writer is not None else self._enqueue
        try:
            self._summary = _execute_campaign(
                self.campaign,
                self.output_dir,
                emit,
                EVENT_LOG_NAME if self._writer is not None else None,
            )
        except BaseException as error:  # re-raised by wait()
            self._error = error
        finally:
            if self._writer is not None:
                self._writer.close()
            self._finished.set()

    def _enqueue(self, event: StudyEvent) -> None:
        with self._lock:
            self._buffer.append(event)

    # ------------------------------------------------------------------ #
    # Caller-side consumption
    # ------------------------------------------------------------------ #
    def poll(self) -> list[StudyEvent]:
        """Drain and return the events that arrived since the last poll.

        Also dispatches each one to the subscriber and updates
        :meth:`progress` counters — this is the single pump every other
        consumption method goes through.
        """
        if self._reader is not None:
            events = [record.event for record in self._reader.poll()]
        else:
            with self._lock:
                events, self._buffer = self._buffer, []
        for event in events:
            self._track(event)
            if self._on_event is not None:
                self._on_event(event)
        return events

    def _track(self, event: StudyEvent) -> None:
        # Queued submissions (the no-log pool path, where worker-side starts
        # are unobservable) count as started too: "running" then means
        # "submitted and not yet finished", the closest observable truth.
        if event.kind == "shard_started":
            self._counts["started"] += 1
        elif event.kind == "shard_finished":
            self._counts["finished"] += 1
            self._counts["evaluations"] += int(event.evaluations or 0)
        elif event.kind == "shard_skipped":
            self._counts["skipped"] += 1

    def done(self) -> bool:
        """True once the campaign body has finished (or failed)."""
        return self._finished.is_set()

    def progress(self) -> dict[str, Any]:
        """Snapshot of the campaign's progress, from the pumped event stream."""
        self.poll()
        counts = dict(self._counts)
        return {
            "cells": counts["total"],
            "done": counts["finished"] + counts["skipped"],
            "executed": counts["finished"],
            "skipped": counts["skipped"],
            "running": max(0, counts["started"] - counts["finished"]),
            "evaluations": counts["evaluations"],
            "finished": self.done(),
        }

    def events(self, poll_interval: float = 0.05) -> Iterator[StudyEvent]:
        """Yield events live until the campaign completes (then drain).

        The iterator ends when the campaign body has finished *and* the
        stream is drained; call :meth:`wait` afterwards for the summary (it
        returns immediately and re-raises any campaign failure).
        """
        while not self._finished.is_set():
            events = self.poll()
            if events:
                yield from events
            else:
                time.sleep(poll_interval)
        yield from self.poll()

    def wait(self, timeout: "float | None" = None, poll_interval: float = 0.05) -> CampaignSummary:
        """Block (pumping events to the subscriber) until the campaign ends.

        Raises ``TimeoutError`` when ``timeout`` seconds pass first, and
        re-raises whatever the campaign body raised (grid-mismatch
        ``ValueError``, a worker crash, ...) once it has finished.  A timeout
        or a subscriber exception does **not** stop the campaign — the cells
        keep running in the background and this method can be called again
        on the same handle to resume pumping and join.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._finished.wait(timeout=poll_interval):
            self.poll()
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"campaign in {self.output_dir} still running after {timeout:.1f}s"
                )
        self._thread.join()
        self.poll()
        if self._error is not None:
            raise self._error
        assert self._summary is not None
        return self._summary


def submit_campaign(
    campaign: CampaignConfig,
    output_dir: "str | Path",
    on_event: EventCallback | None = None,
) -> CampaignExecution:
    """Start a campaign without blocking and return its execution handle.

    The grid runs on a background thread (cells still fan out over the
    process pool when ``max_workers > 1``); the returned
    :class:`CampaignExecution` exposes the live event stream
    (:meth:`~CampaignExecution.events`), progress polling
    (:meth:`~CampaignExecution.progress`) and the blocking join
    (:meth:`~CampaignExecution.wait`).  ``on_event`` subscribes exactly like
    :func:`run_campaign`'s — it is invoked from whichever thread consumes
    the handle.
    """
    return CampaignExecution(campaign, output_dir, on_event=on_event)._start()


def run_campaign(
    campaign: CampaignConfig,
    output_dir: "str | Path",
    on_event: EventCallback | None = None,
) -> CampaignSummary:
    """Run (or resume) a sharded campaign over the full algorithm/problem grid.

    The manifest covering the *entire* grid is written first, then every cell
    without a completed shard (loose or compacted — see
    :func:`repro.experiments.compaction.compact_campaign`) is executed —
    inline when ``max_workers == 1``, otherwise fanned out over a process
    pool.  Each cell writes its own shard atomically on completion, so
    killing the campaign at any point loses at most the in-flight cells;
    re-running with ``resume=True`` (the default) skips every completed cell.

    ``on_event`` streams structured progress instead of silence:
    ``campaign_started``, one ``shard_skipped``/``shard_started`` per cell,
    per-iteration optimiser events from every cell, ``shard_finished`` with
    the cell's evaluation count and routing-cache counters (in completion
    order under a process pool), and ``campaign_finished`` with the folded
    cache summary.  With the default ``campaign.event_log=True`` the stream
    is identical for pooled and inline campaigns — workers append to the
    durable ``events.jsonl`` next to the manifest and a tailer replays it
    into ``on_event``.  With ``event_log=False`` events stay in-process:
    inline campaigns still forward everything, but pool workers are silent
    and the parent only reports submissions (``shard_started`` with
    ``payload["queued"] = True``) and completions.

    This is the blocking front door: ``submit_campaign(...).wait()``.  Use
    :func:`submit_campaign` directly for the non-blocking handle.
    """
    return submit_campaign(campaign, output_dir, on_event=on_event).wait()
