"""Runs the optimisers on (application, scenario) problem instances.

Besides the single-run helpers (:func:`run_algorithm`,
:func:`compare_algorithms`), this module hosts the campaign engine: the full
(algorithm x application x scenario) grid fanned out over a process pool,
each cell streaming its result to one JSON shard next to a manifest so a
killed campaign resumes by running only the missing cells
(:func:`run_campaign`).
"""

from __future__ import annotations

import hashlib
import json
import re
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.core.problem import NocDesignProblem
from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.moo.result import OptimizationResult
from repro.moo.termination import Budget
from repro.study.events import EventCallback, StudyEvent
from repro.study.optimizers import BUILTIN_ALGORITHMS
from repro.study.registry import default_registry
from repro.utils.serialization import load_result, result_to_dict, write_json_atomic
from repro.workloads.registry import get_workload

#: Canonical names of the built-in algorithms.  :func:`run_algorithm` accepts
#: anything registered with the :class:`~repro.study.registry.OptimizerRegistry`
#: (including third-party registrations), under any alias spelling.
ALGORITHMS: tuple[str, ...] = BUILTIN_ALGORITHMS

#: File name of the campaign manifest inside a campaign output directory.
MANIFEST_NAME = "manifest.json"

#: Format tag written into every manifest (bump on incompatible changes).
MANIFEST_FORMAT = "repro-campaign/1"


def make_problem(
    experiment: ExperimentConfig,
    application: str,
    num_objectives: int,
    routing_cache: bool = True,
) -> NocDesignProblem:
    """Build the NoC design problem for one application and objective scenario."""
    workload = get_workload(application, experiment.platform, seed=experiment.seed)
    return NocDesignProblem(workload, scenario=num_objectives, routing_cache=routing_cache)


def _derived_seed(experiment: ExperimentConfig, algorithm: str, application: str, num_objectives: int) -> int:
    """Deterministic per-(algorithm, application, scenario) seed.

    Derived by hashing the cell identity together with the base seed, so every
    cell of a campaign grid gets a unique, reproducible stream (the previous
    weighted character sum could collide between cells, which would correlate
    searches that the paper's protocol treats as independent).
    """
    digest = hashlib.sha256(
        f"{experiment.seed}|{algorithm}|{application}|{num_objectives}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def run_algorithm(
    algorithm: str,
    problem: NocDesignProblem,
    experiment: ExperimentConfig,
    budget: Budget | None = None,
    seed: int | None = None,
    options: Mapping[str, Any] | None = None,
    on_event: EventCallback | None = None,
) -> OptimizationResult:
    """Run one algorithm on one problem instance and return its result.

    The algorithm name (any spelling the
    :class:`~repro.study.registry.OptimizerRegistry` accepts) is resolved to
    its registered spec, which owns the experiment-to-constructor wiring.
    ``options`` are hyper-parameter overrides validated against the spec's
    declared schema; ``on_event`` subscribes the run to streaming
    :class:`~repro.study.events.StudyEvent` progress (observation-only — a
    subscribed run is bit-identical to a silent one).
    """
    spec = default_registry().spec(algorithm)
    budget = budget if budget is not None else spec.budget_for(experiment)
    if seed is None:
        seed = _derived_seed(experiment, spec.name, problem.workload.name, problem.num_objectives)
    optimizer = spec.create(problem, experiment, seed, **dict(options or {}))
    if on_event is not None:
        optimizer.on_event = on_event
        optimizer.event_context = {
            "algorithm": spec.name,
            "application": problem.workload.name,
            "num_objectives": problem.num_objectives,
        }
    return optimizer.run(budget)


def compare_algorithms(
    algorithms: list[str],
    experiment: ExperimentConfig,
    application: str,
    num_objectives: int,
    budget: Budget | None = None,
    on_event: EventCallback | None = None,
) -> dict[str, OptimizationResult]:
    """Run several algorithms on the same problem instance with matched budgets.

    Results are keyed by canonical algorithm name (aliases fold together).
    """
    registry = default_registry()
    problem = make_problem(experiment, application, num_objectives)
    results: dict[str, OptimizationResult] = {}
    for algorithm in algorithms:
        results[registry.canonical(algorithm)] = run_algorithm(
            algorithm, problem, experiment, budget=budget, on_event=on_event
        )
    return results


# ---------------------------------------------------------------------- #
# Campaign engine
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignCell:
    """One (algorithm, application, scenario) cell of a campaign grid."""

    algorithm: str
    application: str
    num_objectives: int
    seed: int

    @property
    def key(self) -> str:
        """Filesystem-safe cell identifier, e.g. ``MOEA-D_BFS_3obj``."""
        algorithm = re.sub(r"[^A-Za-z0-9.-]+", "-", self.algorithm)
        return f"{algorithm}_{self.application}_{self.num_objectives}obj"

    @property
    def shard_name(self) -> str:
        """File name of the cell's result shard."""
        return f"cell_{self.key}.json"

    def to_dict(self) -> dict[str, Any]:
        """JSON representation used in the manifest and shard headers."""
        return {
            "algorithm": self.algorithm,
            "application": self.application,
            "num_objectives": self.num_objectives,
            "seed": self.seed,
            "shard": self.shard_name,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CampaignCell":
        """Rebuild a cell from :meth:`to_dict` output."""
        return cls(
            algorithm=payload["algorithm"],
            application=payload["application"],
            num_objectives=int(payload["num_objectives"]),
            seed=int(payload["seed"]),
        )


@dataclass
class CampaignSummary:
    """Outcome of one :func:`run_campaign` invocation."""

    output_dir: Path
    manifest_path: Path
    cells: list[CampaignCell]
    executed: list[str]
    skipped: list[str]
    parallel_evaluation: bool
    routing_cache: "dict[str, Any] | None" = None  # aggregate engine counters (see manifest)

    def shard_path(self, key: str) -> Path:
        """Path of the shard for a cell key."""
        for cell in self.cells:
            if cell.key == key:
                return self.output_dir / cell.shard_name
        raise KeyError(f"unknown cell key {key!r}")


def campaign_cells(campaign: CampaignConfig) -> list[CampaignCell]:
    """The full cell grid of a campaign, with per-cell derived seeds.

    Algorithm names are canonicalised through the optimizer registry, so alias
    spellings (``"MOEAD"`` vs ``"MOEA/D"``) always map to the same cell, seed
    and shard; unknown names raise with the registry's available-names
    message.
    """
    registry = default_registry()
    algorithms = tuple(
        registry.canonical(algorithm)
        for algorithm in (tuple(campaign.algorithms) or ALGORITHMS)
    )
    experiment = campaign.experiment
    cells = [
        CampaignCell(
            algorithm=algorithm,
            application=application,
            num_objectives=num_objectives,
            seed=_derived_seed(experiment, algorithm, application, num_objectives),
        )
        for algorithm in algorithms
        for application in experiment.applications
        for num_objectives in experiment.objective_counts
    ]
    keys = [cell.key for cell in cells]
    if len(set(keys)) != len(keys):
        raise ValueError("campaign grid contains duplicate cells (repeated algorithm/application?)")
    return cells


def _manifest_payload(campaign: CampaignConfig, cells: list[CampaignCell]) -> dict[str, Any]:
    experiment = campaign.experiment
    return {
        "format": MANIFEST_FORMAT,
        "platform": experiment.platform.name,
        "base_seed": experiment.seed,
        "cell_budget": campaign.cell_budget,
        "population_size": experiment.population_size,
        "cells": [cell.to_dict() for cell in cells],
    }


def load_manifest(output_dir: "str | Path") -> dict[str, Any]:
    """Read a campaign manifest written by :func:`run_campaign`."""
    path = Path(output_dir) / MANIFEST_NAME
    payload = json.loads(path.read_text())
    if payload.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"{path} is not a {MANIFEST_FORMAT} manifest")
    return payload


def _shard_complete(output_dir: Path, cell: CampaignCell) -> bool:
    """True when the cell's shard exists, parses, and matches the cell's identity.

    Shards are written atomically, so any existing file is a finished cell —
    the parse and identity checks additionally guard against foreign files and
    stale shards from a differently-seeded campaign in the same directory.
    """
    path = output_dir / cell.shard_name
    if not path.exists():
        return False
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(payload, dict) and payload.get("cell") == cell.to_dict()


def aggregate_routing_cache_stats(output_dir: "str | Path", cells: list[CampaignCell]) -> dict[str, Any]:
    """Fold the per-shard routing-cache counters into one campaign summary.

    Cells whose shard predates the routing-cache format (or is missing) are
    counted in ``cells_missing_stats`` instead of silently skewing the rate.
    """
    output_dir = Path(output_dir)
    totals = {"hits": 0, "misses": 0, "incremental_repairs": 0}
    counted = 0
    missing = 0
    for cell in cells:
        # One parse per shard: completion check (shard parses and matches the
        # cell identity) and counter extraction share the same payload —
        # paper-scale shards are multi-MB, so re-parsing per question adds up.
        path = output_dir / cell.shard_name
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict) or payload.get("cell") != cell.to_dict():
            continue
        stats = payload.get("routing_cache")
        if not isinstance(stats, dict):
            missing += 1
            continue
        counted += 1
        for field_name in totals:
            totals[field_name] += int(stats.get(field_name, 0))
    requests = totals["hits"] + totals["misses"] + totals["incremental_repairs"]
    return {
        "cells_counted": counted,
        "cells_missing_stats": missing,
        **totals,
        "requests": requests,
        "hit_rate": totals["hits"] / requests if requests else 0.0,
    }


def campaign_status(output_dir: "str | Path") -> dict[str, bool]:
    """Completion state of every cell recorded in a campaign manifest."""
    output_dir = Path(output_dir)
    manifest = load_manifest(output_dir)
    cells = [CampaignCell.from_dict(entry) for entry in manifest["cells"]]
    return {cell.key: _shard_complete(output_dir, cell) for cell in cells}


def load_campaign_results(output_dir: "str | Path") -> Iterator[tuple[CampaignCell, OptimizationResult]]:
    """Yield ``(cell, result)`` for every completed shard of a campaign.

    Results are loaded lazily, one shard at a time, so summarising a large
    campaign never holds more than one cell's result in memory.
    """
    output_dir = Path(output_dir)
    manifest = load_manifest(output_dir)
    for entry in manifest["cells"]:
        cell = CampaignCell.from_dict(entry)
        if _shard_complete(output_dir, cell):
            yield cell, load_result(output_dir / cell.shard_name)


def _run_campaign_cell(
    campaign: CampaignConfig,
    cell: CampaignCell,
    output_dir: str,
    on_event: EventCallback | None = None,
) -> dict[str, Any]:
    """Run one grid cell and stream its result to the cell's shard.

    Executed inside pool workers, so it takes only picklable arguments and
    writes the (potentially large) result to disk in the worker instead of
    shipping it back to the parent.  ``on_event`` (inline execution only —
    callbacks do not cross the process boundary) additionally streams the
    cell's per-iteration optimiser events.
    """
    experiment = campaign.experiment
    problem = make_problem(
        experiment, cell.application, cell.num_objectives, routing_cache=campaign.routing_cache
    )
    problem.parallel_evaluation = campaign.resolve_parallel_evaluation()
    try:
        result = run_algorithm(
            cell.algorithm,
            problem,
            experiment,
            budget=Budget.evaluations(campaign.cell_budget),
            seed=cell.seed,
            on_event=on_event,
        )
        routing_stats = problem.routing_cache_stats()
        payload = result_to_dict(result)
        payload["cell"] = cell.to_dict()
        payload["routing_cache"] = routing_stats
        write_json_atomic(payload, Path(output_dir) / cell.shard_name)
    finally:
        evaluator = getattr(problem, "evaluator", None)
        if evaluator is not None:
            evaluator.shutdown()
    return {
        "key": cell.key,
        "evaluations": int(result.evaluations),
        "elapsed_seconds": float(result.elapsed_seconds),
        "routing_cache": routing_stats,
    }


def _cell_event(kind: str, cell: CampaignCell, **payload: Any) -> StudyEvent:
    """Shard-level progress event for one campaign cell."""
    evaluations = payload.pop("evaluations", None)
    elapsed = payload.pop("elapsed_seconds", 0.0)
    return StudyEvent(
        kind=kind,
        algorithm=cell.algorithm,
        application=cell.application,
        num_objectives=cell.num_objectives,
        evaluations=evaluations,
        elapsed_seconds=elapsed,
        payload={"key": cell.key, **payload},
    )


def run_campaign(
    campaign: CampaignConfig,
    output_dir: "str | Path",
    on_event: EventCallback | None = None,
) -> CampaignSummary:
    """Run (or resume) a sharded campaign over the full algorithm/problem grid.

    The manifest covering the *entire* grid is written first, then every cell
    without a completed shard is executed — inline when ``max_workers == 1``,
    otherwise fanned out over a process pool.  Each cell writes its own shard
    atomically on completion, so killing the campaign at any point loses at
    most the in-flight cells; re-running with ``resume=True`` (the default)
    skips every completed cell.

    ``on_event`` streams structured progress instead of silence:
    ``campaign_started``, one ``shard_skipped``/``shard_started`` per cell,
    ``shard_finished`` with the cell's evaluation count and routing-cache
    counters (in completion order under a process pool), and
    ``campaign_finished`` with the folded cache summary.  Inline campaigns
    (``max_workers == 1``) additionally forward every cell's per-iteration
    optimiser events; pool workers only report shard completions, because
    callbacks do not cross the process boundary — there, ``shard_started``
    marks *submission* to the pool (``payload["queued"] = True``), not the
    worker-side start.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    cells = campaign_cells(campaign)

    manifest_path = output_dir / MANIFEST_NAME
    if manifest_path.exists():
        existing = load_manifest(output_dir)
        if existing["cells"] != [cell.to_dict() for cell in cells]:
            raise ValueError(
                f"{output_dir} holds a different campaign grid; "
                "use a fresh output directory (or matching configuration) to resume"
            )
        if existing.get("cell_budget") != campaign.cell_budget:
            raise ValueError(
                f"{output_dir} was run with a per-cell budget of "
                f"{existing.get('cell_budget')} evaluations, not {campaign.cell_budget}; "
                "resuming would mix budgets across cells — use a fresh output "
                "directory or the original budget"
            )
    write_json_atomic(_manifest_payload(campaign, cells), manifest_path)

    if campaign.resume:
        done = {cell.key for cell in cells if _shard_complete(output_dir, cell)}
    else:
        done = set()
    pending = [cell for cell in cells if cell.key not in done]

    if on_event is not None:
        on_event(
            StudyEvent(
                kind="campaign_started",
                payload={
                    "cells": len(cells),
                    "pending": len(pending),
                    "skipped": len(cells) - len(pending),
                    "output_dir": str(output_dir),
                },
            )
        )
        for cell in cells:
            if cell.key in done:
                on_event(_cell_event("shard_skipped", cell))

    if campaign.max_workers > 1 and len(pending) > 1:
        workers = min(campaign.max_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for cell in pending:
                if on_event is not None:
                    # Pool mode cannot observe the worker-side start, so
                    # shard_started marks *submission*; payload["queued"]
                    # distinguishes it from an inline start.
                    on_event(_cell_event("shard_started", cell, queued=True))
                futures[pool.submit(_run_campaign_cell, campaign, cell, str(output_dir))] = cell
            for future in as_completed(futures):
                outcome = future.result()
                if on_event is not None:
                    on_event(
                        _cell_event(
                            "shard_finished",
                            futures[future],
                            evaluations=outcome["evaluations"],
                            elapsed_seconds=outcome["elapsed_seconds"],
                            routing_cache=outcome["routing_cache"],
                        )
                    )
    else:
        for cell in pending:
            if on_event is not None:
                on_event(_cell_event("shard_started", cell))
            outcome = _run_campaign_cell(campaign, cell, str(output_dir), on_event=on_event)
            if on_event is not None:
                on_event(
                    _cell_event(
                        "shard_finished",
                        cell,
                        evaluations=outcome["evaluations"],
                        elapsed_seconds=outcome["elapsed_seconds"],
                        routing_cache=outcome["routing_cache"],
                    )
                )

    # Fold every completed shard's routing-engine counters into the manifest
    # so a finished campaign reports its cache effectiveness without anyone
    # re-reading the shards.
    routing_stats = aggregate_routing_cache_stats(output_dir, cells)
    manifest_payload = _manifest_payload(campaign, cells)
    manifest_payload["routing_cache"] = routing_stats
    write_json_atomic(manifest_payload, manifest_path)

    if on_event is not None:
        on_event(
            StudyEvent(
                kind="campaign_finished",
                payload={
                    "executed": len(pending),
                    "skipped": len(cells) - len(pending),
                    "routing_cache": routing_stats,
                    "output_dir": str(output_dir),
                },
            )
        )

    return CampaignSummary(
        output_dir=output_dir,
        manifest_path=manifest_path,
        cells=cells,
        executed=[cell.key for cell in pending],
        skipped=[cell.key for cell in cells if cell.key in done],
        parallel_evaluation=campaign.resolve_parallel_evaluation(),
        routing_cache=routing_stats,
    )
