"""Runs the optimisers on (application, scenario) problem instances.

Besides the single-run helpers (:func:`run_algorithm`,
:func:`compare_algorithms`), this module hosts the campaign engine: the full
(algorithm x application x scenario) grid fanned out over a process pool,
each cell streaming its result to one JSON shard next to a manifest so a
killed campaign resumes by running only the missing cells
(:func:`run_campaign`).
"""

from __future__ import annotations

import hashlib
import json
import re
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.core.config import MOELAConfig
from repro.core.moela import MOELA
from repro.core.problem import NocDesignProblem
from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.moo.moead import MOEAD
from repro.moo.moo_stage import MOOStage
from repro.moo.moos import MOOS
from repro.moo.nsga2 import NSGA2
from repro.moo.result import OptimizationResult
from repro.moo.termination import Budget
from repro.utils.serialization import load_result, result_to_dict, write_json_atomic
from repro.workloads.registry import get_workload

#: Algorithm names accepted by :func:`run_algorithm`.
ALGORITHMS: tuple[str, ...] = ("MOELA", "MOEA/D", "MOOS", "MOO-STAGE", "NSGA-II")

#: File name of the campaign manifest inside a campaign output directory.
MANIFEST_NAME = "manifest.json"

#: Format tag written into every manifest (bump on incompatible changes).
MANIFEST_FORMAT = "repro-campaign/1"


def make_problem(
    experiment: ExperimentConfig,
    application: str,
    num_objectives: int,
    routing_cache: bool = True,
) -> NocDesignProblem:
    """Build the NoC design problem for one application and objective scenario."""
    workload = get_workload(application, experiment.platform, seed=experiment.seed)
    return NocDesignProblem(workload, scenario=num_objectives, routing_cache=routing_cache)


def _derived_seed(experiment: ExperimentConfig, algorithm: str, application: str, num_objectives: int) -> int:
    """Deterministic per-(algorithm, application, scenario) seed.

    Derived by hashing the cell identity together with the base seed, so every
    cell of a campaign grid gets a unique, reproducible stream (the previous
    weighted character sum could collide between cells, which would correlate
    searches that the paper's protocol treats as independent).
    """
    digest = hashlib.sha256(
        f"{experiment.seed}|{algorithm}|{application}|{num_objectives}".encode()
    ).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def run_algorithm(
    algorithm: str,
    problem: NocDesignProblem,
    experiment: ExperimentConfig,
    budget: Budget | None = None,
    seed: int | None = None,
) -> OptimizationResult:
    """Run one algorithm on one problem instance and return its result."""
    name = algorithm.upper()
    budget = budget if budget is not None else Budget.evaluations(experiment.max_evaluations)
    if seed is None:
        seed = _derived_seed(experiment, name, problem.workload.name, problem.num_objectives)

    if name == "MOELA":
        moela_config = MOELAConfig(
            population_size=experiment.population_size,
            generations=experiment.moela.generations,
            iter_early=experiment.moela.iter_early,
            n_local=min(experiment.moela.n_local, experiment.population_size),
            delta=experiment.moela.delta,
            neighborhood_size=min(experiment.moela.neighborhood_size, experiment.population_size),
            replacement_limit=experiment.moela.replacement_limit,
            local_search_steps=experiment.moela.local_search_steps,
            local_search_neighbors=experiment.moela.local_search_neighbors,
            local_search_patience=experiment.moela.local_search_patience,
            max_training_samples=experiment.moela.max_training_samples,
            forest_size=experiment.moela.forest_size,
            forest_depth=experiment.moela.forest_depth,
            seed=seed,
        )
        optimizer: Any = MOELA(problem, moela_config, rng=seed)
    elif name in ("MOEA/D", "MOEAD"):
        optimizer = MOEAD(
            problem,
            population_size=experiment.population_size,
            neighborhood_size=min(experiment.moela.neighborhood_size, experiment.population_size),
            delta=experiment.moela.delta,
            rng=seed,
        )
    elif name == "MOOS":
        optimizer = MOOS(
            problem,
            population_size=experiment.population_size,
            searches_per_iteration=experiment.searches_per_iteration,
            local_search_steps=experiment.local_search_steps,
            neighbors_per_step=experiment.neighbors_per_step,
            rng=seed,
        )
    elif name == "MOO-STAGE":
        optimizer = MOOStage(
            problem,
            population_size=experiment.population_size,
            searches_per_iteration=experiment.searches_per_iteration,
            local_search_steps=experiment.local_search_steps,
            neighbors_per_step=experiment.neighbors_per_step,
            rng=seed,
        )
    elif name == "NSGA-II":
        optimizer = NSGA2(problem, population_size=experiment.population_size, rng=seed)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}; available: {ALGORITHMS}")
    return optimizer.run(budget)


def compare_algorithms(
    algorithms: list[str],
    experiment: ExperimentConfig,
    application: str,
    num_objectives: int,
    budget: Budget | None = None,
) -> dict[str, OptimizationResult]:
    """Run several algorithms on the same problem instance with matched budgets."""
    problem = make_problem(experiment, application, num_objectives)
    results: dict[str, OptimizationResult] = {}
    for algorithm in algorithms:
        results[algorithm] = run_algorithm(algorithm, problem, experiment, budget=budget)
    return results


# ---------------------------------------------------------------------- #
# Campaign engine
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignCell:
    """One (algorithm, application, scenario) cell of a campaign grid."""

    algorithm: str
    application: str
    num_objectives: int
    seed: int

    @property
    def key(self) -> str:
        """Filesystem-safe cell identifier, e.g. ``MOEA-D_BFS_3obj``."""
        algorithm = re.sub(r"[^A-Za-z0-9.-]+", "-", self.algorithm)
        return f"{algorithm}_{self.application}_{self.num_objectives}obj"

    @property
    def shard_name(self) -> str:
        """File name of the cell's result shard."""
        return f"cell_{self.key}.json"

    def to_dict(self) -> dict[str, Any]:
        """JSON representation used in the manifest and shard headers."""
        return {
            "algorithm": self.algorithm,
            "application": self.application,
            "num_objectives": self.num_objectives,
            "seed": self.seed,
            "shard": self.shard_name,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CampaignCell":
        """Rebuild a cell from :meth:`to_dict` output."""
        return cls(
            algorithm=payload["algorithm"],
            application=payload["application"],
            num_objectives=int(payload["num_objectives"]),
            seed=int(payload["seed"]),
        )


@dataclass
class CampaignSummary:
    """Outcome of one :func:`run_campaign` invocation."""

    output_dir: Path
    manifest_path: Path
    cells: list[CampaignCell]
    executed: list[str]
    skipped: list[str]
    parallel_evaluation: bool
    routing_cache: "dict[str, Any] | None" = None  # aggregate engine counters (see manifest)

    def shard_path(self, key: str) -> Path:
        """Path of the shard for a cell key."""
        for cell in self.cells:
            if cell.key == key:
                return self.output_dir / cell.shard_name
        raise KeyError(f"unknown cell key {key!r}")


def campaign_cells(campaign: CampaignConfig) -> list[CampaignCell]:
    """The full cell grid of a campaign, with per-cell derived seeds."""
    algorithms = tuple(campaign.algorithms) or ALGORITHMS
    unknown = [a for a in algorithms if a.upper() not in {x.upper() for x in ALGORITHMS} | {"MOEAD"}]
    if unknown:
        raise ValueError(f"unknown algorithms {unknown}; available: {ALGORITHMS}")
    experiment = campaign.experiment
    cells = [
        CampaignCell(
            algorithm=algorithm,
            application=application,
            num_objectives=num_objectives,
            seed=_derived_seed(experiment, algorithm.upper(), application, num_objectives),
        )
        for algorithm in algorithms
        for application in experiment.applications
        for num_objectives in experiment.objective_counts
    ]
    keys = [cell.key for cell in cells]
    if len(set(keys)) != len(keys):
        raise ValueError("campaign grid contains duplicate cells (repeated algorithm/application?)")
    return cells


def _manifest_payload(campaign: CampaignConfig, cells: list[CampaignCell]) -> dict[str, Any]:
    experiment = campaign.experiment
    return {
        "format": MANIFEST_FORMAT,
        "platform": experiment.platform.name,
        "base_seed": experiment.seed,
        "cell_budget": campaign.cell_budget,
        "population_size": experiment.population_size,
        "cells": [cell.to_dict() for cell in cells],
    }


def load_manifest(output_dir: "str | Path") -> dict[str, Any]:
    """Read a campaign manifest written by :func:`run_campaign`."""
    path = Path(output_dir) / MANIFEST_NAME
    payload = json.loads(path.read_text())
    if payload.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"{path} is not a {MANIFEST_FORMAT} manifest")
    return payload


def _shard_complete(output_dir: Path, cell: CampaignCell) -> bool:
    """True when the cell's shard exists, parses, and matches the cell's identity.

    Shards are written atomically, so any existing file is a finished cell —
    the parse and identity checks additionally guard against foreign files and
    stale shards from a differently-seeded campaign in the same directory.
    """
    path = output_dir / cell.shard_name
    if not path.exists():
        return False
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return isinstance(payload, dict) and payload.get("cell") == cell.to_dict()


def aggregate_routing_cache_stats(output_dir: "str | Path", cells: list[CampaignCell]) -> dict[str, Any]:
    """Fold the per-shard routing-cache counters into one campaign summary.

    Cells whose shard predates the routing-cache format (or is missing) are
    counted in ``cells_missing_stats`` instead of silently skewing the rate.
    """
    output_dir = Path(output_dir)
    totals = {"hits": 0, "misses": 0, "incremental_repairs": 0}
    counted = 0
    missing = 0
    for cell in cells:
        # One parse per shard: completion check (shard parses and matches the
        # cell identity) and counter extraction share the same payload —
        # paper-scale shards are multi-MB, so re-parsing per question adds up.
        path = output_dir / cell.shard_name
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict) or payload.get("cell") != cell.to_dict():
            continue
        stats = payload.get("routing_cache")
        if not isinstance(stats, dict):
            missing += 1
            continue
        counted += 1
        for field_name in totals:
            totals[field_name] += int(stats.get(field_name, 0))
    requests = totals["hits"] + totals["misses"] + totals["incremental_repairs"]
    return {
        "cells_counted": counted,
        "cells_missing_stats": missing,
        **totals,
        "requests": requests,
        "hit_rate": totals["hits"] / requests if requests else 0.0,
    }


def campaign_status(output_dir: "str | Path") -> dict[str, bool]:
    """Completion state of every cell recorded in a campaign manifest."""
    output_dir = Path(output_dir)
    manifest = load_manifest(output_dir)
    cells = [CampaignCell.from_dict(entry) for entry in manifest["cells"]]
    return {cell.key: _shard_complete(output_dir, cell) for cell in cells}


def load_campaign_results(output_dir: "str | Path") -> Iterator[tuple[CampaignCell, OptimizationResult]]:
    """Yield ``(cell, result)`` for every completed shard of a campaign.

    Results are loaded lazily, one shard at a time, so summarising a large
    campaign never holds more than one cell's result in memory.
    """
    output_dir = Path(output_dir)
    manifest = load_manifest(output_dir)
    for entry in manifest["cells"]:
        cell = CampaignCell.from_dict(entry)
        if _shard_complete(output_dir, cell):
            yield cell, load_result(output_dir / cell.shard_name)


def _run_campaign_cell(campaign: CampaignConfig, cell: CampaignCell, output_dir: str) -> dict[str, Any]:
    """Run one grid cell and stream its result to the cell's shard.

    Executed inside pool workers, so it takes only picklable arguments and
    writes the (potentially large) result to disk in the worker instead of
    shipping it back to the parent.
    """
    experiment = campaign.experiment
    problem = make_problem(
        experiment, cell.application, cell.num_objectives, routing_cache=campaign.routing_cache
    )
    problem.parallel_evaluation = campaign.resolve_parallel_evaluation()
    try:
        result = run_algorithm(
            cell.algorithm,
            problem,
            experiment,
            budget=Budget.evaluations(campaign.cell_budget),
            seed=cell.seed,
        )
        routing_stats = problem.routing_cache_stats()
        payload = result_to_dict(result)
        payload["cell"] = cell.to_dict()
        payload["routing_cache"] = routing_stats
        write_json_atomic(payload, Path(output_dir) / cell.shard_name)
    finally:
        evaluator = getattr(problem, "evaluator", None)
        if evaluator is not None:
            evaluator.shutdown()
    return {
        "key": cell.key,
        "evaluations": int(result.evaluations),
        "elapsed_seconds": float(result.elapsed_seconds),
        "routing_cache": routing_stats,
    }


def run_campaign(campaign: CampaignConfig, output_dir: "str | Path") -> CampaignSummary:
    """Run (or resume) a sharded campaign over the full algorithm/problem grid.

    The manifest covering the *entire* grid is written first, then every cell
    without a completed shard is executed — inline when ``max_workers == 1``,
    otherwise fanned out over a process pool.  Each cell writes its own shard
    atomically on completion, so killing the campaign at any point loses at
    most the in-flight cells; re-running with ``resume=True`` (the default)
    skips every completed cell.
    """
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    cells = campaign_cells(campaign)

    manifest_path = output_dir / MANIFEST_NAME
    if manifest_path.exists():
        existing = load_manifest(output_dir)
        if existing["cells"] != [cell.to_dict() for cell in cells]:
            raise ValueError(
                f"{output_dir} holds a different campaign grid; "
                "use a fresh output directory (or matching configuration) to resume"
            )
        if existing.get("cell_budget") != campaign.cell_budget:
            raise ValueError(
                f"{output_dir} was run with a per-cell budget of "
                f"{existing.get('cell_budget')} evaluations, not {campaign.cell_budget}; "
                "resuming would mix budgets across cells — use a fresh output "
                "directory or the original budget"
            )
    write_json_atomic(_manifest_payload(campaign, cells), manifest_path)

    if campaign.resume:
        done = {cell.key for cell in cells if _shard_complete(output_dir, cell)}
    else:
        done = set()
    pending = [cell for cell in cells if cell.key not in done]

    if campaign.max_workers > 1 and len(pending) > 1:
        workers = min(campaign.max_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_campaign_cell, campaign, cell, str(output_dir))
                for cell in pending
            ]
            for future in as_completed(futures):
                future.result()
    else:
        for cell in pending:
            _run_campaign_cell(campaign, cell, str(output_dir))

    # Fold every completed shard's routing-engine counters into the manifest
    # so a finished campaign reports its cache effectiveness without anyone
    # re-reading the shards.
    routing_stats = aggregate_routing_cache_stats(output_dir, cells)
    manifest_payload = _manifest_payload(campaign, cells)
    manifest_payload["routing_cache"] = routing_stats
    write_json_atomic(manifest_payload, manifest_path)

    return CampaignSummary(
        output_dir=output_dir,
        manifest_path=manifest_path,
        cells=cells,
        executed=[cell.key for cell in pending],
        skipped=[cell.key for cell in cells if cell.key in done],
        parallel_evaluation=campaign.resolve_parallel_evaluation(),
        routing_cache=routing_stats,
    )
