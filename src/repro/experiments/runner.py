"""Runs the optimisers on (application, scenario) problem instances."""

from __future__ import annotations

from typing import Any

from repro.core.config import MOELAConfig
from repro.core.moela import MOELA
from repro.core.problem import NocDesignProblem
from repro.experiments.config import ExperimentConfig
from repro.moo.moead import MOEAD
from repro.moo.moo_stage import MOOStage
from repro.moo.moos import MOOS
from repro.moo.nsga2 import NSGA2
from repro.moo.result import OptimizationResult
from repro.moo.termination import Budget
from repro.workloads.registry import get_workload

#: Algorithm names accepted by :func:`run_algorithm`.
ALGORITHMS: tuple[str, ...] = ("MOELA", "MOEA/D", "MOOS", "MOO-STAGE", "NSGA-II")


def make_problem(
    experiment: ExperimentConfig, application: str, num_objectives: int
) -> NocDesignProblem:
    """Build the NoC design problem for one application and objective scenario."""
    workload = get_workload(application, experiment.platform, seed=experiment.seed)
    return NocDesignProblem(workload, scenario=num_objectives)


def _derived_seed(experiment: ExperimentConfig, algorithm: str, application: str, num_objectives: int) -> int:
    code = sum((i + 1) * ord(c) for i, c in enumerate(f"{algorithm}|{application}|{num_objectives}"))
    return (experiment.seed * 99_991 + code) & 0x7FFFFFFF


def run_algorithm(
    algorithm: str,
    problem: NocDesignProblem,
    experiment: ExperimentConfig,
    budget: Budget | None = None,
    seed: int | None = None,
) -> OptimizationResult:
    """Run one algorithm on one problem instance and return its result."""
    name = algorithm.upper()
    budget = budget if budget is not None else Budget.evaluations(experiment.max_evaluations)
    if seed is None:
        seed = _derived_seed(experiment, name, problem.workload.name, problem.num_objectives)

    if name == "MOELA":
        moela_config = MOELAConfig(
            population_size=experiment.population_size,
            generations=experiment.moela.generations,
            iter_early=experiment.moela.iter_early,
            n_local=min(experiment.moela.n_local, experiment.population_size),
            delta=experiment.moela.delta,
            neighborhood_size=min(experiment.moela.neighborhood_size, experiment.population_size),
            replacement_limit=experiment.moela.replacement_limit,
            local_search_steps=experiment.moela.local_search_steps,
            local_search_neighbors=experiment.moela.local_search_neighbors,
            local_search_patience=experiment.moela.local_search_patience,
            max_training_samples=experiment.moela.max_training_samples,
            forest_size=experiment.moela.forest_size,
            forest_depth=experiment.moela.forest_depth,
            seed=seed,
        )
        optimizer: Any = MOELA(problem, moela_config, rng=seed)
    elif name in ("MOEA/D", "MOEAD"):
        optimizer = MOEAD(
            problem,
            population_size=experiment.population_size,
            neighborhood_size=min(experiment.moela.neighborhood_size, experiment.population_size),
            delta=experiment.moela.delta,
            rng=seed,
        )
    elif name == "MOOS":
        optimizer = MOOS(
            problem,
            population_size=experiment.population_size,
            searches_per_iteration=experiment.searches_per_iteration,
            local_search_steps=experiment.local_search_steps,
            neighbors_per_step=experiment.neighbors_per_step,
            rng=seed,
        )
    elif name == "MOO-STAGE":
        optimizer = MOOStage(
            problem,
            population_size=experiment.population_size,
            searches_per_iteration=experiment.searches_per_iteration,
            local_search_steps=experiment.local_search_steps,
            neighbors_per_step=experiment.neighbors_per_step,
            rng=seed,
        )
    elif name == "NSGA-II":
        optimizer = NSGA2(problem, population_size=experiment.population_size, rng=seed)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}; available: {ALGORITHMS}")
    return optimizer.run(budget)


def compare_algorithms(
    algorithms: list[str],
    experiment: ExperimentConfig,
    application: str,
    num_objectives: int,
    budget: Budget | None = None,
) -> dict[str, OptimizationResult]:
    """Run several algorithms on the same problem instance with matched budgets."""
    problem = make_problem(experiment, application, num_objectives)
    results: dict[str, OptimizationResult] = {}
    for algorithm in algorithms:
        results[algorithm] = run_algorithm(algorithm, problem, experiment, budget=budget)
    return results
