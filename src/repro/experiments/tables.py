"""Builders for the paper's evaluation artefacts: Table I, Table II and Fig. 3.

Each builder runs MOELA and the baselines on the configured applications and
objective scenarios and returns plain row dictionaries mirroring the paper's
layout (applications as rows, ``{baseline} x {3,4,5}-obj`` as columns);
``format_table`` / ``format_figure3`` render them as text tables so the
benchmark harness prints the same rows the paper reports.

Campaign analytics
------------------
:func:`aggregate_campaign` folds the finished shards of a sharded campaign
(:func:`repro.experiments.runner.run_campaign`) into the same Table I/II
builders *without re-running any cell*: shards are loaded lazily into the
``RunMap`` layout the builders consume — transparently from loose shard
files or a compacted rollup
(:func:`repro.experiments.compaction.compact_campaign`), with identical
output either way — the comparison target defaults to MOELA when present
(first completed algorithm otherwise), and cells missing either side of a
comparison are skipped instead of failing the whole table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import (
    common_reference_point,
    edp_of_best_design,
    edp_overhead,
    phv_gain,
    speedup_factor,
)
from repro.experiments.runner import compare_algorithms, load_campaign_results, load_manifest
from repro.moo.result import OptimizationResult
from repro.simulation.simulator import NocSimulator
from repro.workloads.registry import get_workload

#: Baselines MOELA is compared against in Tables I/II and Fig. 3.
BASELINES: tuple[str, ...] = ("MOEA/D", "MOOS")


@dataclass
class ComparisonCell:
    """One (application, baseline, scenario) cell of a table."""

    application: str
    baseline: str
    num_objectives: int
    value: float


@dataclass
class TableResult:
    """A full table: rows per application plus per-column averages."""

    name: str
    cells: list[ComparisonCell] = field(default_factory=list)

    def value(self, application: str, baseline: str, num_objectives: int) -> float:
        """Look up one cell value."""
        for cell in self.cells:
            if (
                cell.application == application
                and cell.baseline == baseline
                and cell.num_objectives == num_objectives
            ):
                return cell.value
        raise KeyError((application, baseline, num_objectives))

    def applications(self) -> list[str]:
        """Applications present, in insertion order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.application not in seen:
                seen.append(cell.application)
        return seen

    def columns(self) -> list[tuple[str, int]]:
        """Distinct ``(baseline, num_objectives)`` columns, in insertion order."""
        seen: list[tuple[str, int]] = []
        for cell in self.cells:
            key = (cell.baseline, cell.num_objectives)
            if key not in seen:
                seen.append(key)
        return seen

    def column_average(self, baseline: str, num_objectives: int) -> float:
        """Average over applications of one column."""
        values = [
            cell.value
            for cell in self.cells
            if cell.baseline == baseline and cell.num_objectives == num_objectives
        ]
        return float(np.mean(values)) if values else float("nan")


# ---------------------------------------------------------------------- #
# Shared run cache
# ---------------------------------------------------------------------- #
RunMap = dict[tuple[str, int], dict[str, OptimizationResult]]


def run_all_comparisons(
    experiment: ExperimentConfig,
    algorithms: tuple[str, ...] = ("MOELA",) + BASELINES,
    progress: Callable[[str], None] | None = None,
) -> RunMap:
    """Run every (application, scenario) comparison once and cache the results.

    Both tables and the figure consume the same runs, matching the paper
    (Table I/II/Fig. 3 all come from the same search campaigns).
    """
    runs: RunMap = {}
    for application in experiment.applications:
        for num_objectives in experiment.objective_counts:
            if progress is not None:
                progress(f"running {application} / {num_objectives}-obj")
            runs[(application, num_objectives)] = compare_algorithms(
                list(algorithms), experiment, application, num_objectives
            )
    return runs


# ---------------------------------------------------------------------- #
# Generic comparison builder shared by the table builders and the
# campaign-shard aggregation path.
# ---------------------------------------------------------------------- #
def build_comparison_table(
    runs: RunMap,
    name: str,
    value_fn: Callable[[dict[str, OptimizationResult], str, str], float],
    target: str = "MOELA",
    baselines: tuple[str, ...] = BASELINES,
    applications: "tuple[str, ...] | None" = None,
    objective_counts: "tuple[int, ...] | None" = None,
    strict: bool = True,
) -> TableResult:
    """Build one comparison table from a run map.

    ``value_fn(results, baseline, target)`` computes one cell.  With
    ``strict=True`` (the experiment-driven builders) a run map missing the
    target or a baseline raises ``KeyError``, surfacing a misconfigured run;
    ``strict=False`` (the campaign-shard aggregation path) skips such cells
    instead, so a partially completed campaign still renders every
    comparable cell.
    """
    if applications is None:
        applications = tuple(dict.fromkeys(application for application, _ in runs))
    if objective_counts is None:
        objective_counts = tuple(sorted({objectives for _, objectives in runs}))
    table = TableResult(name=name)
    for baseline in baselines:
        for num_objectives in objective_counts:
            for application in applications:
                key = (application, num_objectives)
                results = runs.get(key)
                if results is None or target not in results or baseline not in results:
                    if strict:
                        if results is None:
                            raise KeyError(key)
                        missing = target if target not in results else baseline
                        raise KeyError(f"run map has no {missing!r} result for cell {key}")
                    continue
                value = value_fn(results, baseline, target)
                table.cells.append(
                    ComparisonCell(application, baseline, num_objectives, value)
                )
    return table


def _speedup_value(measure: str) -> Callable[[dict[str, OptimizationResult], str, str], float]:
    def value_fn(results: dict[str, OptimizationResult], baseline: str, target: str) -> float:
        reference = common_reference_point(list(results.values()))
        return speedup_factor(results[baseline], results[target], reference, measure=measure)

    return value_fn


def _phv_gain_value(results: dict[str, OptimizationResult], baseline: str, target: str) -> float:
    reference = common_reference_point(list(results.values()))
    return 100.0 * phv_gain(results[target], results[baseline], reference)


# ---------------------------------------------------------------------- #
# Table I — speed-up of MOELA over the baselines
# ---------------------------------------------------------------------- #
def build_table1(
    experiment: ExperimentConfig,
    runs: RunMap | None = None,
    measure: str = "evaluations",
) -> TableResult:
    """Table I: speed-up factor of MOELA vs MOEA/D and MOOS per app and scenario."""
    runs = runs if runs is not None else run_all_comparisons(experiment)
    return build_comparison_table(
        runs,
        name="Table I: speed-up of MOELA",
        value_fn=_speedup_value(measure),
        applications=experiment.applications,
        objective_counts=experiment.objective_counts,
    )


# ---------------------------------------------------------------------- #
# Table II — PHV gain of MOELA over the baselines
# ---------------------------------------------------------------------- #
def build_table2(experiment: ExperimentConfig, runs: RunMap | None = None) -> TableResult:
    """Table II: PHV gain (%) of MOELA vs MOEA/D and MOOS at the stop budget."""
    runs = runs if runs is not None else run_all_comparisons(experiment)
    return build_comparison_table(
        runs,
        name="Table II: PHV gain of MOELA (%)",
        value_fn=_phv_gain_value,
        applications=experiment.applications,
        objective_counts=experiment.objective_counts,
    )


# ---------------------------------------------------------------------- #
# Campaign-shard aggregation (tables without re-running anything)
# ---------------------------------------------------------------------- #
@dataclass
class CampaignAggregate:
    """Finished campaign shards folded into the table-builder layout.

    ``runs`` holds one ``{algorithm: result}`` map per completed
    ``(application, num_objectives)`` cell group; ``target`` is the algorithm
    the tables compare *to* (MOELA when the campaign ran it) and
    ``baselines`` everything else, in completion order.
    """

    output_dir: Path
    runs: RunMap
    algorithms: tuple[str, ...]
    applications: tuple[str, ...]
    objective_counts: tuple[int, ...]
    routing_cache: "dict[str, Any] | None" = None

    @property
    def target(self) -> str:
        """The comparison target: MOELA when present, else the first algorithm."""
        if not self.algorithms:
            raise ValueError(f"no completed shards found under {self.output_dir}")
        return "MOELA" if "MOELA" in self.algorithms else self.algorithms[0]

    @property
    def baselines(self) -> tuple[str, ...]:
        """Every completed algorithm except the comparison target."""
        target = self.target
        return tuple(a for a in self.algorithms if a != target)

    def table1(self, measure: str = "evaluations") -> TableResult:
        """Table I (speed-up of the target over each baseline) from the shards."""
        return build_comparison_table(
            self.runs,
            name=f"Table I: speed-up of {self.target}",
            value_fn=_speedup_value(measure),
            target=self.target,
            baselines=self.baselines,
            applications=self.applications,
            objective_counts=self.objective_counts,
            strict=False,
        )

    def table2(self) -> TableResult:
        """Table II (PHV gain of the target over each baseline) from the shards."""
        return build_comparison_table(
            self.runs,
            name=f"Table II: PHV gain of {self.target} (%)",
            value_fn=_phv_gain_value,
            target=self.target,
            baselines=self.baselines,
            applications=self.applications,
            objective_counts=self.objective_counts,
            strict=False,
        )


def aggregate_campaign(output_dir: "str | Path", scenario: str = "identity") -> CampaignAggregate:
    """Fold a campaign directory's finished shards into the table builders.

    Loads every completed shard once (lazily, one at a time), groups results
    by ``(application, num_objectives)`` and returns a
    :class:`CampaignAggregate` whose :meth:`~CampaignAggregate.table1` /
    :meth:`~CampaignAggregate.table2` render the paper tables from the stored
    histories — no cell is ever re-run.

    ``scenario`` selects one fault-scenario slice of the grid (canonical
    scenario-model key; the default keeps the tables on the nominal
    ``"identity"`` cells, so faulted cells never mix into — or overwrite —
    the paper artefacts).  Cross-scenario comparisons live in
    :mod:`repro.experiments.robustness`.
    """
    output_dir = Path(output_dir)
    runs: RunMap = {}
    algorithms: list[str] = []
    applications: list[str] = []
    objective_counts: list[int] = []
    for cell, result in load_campaign_results(output_dir):
        if cell.scenario != scenario:
            continue
        runs.setdefault((cell.application, cell.num_objectives), {})[cell.algorithm] = result
        if cell.algorithm not in algorithms:
            algorithms.append(cell.algorithm)
        if cell.application not in applications:
            applications.append(cell.application)
        if cell.num_objectives not in objective_counts:
            objective_counts.append(cell.num_objectives)
    manifest = load_manifest(output_dir)
    return CampaignAggregate(
        output_dir=output_dir,
        runs=runs,
        algorithms=tuple(algorithms),
        applications=tuple(applications),
        objective_counts=tuple(sorted(objective_counts)),
        routing_cache=manifest.get("routing_cache"),
    )


# ---------------------------------------------------------------------- #
# Fig. 3 — EDP overhead of the baselines relative to MOELA (5-obj)
# ---------------------------------------------------------------------- #
def build_figure3(
    experiment: ExperimentConfig,
    runs: RunMap | None = None,
    num_objectives: int = 5,
) -> TableResult:
    """Fig. 3: EDP overhead (%) of MOEA/D and MOOS designs vs MOELA designs.

    Uses the 5-objective runs (or the largest available scenario) and the
    paper's thermal-threshold design-selection rule.
    """
    runs = runs if runs is not None else run_all_comparisons(experiment)
    available = sorted({objectives for _, objectives in runs})
    if num_objectives not in available:
        num_objectives = available[-1]
    figure = TableResult(name=f"Fig. 3: EDP overhead vs MOELA ({num_objectives}-obj, %)")
    for application in experiment.applications:
        results = runs[(application, num_objectives)]
        workload = get_workload(application, experiment.platform, seed=experiment.seed)
        simulator = NocSimulator(workload)
        moela_edp = edp_of_best_design(results["MOELA"], workload, simulator=simulator)
        for baseline in BASELINES:
            baseline_edp = edp_of_best_design(results[baseline], workload, simulator=simulator)
            figure.cells.append(
                ComparisonCell(
                    application,
                    baseline,
                    num_objectives,
                    100.0 * edp_overhead(baseline_edp, moela_edp),
                )
            )
    return figure


# ---------------------------------------------------------------------- #
# Text rendering
# ---------------------------------------------------------------------- #
def format_table(table: TableResult, value_format: str = "{:8.2f}") -> str:
    """Render a table with applications as rows and (baseline, scenario) columns."""
    columns = table.columns()
    header_cells = [f"{baseline} {objectives}-obj" for baseline, objectives in columns]
    width = max(12, max((len(h) for h in header_cells), default=12) + 2)
    lines = [table.name, ""]
    lines.append("App".ljust(10) + "".join(h.rjust(width) for h in header_cells))
    for application in table.applications():
        row = [application.ljust(10)]
        for baseline, objectives in columns:
            row.append(value_format.format(table.value(application, baseline, objectives)).rjust(width))
        lines.append("".join(row))
    average_row = ["Average".ljust(10)]
    for baseline, objectives in columns:
        average_row.append(value_format.format(table.column_average(baseline, objectives)).rjust(width))
    lines.append("".join(average_row))
    return "\n".join(lines)


def format_figure3(figure: TableResult) -> str:
    """Render the Fig. 3 data as a text table (EDP overhead in %)."""
    return format_table(figure, value_format="{:8.2f}")
