"""Builders for the paper's evaluation artefacts: Table I, Table II and Fig. 3.

Each builder runs MOELA and the baselines on the configured applications and
objective scenarios and returns plain row dictionaries mirroring the paper's
layout (applications as rows, ``{baseline} x {3,4,5}-obj`` as columns);
``format_table`` / ``format_figure3`` render them as text tables so the
benchmark harness prints the same rows the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import (
    common_reference_point,
    edp_of_best_design,
    edp_overhead,
    phv_gain,
    speedup_factor,
)
from repro.experiments.runner import compare_algorithms
from repro.moo.result import OptimizationResult
from repro.simulation.simulator import NocSimulator
from repro.workloads.registry import get_workload

#: Baselines MOELA is compared against in Tables I/II and Fig. 3.
BASELINES: tuple[str, ...] = ("MOEA/D", "MOOS")


@dataclass
class ComparisonCell:
    """One (application, baseline, scenario) cell of a table."""

    application: str
    baseline: str
    num_objectives: int
    value: float


@dataclass
class TableResult:
    """A full table: rows per application plus per-column averages."""

    name: str
    cells: list[ComparisonCell] = field(default_factory=list)

    def value(self, application: str, baseline: str, num_objectives: int) -> float:
        """Look up one cell value."""
        for cell in self.cells:
            if (
                cell.application == application
                and cell.baseline == baseline
                and cell.num_objectives == num_objectives
            ):
                return cell.value
        raise KeyError((application, baseline, num_objectives))

    def applications(self) -> list[str]:
        """Applications present, in insertion order."""
        seen: list[str] = []
        for cell in self.cells:
            if cell.application not in seen:
                seen.append(cell.application)
        return seen

    def columns(self) -> list[tuple[str, int]]:
        """Distinct ``(baseline, num_objectives)`` columns, in insertion order."""
        seen: list[tuple[str, int]] = []
        for cell in self.cells:
            key = (cell.baseline, cell.num_objectives)
            if key not in seen:
                seen.append(key)
        return seen

    def column_average(self, baseline: str, num_objectives: int) -> float:
        """Average over applications of one column."""
        values = [
            cell.value
            for cell in self.cells
            if cell.baseline == baseline and cell.num_objectives == num_objectives
        ]
        return float(np.mean(values)) if values else float("nan")


# ---------------------------------------------------------------------- #
# Shared run cache
# ---------------------------------------------------------------------- #
RunMap = dict[tuple[str, int], dict[str, OptimizationResult]]


def run_all_comparisons(
    experiment: ExperimentConfig,
    algorithms: tuple[str, ...] = ("MOELA",) + BASELINES,
    progress: Callable[[str], None] | None = None,
) -> RunMap:
    """Run every (application, scenario) comparison once and cache the results.

    Both tables and the figure consume the same runs, matching the paper
    (Table I/II/Fig. 3 all come from the same search campaigns).
    """
    runs: RunMap = {}
    for application in experiment.applications:
        for num_objectives in experiment.objective_counts:
            if progress is not None:
                progress(f"running {application} / {num_objectives}-obj")
            runs[(application, num_objectives)] = compare_algorithms(
                list(algorithms), experiment, application, num_objectives
            )
    return runs


# ---------------------------------------------------------------------- #
# Table I — speed-up of MOELA over the baselines
# ---------------------------------------------------------------------- #
def build_table1(
    experiment: ExperimentConfig,
    runs: RunMap | None = None,
    measure: str = "evaluations",
) -> TableResult:
    """Table I: speed-up factor of MOELA vs MOEA/D and MOOS per app and scenario."""
    runs = runs if runs is not None else run_all_comparisons(experiment)
    table = TableResult(name="Table I: speed-up of MOELA")
    for baseline in BASELINES:
        for num_objectives in experiment.objective_counts:
            for application in experiment.applications:
                results = runs[(application, num_objectives)]
                reference = common_reference_point(list(results.values()))
                value = speedup_factor(
                    results[baseline], results["MOELA"], reference, measure=measure
                )
                table.cells.append(
                    ComparisonCell(application, baseline, num_objectives, value)
                )
    return table


# ---------------------------------------------------------------------- #
# Table II — PHV gain of MOELA over the baselines
# ---------------------------------------------------------------------- #
def build_table2(experiment: ExperimentConfig, runs: RunMap | None = None) -> TableResult:
    """Table II: PHV gain (%) of MOELA vs MOEA/D and MOOS at the stop budget."""
    runs = runs if runs is not None else run_all_comparisons(experiment)
    table = TableResult(name="Table II: PHV gain of MOELA (%)")
    for baseline in BASELINES:
        for num_objectives in experiment.objective_counts:
            for application in experiment.applications:
                results = runs[(application, num_objectives)]
                reference = common_reference_point(list(results.values()))
                value = 100.0 * phv_gain(results["MOELA"], results[baseline], reference)
                table.cells.append(
                    ComparisonCell(application, baseline, num_objectives, value)
                )
    return table


# ---------------------------------------------------------------------- #
# Fig. 3 — EDP overhead of the baselines relative to MOELA (5-obj)
# ---------------------------------------------------------------------- #
def build_figure3(
    experiment: ExperimentConfig,
    runs: RunMap | None = None,
    num_objectives: int = 5,
) -> TableResult:
    """Fig. 3: EDP overhead (%) of MOEA/D and MOOS designs vs MOELA designs.

    Uses the 5-objective runs (or the largest available scenario) and the
    paper's thermal-threshold design-selection rule.
    """
    runs = runs if runs is not None else run_all_comparisons(experiment)
    available = sorted({objectives for _, objectives in runs})
    if num_objectives not in available:
        num_objectives = available[-1]
    figure = TableResult(name=f"Fig. 3: EDP overhead vs MOELA ({num_objectives}-obj, %)")
    for application in experiment.applications:
        results = runs[(application, num_objectives)]
        workload = get_workload(application, experiment.platform, seed=experiment.seed)
        simulator = NocSimulator(workload)
        moela_edp = edp_of_best_design(results["MOELA"], workload, simulator=simulator)
        for baseline in BASELINES:
            baseline_edp = edp_of_best_design(results[baseline], workload, simulator=simulator)
            figure.cells.append(
                ComparisonCell(
                    application,
                    baseline,
                    num_objectives,
                    100.0 * edp_overhead(baseline_edp, moela_edp),
                )
            )
    return figure


# ---------------------------------------------------------------------- #
# Text rendering
# ---------------------------------------------------------------------- #
def format_table(table: TableResult, value_format: str = "{:8.2f}") -> str:
    """Render a table with applications as rows and (baseline, scenario) columns."""
    columns = table.columns()
    header_cells = [f"{baseline} {objectives}-obj" for baseline, objectives in columns]
    width = max(12, max((len(h) for h in header_cells), default=12) + 2)
    lines = [table.name, ""]
    lines.append("App".ljust(10) + "".join(h.rjust(width) for h in header_cells))
    for application in table.applications():
        row = [application.ljust(10)]
        for baseline, objectives in columns:
            row.append(value_format.format(table.value(application, baseline, objectives)).rjust(width))
        lines.append("".join(row))
    average_row = ["Average".ljust(10)]
    for baseline, objectives in columns:
        average_row.append(value_format.format(table.column_average(baseline, objectives)).rjust(width))
    lines.append("".join(average_row))
    return "\n".join(lines)


def format_figure3(figure: TableResult) -> str:
    """Render the Fig. 3 data as a text table (EDP overhead in %)."""
    return format_table(figure, value_format="{:8.2f}")
