"""Robustness analytics over a fault-scenario campaign grid.

Answers the question the nominal tables cannot: *how much does a search's
Pareto front degrade when the platform does?*  Both analyses here are pure
readers in the :func:`repro.experiments.tables.aggregate_campaign` mold —
they fold the finished shards (loose or compacted) of a campaign that ran a
``scenario_models`` axis, and never re-run a cell.

Two artefacts are produced:

* a **sensitivity map** (:func:`sensitivity_map`) — for every
  ``(algorithm, application, objective-count)`` group, the relative change of
  each objective's best achieved value under every fault scenario versus the
  identity baseline, plus finite-difference derivatives along single-parameter
  scenario sweeps (e.g. ``link_failure(k=1..3)`` yields ``d objective / d k``);
* a **robustness certificate** (:func:`robustness_certificate`) — the
  worst-case and quantile degradation of each algorithm's Pareto-front
  hypervolume over the whole fault grid, measured against a reference point
  shared by the identity and faulted fronts of each group.

Both require the campaign to include the ``identity`` scenario — degradation
is meaningless without the nominal baseline — and raise a descriptive
``ValueError`` otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Any

import numpy as np

from repro.experiments.runner import load_campaign_results
from repro.moo.hypervolume import reference_point_from
from repro.moo.result import OptimizationResult
from repro.objectives.evaluator import scenario_for
from repro.scenarios.registry import parse_scenario

#: Group key: (algorithm, application, num_objectives).
GroupKey = tuple[str, str, int]


@dataclass(frozen=True)
class SensitivityEntry:
    """Relative change of one objective under one scenario vs identity."""

    algorithm: str
    application: str
    num_objectives: int
    scenario: str
    objective: str
    baseline: float
    value: float

    @property
    def relative_delta(self) -> float:
        """``(value - baseline) / |baseline|`` (positive = objective got worse)."""
        if self.baseline == 0.0:
            return float("inf") if self.value > 0 else 0.0
        return (self.value - self.baseline) / abs(self.baseline)


@dataclass(frozen=True)
class SweepDerivative:
    """Finite-difference sensitivity along a single-parameter scenario sweep."""

    algorithm: str
    application: str
    num_objectives: int
    kind: str
    parameter: str
    objective: str
    #: Sorted ``(parameter value, best objective value)`` sweep points.
    points: tuple[tuple[float, float], ...]

    @property
    def finite_differences(self) -> tuple[float, ...]:
        """``d objective / d parameter`` between consecutive sweep points."""
        deltas = []
        for (p0, v0), (p1, v1) in zip(self.points, self.points[1:]):
            step = p1 - p0
            deltas.append((v1 - v0) / step if step else float("nan"))
        return tuple(deltas)


@dataclass
class SensitivityMap:
    """Per-objective scenario sensitivities of one campaign directory."""

    output_dir: Path
    scenarios: tuple[str, ...]
    entries: list[SensitivityEntry] = field(default_factory=list)
    sweeps: list[SweepDerivative] = field(default_factory=list)


@dataclass(frozen=True)
class DegradationRecord:
    """PHV degradation of one (group, scenario) pair versus identity."""

    algorithm: str
    application: str
    num_objectives: int
    scenario: str
    phv_identity: float
    phv_scenario: float

    @property
    def degradation(self) -> float:
        """Fractional PHV loss under the scenario (positive = worse front)."""
        if self.phv_identity <= 0.0:
            return float("nan")
        return (self.phv_identity - self.phv_scenario) / self.phv_identity


@dataclass
class RobustnessCertificate:
    """Worst-case / quantile PHV degradation of a campaign's fault grid."""

    output_dir: Path
    scenarios: tuple[str, ...]
    quantiles: tuple[float, ...]
    records: list[DegradationRecord] = field(default_factory=list)

    def per_algorithm(self) -> dict[str, dict[str, float]]:
        """``{algorithm: {worst_case, mean, q<P>..., cells}}`` over the grid."""
        grouped: dict[str, list[float]] = {}
        for record in self.records:
            value = record.degradation
            if np.isnan(value):
                continue
            grouped.setdefault(record.algorithm, []).append(value)
        summary: dict[str, dict[str, float]] = {}
        for algorithm in sorted(grouped):
            values = np.asarray(grouped[algorithm], dtype=np.float64)
            stats = {
                "worst_case": float(values.max()),
                "mean": float(values.mean()),
                "cells": float(len(values)),
            }
            for q in self.quantiles:
                stats[f"q{int(round(100 * q))}"] = float(np.quantile(values, q))
            summary[algorithm] = stats
        return summary

    def worst_case(self) -> "DegradationRecord | None":
        """The single worst (group, scenario) degradation, or None if empty."""
        valid = [r for r in self.records if not np.isnan(r.degradation)]
        if not valid:
            return None
        return max(valid, key=lambda r: r.degradation)


# ---------------------------------------------------------------------- #
# Shard collection
# ---------------------------------------------------------------------- #
def _collect(output_dir: "str | Path") -> dict[GroupKey, dict[str, OptimizationResult]]:
    """Completed results grouped ``(algorithm, app, m) -> {scenario: result}``."""
    groups: dict[GroupKey, dict[str, OptimizationResult]] = {}
    for cell, result in load_campaign_results(output_dir):
        key = (cell.algorithm, cell.application, cell.num_objectives)
        groups.setdefault(key, {})[cell.scenario] = result
    return groups


def _require_identity(
    groups: dict[GroupKey, dict[str, OptimizationResult]], output_dir: Path
) -> None:
    if not groups:
        raise ValueError(f"no completed shards found under {output_dir}")
    if not any("identity" in by_scenario for by_scenario in groups.values()):
        raise ValueError(
            f"campaign under {output_dir} has no completed 'identity' cells; "
            "robustness analyses need the nominal baseline — add 'identity' to "
            "the experiment's scenario_models"
        )


def _best_values(result: OptimizationResult) -> "np.ndarray | None":
    """Per-objective best (minimum) over the final front, or None when empty."""
    if result.objectives.size == 0:
        return None
    return np.asarray(result.objectives, dtype=np.float64).min(axis=0)


def _group_fronts(by_scenario: dict[str, OptimizationResult]) -> list[np.ndarray]:
    fronts = [r.objectives for r in by_scenario.values() if r.objectives.size]
    return fronts


# ---------------------------------------------------------------------- #
# Sensitivity map
# ---------------------------------------------------------------------- #
def _numeric_sweeps(scenarios: list[str]) -> dict[tuple[str, str], list[tuple[float, str]]]:
    """Detect single-parameter sweeps among the non-identity scenario keys.

    Returns ``{(kind, parameter): [(value, scenario_key), ...]}`` for every
    model kind whose instances differ in exactly one numeric field (all other
    fields equal), sorted by the varying value.
    """
    models = [(key, parse_scenario(key)) for key in scenarios if key != "identity"]
    by_kind: dict[str, list[tuple[str, Any]]] = {}
    for key, model in models:
        by_kind.setdefault(model.kind, []).append((key, model))
    sweeps: dict[tuple[str, str], list[tuple[float, str]]] = {}
    for kind, group in by_kind.items():
        if len(group) < 2:
            continue
        field_names = [f.name for f in dataclass_fields(group[0][1])]
        varying = [
            name
            for name in field_names
            if len({getattr(model, name) for _, model in group}) > 1
        ]
        if len(varying) != 1:
            continue
        parameter = varying[0]
        values = [getattr(model, parameter) for _, model in group]
        if not all(isinstance(v, (int, float)) for v in values):
            continue
        points = sorted((float(getattr(model, parameter)), key) for key, model in group)
        sweeps[(kind, parameter)] = points
    return sweeps


def sensitivity_map(output_dir: "str | Path") -> SensitivityMap:
    """Per-parameter / per-scenario objective sensitivities from finished shards.

    For every ``(algorithm, application, objective-count)`` group that
    completed both its identity cell and at least one faulted cell, records
    the relative change of each objective's best achieved value, and — when
    the scenario grid contains a single-parameter sweep of one model kind —
    the finite-difference derivative of each objective along that sweep.
    """
    output_dir = Path(output_dir)
    groups = _collect(output_dir)
    _require_identity(groups, output_dir)
    scenarios = tuple(
        sorted({scenario for by_scenario in groups.values() for scenario in by_scenario})
    )
    result = SensitivityMap(output_dir=output_dir, scenarios=scenarios)
    for (algorithm, application, m), by_scenario in sorted(groups.items()):
        baseline_result = by_scenario.get("identity")
        if baseline_result is None:
            continue
        baseline = _best_values(baseline_result)
        if baseline is None:
            continue
        names = scenario_for(m).objectives
        sweep_values: dict[tuple[str, str], dict[str, dict[str, float]]] = {}
        for scenario, scenario_result in sorted(by_scenario.items()):
            if scenario == "identity":
                continue
            best = _best_values(scenario_result)
            if best is None:
                continue
            for objective, base_value, value in zip(names, baseline, best):
                result.entries.append(
                    SensitivityEntry(
                        algorithm=algorithm,
                        application=application,
                        num_objectives=m,
                        scenario=scenario,
                        objective=objective,
                        baseline=float(base_value),
                        value=float(value),
                    )
                )
        for (kind, parameter), points in _numeric_sweeps(list(by_scenario)).items():
            per_objective: dict[str, list[tuple[float, float]]] = {n: [] for n in names}
            for value, scenario_key in points:
                best = _best_values(by_scenario[scenario_key])
                if best is None:
                    continue
                for objective, best_value in zip(names, best):
                    per_objective[objective].append((value, float(best_value)))
            for objective, sweep_points in per_objective.items():
                if len(sweep_points) >= 2:
                    result.sweeps.append(
                        SweepDerivative(
                            algorithm=algorithm,
                            application=application,
                            num_objectives=m,
                            kind=kind,
                            parameter=parameter,
                            objective=objective,
                            points=tuple(sweep_points),
                        )
                    )
    return result


# ---------------------------------------------------------------------- #
# Robustness certificate
# ---------------------------------------------------------------------- #
def robustness_certificate(
    output_dir: "str | Path", quantiles: tuple[float, ...] = (0.5, 0.9)
) -> RobustnessCertificate:
    """Worst-case / quantile Pareto-front degradation over the fault grid.

    For each ``(algorithm, application, objective-count)`` group, the identity
    front and every faulted front share one hypervolume reference point (built
    from the union of the group's final fronts), and each scenario's
    degradation is the fractional PHV it loses versus identity.  The
    certificate aggregates those degradations per algorithm into worst-case,
    mean and the requested ``quantiles``.
    """
    output_dir = Path(output_dir)
    if not quantiles or any(not 0.0 <= q <= 1.0 for q in quantiles):
        raise ValueError(f"quantiles must lie in [0, 1], got {quantiles!r}")
    groups = _collect(output_dir)
    _require_identity(groups, output_dir)
    scenarios = tuple(
        sorted({scenario for by_scenario in groups.values() for scenario in by_scenario})
    )
    certificate = RobustnessCertificate(
        output_dir=output_dir, scenarios=scenarios, quantiles=tuple(quantiles)
    )
    for (algorithm, application, m), by_scenario in sorted(groups.items()):
        identity = by_scenario.get("identity")
        if identity is None or identity.objectives.size == 0:
            continue
        fronts = _group_fronts(by_scenario)
        reference = reference_point_from(np.vstack(fronts))
        phv_identity = identity.final_hypervolume(reference)
        for scenario, scenario_result in sorted(by_scenario.items()):
            if scenario == "identity" or scenario_result.objectives.size == 0:
                continue
            certificate.records.append(
                DegradationRecord(
                    algorithm=algorithm,
                    application=application,
                    num_objectives=m,
                    scenario=scenario,
                    phv_identity=float(phv_identity),
                    phv_scenario=float(scenario_result.final_hypervolume(reference)),
                )
            )
    return certificate


# ---------------------------------------------------------------------- #
# Text rendering
# ---------------------------------------------------------------------- #
def format_sensitivity_map(sensitivity: SensitivityMap) -> str:
    """Render the sensitivity map as a text report."""
    lines = [f"Sensitivity map — {sensitivity.output_dir}"]
    lines.append(f"Scenario grid: {', '.join(sensitivity.scenarios)}")
    if not sensitivity.entries:
        lines.append("(no faulted cells with completed identity baselines)")
        return "\n".join(lines)
    current: "tuple[str, str, int] | None" = None
    for entry in sensitivity.entries:
        group = (entry.algorithm, entry.application, entry.num_objectives)
        if group != current:
            current = group
            lines.append("")
            lines.append(f"{entry.algorithm} / {entry.application} / {entry.num_objectives}-obj")
        lines.append(
            f"  {entry.scenario:<52} {entry.objective:<18} "
            f"{100.0 * entry.relative_delta:+8.2f}%"
        )
    if sensitivity.sweeps:
        lines.append("")
        lines.append("Finite-difference sweeps (d objective / d parameter):")
        for sweep in sensitivity.sweeps:
            deltas = ", ".join(f"{d:+.4g}" for d in sweep.finite_differences)
            lines.append(
                f"  {sweep.algorithm} / {sweep.application} / {sweep.num_objectives}-obj  "
                f"{sweep.kind}.{sweep.parameter} -> {sweep.objective}: [{deltas}]"
            )
    return "\n".join(lines)


def format_certificate(certificate: RobustnessCertificate) -> str:
    """Render the robustness certificate as a text report."""
    lines = [f"Robustness certificate — {certificate.output_dir}"]
    lines.append(f"Scenario grid: {', '.join(certificate.scenarios)}")
    summary = certificate.per_algorithm()
    if not summary:
        lines.append("(no faulted cells with completed identity baselines)")
        return "\n".join(lines)
    lines.append("")
    lines.append("PHV degradation vs identity (positive = worse front):")
    quantile_names = [f"q{int(round(100 * q))}" for q in certificate.quantiles]
    header = f"  {'algorithm':<12} {'worst':>9} {'mean':>9}" + "".join(
        f" {name:>9}" for name in quantile_names
    ) + f" {'cells':>6}"
    lines.append(header)
    for algorithm, stats in summary.items():
        row = f"  {algorithm:<12} {100 * stats['worst_case']:>8.2f}% {100 * stats['mean']:>8.2f}%"
        for name in quantile_names:
            row += f" {100 * stats[name]:>8.2f}%"
        row += f" {int(stats['cells']):>6}"
        lines.append(row)
    worst = certificate.worst_case()
    if worst is not None:
        lines.append("")
        lines.append(
            f"Worst case: {100 * worst.degradation:.2f}% "
            f"({worst.algorithm}, {worst.application}, {worst.num_objectives}-obj, "
            f"{worst.scenario})"
        )
    return "\n".join(lines)
