"""Shard compaction: bound a campaign directory for million-design campaigns.

A finished paper-scale campaign leaves one JSON shard per grid cell; at
million-design scale that is thousands of multi-megabyte files and a
directory listing that dominates every resume scan.  :func:`compact_campaign`
rolls the completed shards into a single ``rollup.jsonl`` — one compact JSON
line per cell — and records a byte-range index in the manifest's ``rollup``
record, so any single cell is still read with one ``seek`` + one parse, never
a full load of the rollup.  Every reader in
:mod:`repro.experiments.runner` (:func:`~repro.experiments.runner.load_campaign_results`,
:func:`~repro.experiments.runner.campaign_status`, the resume scan) and the
table aggregation in :mod:`repro.experiments.tables` consult the rollup
transparently, so ``aggregate_campaign`` / ``repro tables`` produce output
identical to loose shards and a resumed campaign skips compacted cells
exactly as it skips loose ones.

Crash ordering: each compaction writes a *new generation* of the rollup
(``rollup.jsonl``, then ``rollup.2.jsonl``, ``rollup.3.jsonl``, ...) — never
renaming over the file the current manifest indexes — then atomically
rewrites the manifest to point at the new generation, and only then deletes
the loose shards and the previous generation's file.  A crash between any
two steps leaves a readable directory: at worst an orphaned, unreferenced
rollup file or already-indexed loose shards, both harmless and cleaned up by
later compactions.  Re-running compaction is incremental: cells already in
the rollup are carried over (one cell in memory at a time), newly finished
loose shards are folded in, and a fresh loose shard for a previously
compacted cell (a re-run) supersedes its stale rollup copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.experiments.runner import (
    MANIFEST_NAME,
    ROLLUP_FORMAT,
    ROLLUP_NAME,
    CampaignCell,
    cell_payload,
    load_manifest,
)
from repro.utils.serialization import json_line, write_json_atomic


@dataclass
class CompactionSummary:
    """Outcome of one :func:`compact_campaign` invocation."""

    output_dir: Path
    rollup_path: Path
    compacted: list[str]  # cell keys newly folded in from loose shards
    carried_over: list[str]  # cell keys already in the previous rollup
    pending: list[str]  # incomplete cells (no shard anywhere yet)
    removed_shards: list[str]  # loose shard file names deleted after indexing

    @property
    def total(self) -> int:
        """Number of cells in the rollup after compaction."""
        return len(self.compacted) + len(self.carried_over)


def compact_campaign(output_dir: "str | Path") -> CompactionSummary:
    """Roll every completed shard of a campaign into the indexed rollup file.

    Reads the manifest's cell grid, streams each completed cell's payload —
    fresh loose shard first, previous rollup entry otherwise — into a new
    ``rollup.jsonl`` (one cell in memory at a time), atomically replaces the
    rollup, rewrites the manifest with the new byte-range index, and then
    deletes the loose shards that are now indexed.  Incomplete cells are left
    for a later resume + compaction round.  Safe to re-run at any time,
    including on an already-compacted or still-running directory.
    """
    output_dir = Path(output_dir)
    manifest = load_manifest(output_dir)
    cells = [CampaignCell.from_dict(entry) for entry in manifest["cells"]]
    previous = manifest.get("rollup")

    # Each compaction writes a fresh generation; the file the current
    # manifest indexes is never overwritten, so a crash before the manifest
    # rewrite cannot corrupt the live index.
    generation = int(previous.get("generation", 1)) + 1 if previous else 1
    rollup_path = output_dir / (
        ROLLUP_NAME if generation == 1 else f"rollup.{generation}.jsonl"
    )
    previous_path = output_dir / previous["file"] if previous else None
    tmp_path = rollup_path.with_name(rollup_path.name + ".tmp")
    index: dict[str, list[int]] = {}
    compacted: list[str] = []
    carried_over: list[str] = []
    pending: list[str] = []
    removable: list[Path] = []

    with open(tmp_path, "wb") as rollup:
        offset = 0
        for cell in cells:
            # cell_payload prefers the loose shard, so a re-run cell's fresh
            # result replaces its stale rollup copy here.
            payload = cell_payload(output_dir, cell, previous)
            if payload is None:
                pending.append(cell.key)
                continue
            line = json_line(payload)
            rollup.write(line)
            # Index the payload bytes only (sans newline): readers seek and
            # parse exactly that range.
            index[cell.key] = [offset, len(line) - 1]
            offset += len(line)
            shard = output_dir / cell.shard_name
            if shard.exists():
                compacted.append(cell.key)
                removable.append(shard)
            else:
                carried_over.append(cell.key)

    if not index:
        # Nothing completed yet: leave the directory untouched.
        tmp_path.unlink()
        return CompactionSummary(
            output_dir=output_dir,
            rollup_path=rollup_path,
            compacted=[],
            carried_over=[],
            pending=pending,
            removed_shards=[],
        )

    tmp_path.replace(rollup_path)
    manifest["rollup"] = {
        "format": ROLLUP_FORMAT,
        "file": rollup_path.name,
        "generation": generation,
        "cells": index,
    }
    write_json_atomic(manifest, output_dir / MANIFEST_NAME)

    removed: list[str] = []
    for shard in removable:
        try:
            shard.unlink()
            removed.append(shard.name)
        except OSError:
            # A shard that refuses to die is harmless: the rollup is already
            # indexed and loose-shard-wins semantics keep reads consistent.
            continue
    if previous_path is not None and previous_path != rollup_path:
        try:
            previous_path.unlink()
        except OSError:
            pass  # the superseded generation is unreferenced, hence harmless

    return CompactionSummary(
        output_dir=output_dir,
        rollup_path=rollup_path,
        compacted=compacted,
        carried_over=carried_over,
        pending=pending,
        removed_shards=removed,
    )
