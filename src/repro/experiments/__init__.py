"""Experiment harness reproducing the paper's evaluation (Tables I-II, Fig. 3)."""

from repro.experiments.compaction import CompactionSummary, compact_campaign
from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.metrics import (
    common_reference_point,
    edp_of_best_design,
    phv_gain,
    select_design_by_thermal_threshold,
    speedup_factor,
)
from repro.experiments.runner import (
    CampaignCell,
    CampaignExecution,
    CampaignSummary,
    campaign_cells,
    campaign_status,
    compare_algorithms,
    load_campaign_results,
    load_manifest,
    make_problem,
    run_algorithm,
    run_campaign,
    submit_campaign,
)
from repro.experiments.tables import (
    build_figure3,
    build_table1,
    build_table2,
    format_figure3,
    format_table,
)

__all__ = [
    "CampaignCell",
    "CampaignConfig",
    "CampaignExecution",
    "CampaignSummary",
    "CompactionSummary",
    "ExperimentConfig",
    "compact_campaign",
    "submit_campaign",
    "build_figure3",
    "campaign_cells",
    "campaign_status",
    "load_campaign_results",
    "load_manifest",
    "run_campaign",
    "build_table1",
    "build_table2",
    "common_reference_point",
    "compare_algorithms",
    "edp_of_best_design",
    "format_figure3",
    "format_table",
    "make_problem",
    "phv_gain",
    "run_algorithm",
    "select_design_by_thermal_threshold",
    "speedup_factor",
]
