"""Comparison metrics of Section V.C: speed-up factor, PHV gain and EDP overhead."""

from __future__ import annotations

import numpy as np

from repro.moo.hypervolume import reference_point_from
from repro.moo.result import OptimizationResult
from repro.noc.design import NocDesign
from repro.simulation.simulator import NocSimulator
from repro.workloads.workload import Workload


def common_reference_point(results: list[OptimizationResult], margin: float = 0.1) -> np.ndarray:
    """A hypervolume reference point shared by several runs of the same problem.

    Built from the union of every snapshot front of every run, so each run's
    entire history lies inside the reference box and PHV values are directly
    comparable across algorithms.
    """
    if not results:
        raise ValueError("at least one result is required")
    fronts = []
    for result in results:
        for snapshot in result.history:
            if snapshot.front.size:
                fronts.append(snapshot.front)
        if result.objectives.size:
            fronts.append(result.objectives)
    if not fronts:
        raise ValueError("the results contain no objective vectors")
    return reference_point_from(np.vstack(fronts), margin=margin)


def speedup_factor(
    competitor: OptimizationResult,
    moela: OptimizationResult,
    reference: np.ndarray,
    measure: str = "evaluations",
    window: int = 5,
    tolerance: float = 0.005,
) -> float:
    """Speed-up of MOELA over a competitor (Table I definition).

    ``T_convergence`` is the competitor's effort when its PHV improvement
    drops below ``tolerance`` over ``window`` iterations; ``T_MOELA`` is the
    effort MOELA needs to reach the *same* PHV.  When MOELA never reaches the
    competitor's converged PHV, its full effort is used (the ratio then
    understates MOELA, mirroring the paper's conservative treatment).
    """
    competitor_effort, competitor_phv = competitor.convergence_effort(
        reference, window=window, tolerance=tolerance, measure=measure
    )
    moela_effort = moela.effort_to_reach(competitor_phv, reference, measure=measure)
    if moela_effort is None:
        if not moela.history:
            return 0.0
        last = moela.history[-1]
        moela_effort = float(
            last.evaluations
            if measure == "evaluations"
            else last.elapsed_seconds
            if measure == "seconds"
            else last.iteration
        )
    if moela_effort <= 0:
        moela_effort = 1.0
    return float(competitor_effort / moela_effort)


def phv_gain(
    moela: OptimizationResult, competitor: OptimizationResult, reference: np.ndarray
) -> float:
    """Relative PHV improvement of MOELA over a competitor at the stop budget (Table II)."""
    moela_phv = moela.final_hypervolume(reference)
    competitor_phv = competitor.final_hypervolume(reference)
    if competitor_phv <= 0:
        return float("inf") if moela_phv > 0 else 0.0
    return float((moela_phv - competitor_phv) / competitor_phv)


# ---------------------------------------------------------------------- #
# EDP selection (Fig. 3)
# ---------------------------------------------------------------------- #
def select_design_by_thermal_threshold(
    result: OptimizationResult,
    workload: Workload,
    threshold_fraction: float = 0.05,
    simulator: NocSimulator | None = None,
) -> tuple[NocDesign, dict[str, float]]:
    """Pick the design used for the Fig. 3 EDP comparison.

    From the run's final population, the design with the lowest peak
    temperature defines a temperature threshold 5 % above it; among designs
    within the threshold, the one with the lowest EDP is selected (falling
    back to the coolest design when none qualifies, per the paper).
    Returns the design and its simulation report.
    """
    if not result.designs:
        raise ValueError("the result contains no designs")
    simulator = simulator if simulator is not None else NocSimulator(workload)
    reports = [simulator.simulate(design) for design in result.designs]
    temperatures = np.array([r.peak_temperature for r in reports])
    coolest = float(temperatures.min())
    threshold = coolest * (1.0 + threshold_fraction)
    eligible = [i for i, t in enumerate(temperatures) if t <= threshold]
    if not eligible:
        eligible = [int(np.argmin(temperatures))]
    edps = np.array([reports[i].edp for i in eligible])
    chosen = eligible[int(np.argmin(edps))]
    return result.designs[chosen], reports[chosen].as_dict()


def edp_of_best_design(
    result: OptimizationResult,
    workload: Workload,
    threshold_fraction: float = 0.05,
    simulator: NocSimulator | None = None,
) -> float:
    """EDP of the design selected by :func:`select_design_by_thermal_threshold`."""
    _, report = select_design_by_thermal_threshold(
        result, workload, threshold_fraction=threshold_fraction, simulator=simulator
    )
    return float(report["edp"])


def edp_overhead(competitor_edp: float, moela_edp: float) -> float:
    """Relative EDP overhead of a competitor's design versus MOELA's (Fig. 3)."""
    if moela_edp <= 0:
        raise ValueError("MOELA EDP must be > 0")
    return float((competitor_edp - moela_edp) / moela_edp)
