"""Ablation studies of MOELA's design choices (Section IV discussion).

The paper motivates three design decisions that this module isolates:

* **ML guide** — starting points chosen by the learned ``Eval`` model instead
  of at random (``no-ml-guide`` keeps ``iter_early`` at infinity so starts
  stay random forever);
* **local search** — the Eq.-8 greedy descent stage itself (``no-local-search``
  reduces MOELA to its decomposition EA, i.e. MOEA/D);
* **EA stage** — the diversity-preserving evolutionary pass (``no-ea`` runs
  only ML-guided local searches, i.e. a MOO-STAGE-like search);
* **scalarisation** — Eq. 8 (weighted sum) versus Eq. 9 (Tchebycheff) inside
  the local search.

Each variant is runnable through :func:`run_ablation`, which returns the final
PHV of every variant under a shared reference point so their contribution to
MOELA's quality can be ranked.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import MOELAConfig
from repro.core.moela import MOELA
from repro.core.problem import NocDesignProblem
from repro.experiments.metrics import common_reference_point
from repro.moo.result import OptimizationResult
from repro.moo.scalarization import tchebycheff
from repro.moo.termination import Budget


@dataclass(frozen=True)
class AblationVariant:
    """One ablation configuration."""

    name: str
    description: str


#: The ablation variants reproduced by ``benchmarks/bench_ablation.py``.
ABLATION_VARIANTS: tuple[AblationVariant, ...] = (
    AblationVariant("full", "MOELA as published (ML guide + Eq.8 local search + EA)"),
    AblationVariant("no-ml-guide", "local-search starts chosen at random every iteration"),
    AblationVariant("no-local-search", "EA only (equivalent to MOEA/D)"),
    AblationVariant("no-ea", "ML-guided local search only (MOO-STAGE-like)"),
    AblationVariant("tchebycheff-ls", "local search minimises Eq. 9 instead of Eq. 8"),
)


class _NoEAMoela(MOELA):
    """MOELA variant whose EA stage is disabled (local search only)."""

    name = "MOELA(no-ea)"

    def step(self, iteration: int, budget: Budget) -> None:  # noqa: D102 - same contract as MOELA.step
        stop = lambda: budget.exhausted(iteration, self.evaluations, self.elapsed())  # noqa: E731
        for index in self._select_start_indices(iteration):
            if stop():
                return
            self._run_local_search(int(index))
        self.eval_model.train(self.training_set)


class _NoGuideMoela(MOELA):
    """MOELA variant that never uses the Eval model for start selection."""

    name = "MOELA(no-ml-guide)"

    def _select_start_indices(self, iteration: int) -> np.ndarray:  # noqa: D102
        n_local = min(self.config.n_local, self.population_size)
        return self.rng.choice(self.population_size, size=n_local, replace=False)


class _TchebycheffLSMoela(MOELA):
    """MOELA variant whose local search descends the Tchebycheff scalarisation (Eq. 9)."""

    name = "MOELA(tchebycheff-ls)"

    def _run_local_search(self, index: int) -> None:  # noqa: D102
        from repro.core.local_search import MoelaSearchOutcome
        from repro.core.ml_guide import TrainingSample
        from repro.moo.local_search import greedy_descent

        weight = self.weights[index]
        reference = self.reference
        scale = self.objective_scale()
        searcher = self.local_search

        def scalar_fn(_design, objectives):
            return tchebycheff(objectives, weight, reference, scale)

        result = greedy_descent(
            self.problem,
            self.designs[index],
            self.objectives[index],
            scalar_fn,
            max_steps=searcher.max_steps,
            neighbors_per_step=searcher.neighbors_per_step,
            patience=searcher.patience,
            rng=self.rng,
            evaluate=self.evaluate,
        )
        samples = tuple(
            TrainingSample(
                features=self.problem.features(point.design),
                weight=np.asarray(weight, dtype=np.float64).copy(),
                outcome=result.best_value,
            )
            for point in result.trajectory
        )
        outcome = MoelaSearchOutcome(
            design=result.best_design,
            objectives=result.best_objectives,
            value=result.best_value,
            improvement=result.improvement,
            samples=samples,
            evaluations=result.evaluations,
        )
        self.reference = np.minimum(self.reference, outcome.objectives)
        self._update_population(outcome.design, outcome.objectives, index)
        self._extend_training_set(outcome.samples)


def build_variant(
    variant: str, problem: NocDesignProblem, config: MOELAConfig, seed: int = 0
):
    """Instantiate the optimiser implementing one ablation variant."""
    if variant == "full":
        return MOELA(problem, config, rng=seed)
    if variant == "no-ml-guide":
        return _NoGuideMoela(problem, config, rng=seed)
    if variant == "no-local-search":
        ea_only = replace(config, n_local=1, local_search_steps=1, local_search_neighbors=1, iter_early=10**9)
        optimizer = MOELA(problem, ea_only, rng=seed)
        optimizer.name = "MOELA(no-local-search)"
        return optimizer
    if variant == "no-ea":
        return _NoEAMoela(problem, config, rng=seed)
    if variant == "tchebycheff-ls":
        return _TchebycheffLSMoela(problem, config, rng=seed)
    raise ValueError(
        f"unknown ablation variant {variant!r}; known: {[v.name for v in ABLATION_VARIANTS]}"
    )


def run_ablation(
    problem: NocDesignProblem,
    config: MOELAConfig,
    budget: Budget,
    variants: tuple[str, ...] = tuple(v.name for v in ABLATION_VARIANTS),
    seed: int = 0,
) -> dict[str, dict[str, float]]:
    """Run the requested ablation variants on one problem and summarise them.

    Returns a mapping ``variant -> {"phv": ..., "evaluations": ..., "seconds": ...}``
    where PHV uses a reference point shared by all variants.
    """
    results: dict[str, OptimizationResult] = {}
    for variant in variants:
        optimizer = build_variant(variant, problem, config, seed=seed)
        results[variant] = optimizer.run(budget)
    reference = common_reference_point(list(results.values()))
    summary: dict[str, dict[str, float]] = {}
    for variant, result in results.items():
        summary[variant] = {
            "phv": result.final_hypervolume(reference),
            "evaluations": float(result.evaluations),
            "seconds": result.elapsed_seconds,
            "pareto_size": float(len(result.pareto_front())),
        }
    return summary


def format_ablation(summary: dict[str, dict[str, float]]) -> str:
    """Render an ablation summary as a text table (PHV relative to the full variant)."""
    full_phv = summary.get("full", {}).get("phv", 0.0)
    lines = ["Ablation of MOELA design choices", ""]
    header = f"{'Variant':<22}{'PHV':>14}{'PHV vs full':>14}{'Evals':>10}{'Front':>8}"
    lines.append(header)
    for variant, stats in summary.items():
        relative = stats["phv"] / full_phv if full_phv > 0 else float("nan")
        lines.append(
            f"{variant:<22}{stats['phv']:>14.4g}{relative:>14.2%}{stats['evaluations']:>10.0f}"
            f"{stats['pareto_size']:>8.0f}"
        )
    return "\n".join(lines)
