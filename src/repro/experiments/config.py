"""Experiment configuration for the reproduction harness.

The paper's evaluation runs every algorithm for up to 48 hours on a 64-tile
platform with 1000 generations.  The reduced defaults here regenerate every
table and figure on a laptop in minutes while exercising exactly the same
code paths; the full-scale settings remain available via
:meth:`ExperimentConfig.paper_scale`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import MOELAConfig
from repro.noc.platform import PlatformConfig
from repro.noc.repair import RepairBudget
from repro.scenarios.registry import canonical_scenario_key
from repro.workloads.rodinia import RODINIA_APPLICATIONS


@dataclass(frozen=True)
class ExperimentConfig:
    """Settings shared by the table/figure reproduction runs.

    Parameters
    ----------
    platform:
        Platform configuration all designs are generated for.
    applications:
        Application names evaluated (Tables I/II use six Rodinia apps).
    objective_counts:
        The scenarios to evaluate (3, 4 and/or 5 objectives).
    population_size:
        Population / archive size for every algorithm.
    max_evaluations:
        Evaluation budget per run (the deterministic stand-in for ``T_stop``).
    moela:
        MOELA hyper-parameters.
    searches_per_iteration, local_search_steps, neighbors_per_step:
        Budgets for the MOOS baseline's local searches.
    scenario_models:
        Fault/scenario models evaluated as a grid axis (canonical keys, see
        :mod:`repro.scenarios`); the default single ``"identity"`` axis is
        the nominal, pre-scenario behaviour.  Keys are validated and
        canonicalised at construction, so a typo fails here rather than
        mid-campaign.
    seed:
        Base seed; per-(algorithm, app, scenario) seeds are derived from it.
    """

    platform: PlatformConfig = field(default_factory=PlatformConfig.small_3x3x3)
    applications: tuple[str, ...] = ("BFS", "BP", "GAU", "HOT", "PF", "SRAD")
    objective_counts: tuple[int, ...] = (3, 4, 5)
    population_size: int = 16
    max_evaluations: int = 1_200
    moela: MOELAConfig = field(default_factory=MOELAConfig.reduced)
    searches_per_iteration: int = 3
    local_search_steps: int = 6
    neighbors_per_step: int = 3
    scenario_models: tuple[str, ...] = ("identity",)
    seed: int = 7

    def __post_init__(self) -> None:
        unknown = [a for a in self.applications if a.upper() not in RODINIA_APPLICATIONS]
        if unknown:
            raise ValueError(f"unknown applications {unknown}; known: {RODINIA_APPLICATIONS}")
        if not self.objective_counts:
            raise ValueError("at least one objective count is required")
        if any(m not in (3, 4, 5) for m in self.objective_counts):
            raise ValueError("objective counts must be drawn from {3, 4, 5}")
        if self.population_size < 4:
            raise ValueError("population_size must be >= 4")
        if self.max_evaluations < 10:
            raise ValueError("max_evaluations must be >= 10")
        if not self.scenario_models:
            raise ValueError("at least one scenario model is required (use 'identity')")
        canonical = tuple(canonical_scenario_key(s) for s in self.scenario_models)
        if len(set(canonical)) != len(canonical):
            raise ValueError(f"duplicate scenario models in {self.scenario_models}")
        object.__setattr__(self, "scenario_models", canonical)

    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Very small settings for tests (single app, tiny platform)."""
        return cls(
            platform=PlatformConfig.tiny_2x2x2(),
            applications=("BFS",),
            objective_counts=(3,),
            population_size=6,
            max_evaluations=120,
            moela=MOELAConfig.smoke(),
            searches_per_iteration=2,
            local_search_steps=3,
            neighbors_per_step=2,
            seed=3,
        )

    @classmethod
    def reduced(cls) -> "ExperimentConfig":
        """Default laptop-scale settings used by the benchmark harness."""
        return cls()

    @classmethod
    def paper_scale(cls) -> "ExperimentConfig":
        """The paper's full-scale settings (hours to days of compute)."""
        return cls(
            platform=PlatformConfig.paper_4x4x4(),
            applications=("BFS", "BP", "GAU", "HOT", "PF", "SRAD"),
            objective_counts=(3, 4, 5),
            population_size=50,
            max_evaluations=2_000_000,
            moela=MOELAConfig.paper(),
            searches_per_iteration=5,
            local_search_steps=25,
            neighbors_per_step=4,
            seed=0,
        )


#: Platform size (in tiles) from which campaign cells switch the objective
#: evaluator's batch path to process-pool workers.  The threshold tracks the
#: *measured* break-even, not intuition.  The fork-once pool (persistent
#: primed workers, compact deduplicated chunk payloads, route-store
#: warm-starts) roughly halved the old per-task transport cost, but a
#: vectorized serial batch backed by the in-memory routing engine still wins
#: below 256 tiles: at 64 tiles a repair-bound 32-design batch runs ~0.6-0.8x
#: serial on one core, and placement-heavy broods are served from the engine
#: cache faster than any inter-process round-trip at every size.  256 tiles
#: (an 8x8x4 grid) is where repair/miss-bound batches carry enough Dijkstra
#: work per task for the pool to win on multi-core machines — enforced by the
#: CI perf gate ``test_big_grid_pool_speedup`` (>= 1.5x vs serial); see
#: ``bench_components.run_big_grid_bench``, the ``big_grid/*`` runs in
#: ``BENCH_routing.json`` and ``docs/performance.md``.  Re-measure there
#: before lowering this.
PARALLEL_EVALUATION_MIN_TILES: int = 256


@dataclass(frozen=True)
class CampaignConfig:
    """Settings for one sharded (algorithm x application x scenario) campaign.

    A campaign runs every cell of the grid defined by ``algorithms`` and the
    experiment's ``applications`` / ``objective_counts``, each with its own
    derived seed, and streams every cell's result to one JSON shard next to a
    manifest (see :func:`repro.experiments.runner.run_campaign`).

    Parameters
    ----------
    experiment:
        The shared experiment settings (platform, applications, scenarios,
        per-run budget, algorithm hyper-parameters).
    algorithms:
        Algorithm names to run; the empty tuple means every registered
        algorithm (:data:`repro.experiments.runner.ALGORITHMS`).
    max_workers:
        Size of the process pool the grid cells are fanned out over; ``1``
        runs cells inline in submission order.
    resume:
        When True, cells whose shard already exists and parses are skipped —
        re-running a killed campaign only executes the missing cells.
    parallel_evaluation:
        Forces the objective evaluator's process-pool batch path on (True) or
        off (False) inside each cell.  The default ``None`` auto-enables it
        for ``paper_4x4x4``-class platforms (>=
        :data:`PARALLEL_EVALUATION_MIN_TILES` tiles) when the campaign itself
        is not already fanning cells out over processes — nesting pools would
        oversubscribe the machine.
    routing_cache:
        Routes every cell's evaluation through the cross-design
        :class:`~repro.noc.routing_engine.RoutingEngine` route cache (the
        default); ``False`` is the escape hatch selecting the historical
        fresh-build-per-design path.  Each cell's hit/miss/repair counters are
        recorded in its shard and summarised in the campaign manifest.
    shared_routing_cache:
        Shares one :class:`~repro.noc.routing_engine.RoutingEnginePool`
        across every *inline* cell (``max_workers == 1``), so topologies one
        cell solved are cache hits for the next — the initial random
        population's all-pairs builds otherwise repeat per cell.  Cached
        tables are read-only and bit-identical to fresh builds, so shards
        differ from a cold-start campaign only in their cache counters.
        Pooled cells (``max_workers > 1``) each live in their own process and
        are unaffected; ``routing_warm_start`` is the cross-process analogue.
    routing_warm_start:
        Persists routing solutions to a ``routing_store`` directory next to
        the manifest (a bounded, content-keyed
        :class:`~repro.noc.route_store.RouteStore`), warm-starting cells in
        *other* processes — pool workers and resumed campaigns — from builds
        a sibling already paid for.  Off by default: the store writes files
        during evaluation, which small inline campaigns do not need.
    event_log:
        Appends every campaign event (shard starts/completions and, from
        every cell — pooled or inline — the per-iteration optimiser events)
        to a durable ``events.jsonl`` next to the manifest, and replays it
        into the caller's subscribers, so pooled campaigns stream the same
        events inline ones do (callbacks cannot cross the process-pool
        boundary; the log can).  Observation-only: seeded campaign results
        are bit-identical with the log on or off.  ``False`` falls back to
        direct in-process callbacks (pool workers then only report shard
        completions).
    repair_infeasible:
        Enables the opt-in directed feasibility repair path inside every
        cell's optimiser (see :mod:`repro.noc.repair`): infeasible brood
        members are run through a seeded repair walk before scoring instead
        of being discarded.  Off by default — seeded campaigns are
        bit-identical to pre-repair behaviour when off.  Each cell's repair
        counters (attempted / repaired / evaluations spent) are recorded in
        its shard and summarised in the campaign manifest.
    repair_max_rounds, repair_candidates_per_round, repair_max_evaluations:
        Budget of each repair walk (see
        :class:`~repro.noc.repair.RepairBudget`); only consulted when
        ``repair_infeasible`` is on.
    max_evaluations:
        Per-cell evaluation budget override; ``None`` uses the experiment's
        ``max_evaluations``.
    """

    experiment: ExperimentConfig = field(default_factory=ExperimentConfig.reduced)
    algorithms: tuple[str, ...] = ()
    max_workers: int = 1
    resume: bool = True
    parallel_evaluation: bool | None = None
    routing_cache: bool = True
    shared_routing_cache: bool = True
    routing_warm_start: bool = False
    event_log: bool = True
    repair_infeasible: bool = False
    repair_max_rounds: int = 4
    repair_candidates_per_round: int = 8
    repair_max_evaluations: int = 32
    max_evaluations: int | None = None

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        # RepairBudget owns the bounds validation; building one here makes a
        # bad repair configuration fail at construction, not mid-campaign.
        self.repair_budget()

    def repair_budget(self) -> RepairBudget:
        """The per-walk repair budget the cells run with (see ``repair_infeasible``)."""
        return RepairBudget(
            max_rounds=self.repair_max_rounds,
            candidates_per_round=self.repair_candidates_per_round,
            max_evaluations=self.repair_max_evaluations,
        )

    def resolve_parallel_evaluation(self) -> bool:
        """Whether cells should evaluate batches on a process pool."""
        if self.parallel_evaluation is not None:
            return self.parallel_evaluation
        large_platform = self.experiment.platform.num_tiles >= PARALLEL_EVALUATION_MIN_TILES
        return large_platform and self.max_workers == 1

    @property
    def cell_budget(self) -> int:
        """Evaluation budget applied to every cell."""
        return self.max_evaluations if self.max_evaluations is not None else self.experiment.max_evaluations

    @classmethod
    def smoke(cls) -> "CampaignConfig":
        """Tiny 2-algorithm x 2-application campaign (4 cells, seconds to run).

        This is the grid ``examples/run_campaign.py --smoke`` and the CI
        campaign smoke job execute end to end.
        """
        return cls(
            experiment=replace(ExperimentConfig.smoke(), applications=("BFS", "BP")),
            algorithms=("MOEA/D", "NSGA-II"),
            max_workers=1,
            max_evaluations=60,
        )
