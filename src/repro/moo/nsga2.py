"""NSGA-II: non-dominated-sorting genetic algorithm.

Deb et al. (2002).  Not part of the paper's headline comparison (MOEA/D and
MOOS are), but NSGA-II is repeatedly cited as the standard EA for manycore
design problems and is included as an additional baseline and for ablations.
"""

from __future__ import annotations

import numpy as np

from repro.moo.base import PopulationOptimizer
from repro.moo.dominance import crowding_distance, fast_non_dominated_sort
from repro.moo.problem import Problem
from repro.moo.termination import Budget
from repro.utils.rng import RngLike


class NSGA2(PopulationOptimizer):
    """NSGA-II with binary tournament selection and crowded elitist survival."""

    name = "NSGA-II"

    def __init__(
        self,
        problem: Problem,
        population_size: int = 50,
        crossover_probability: float = 0.9,
        mutation_probability: float = 0.3,
        rng: RngLike = None,
        batch_evaluation: bool = True,
    ):
        super().__init__(problem, population_size, rng, batch_evaluation=batch_evaluation)
        if not (0.0 <= crossover_probability <= 1.0):
            raise ValueError("crossover_probability must lie in [0, 1]")
        if not (0.0 <= mutation_probability <= 1.0):
            raise ValueError("mutation_probability must lie in [0, 1]")
        self.crossover_probability = crossover_probability
        self.mutation_probability = mutation_probability
        self._ranks: np.ndarray | None = None
        self._crowding: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Algorithm
    # ------------------------------------------------------------------ #
    def initialize(self) -> None:
        super().initialize()
        self._refresh_rank_and_crowding()

    def step(self, iteration: int, budget: Budget) -> None:
        """One generation: mate a whole offspring brood, score it in one batch.

        The brood is generated first (tournament draws, crossover, mutation —
        all RNG consumption) and then scored through a single
        :meth:`~repro.moo.base.PopulationOptimizer.evaluate_batch` call, so the
        problem's vectorised evaluation path amortises routing and caching
        across the generation.  :meth:`brood_limit` trims the brood when the
        evaluation budget would exhaust mid-generation, mirroring the per-child
        budget check of the scalar reference path
        (:meth:`step_reference`) — both paths stop at the same evaluation
        count and visit the same designs.
        """
        if not self.batch_evaluation:
            self.step_reference(iteration, budget)
            return
        if budget.exhausted(iteration, self.evaluations, self.elapsed()):
            return
        brood_size = self.brood_limit(budget, self.population_size)
        if brood_size == 0:
            return
        offspring_designs = self.repair_brood([self._mate_one() for _ in range(brood_size)])
        offspring_objectives = self.evaluate_batch(offspring_designs)
        combined_designs = self.designs + offspring_designs
        combined_objectives = np.vstack([self.objectives, offspring_objectives])
        self._survival(combined_designs, combined_objectives)

    def step_reference(self, iteration: int, budget: Budget) -> None:
        """Pre-batch scalar generation (one :meth:`evaluate` call per child).

        Kept verbatim as the equivalence oracle for the batched :meth:`step`:
        seeded runs of both paths must produce identical populations,
        objective matrices and evaluation counts.
        """
        offspring_designs = []
        offspring_objectives = []
        while len(offspring_designs) < self.population_size:
            if budget.exhausted(iteration, self.evaluations, self.elapsed()):
                break
            child = self.repair_brood([self._mate_one()])[0]
            offspring_designs.append(child)
            offspring_objectives.append(self.evaluate(child))
        if not offspring_designs:
            return
        combined_designs = self.designs + offspring_designs
        combined_objectives = np.vstack([self.objectives, np.asarray(offspring_objectives)])
        self._survival(combined_designs, combined_objectives)

    def _mate_one(self):
        """Produce one child via tournament selection, crossover and mutation."""
        parent_a = self._tournament()
        parent_b = self._tournament()
        if self.rng.random() < self.crossover_probability:
            child = self.problem.crossover(self.designs[parent_a], self.designs[parent_b], self.rng)
        else:
            child = self.designs[parent_a]
        if self.rng.random() < self.mutation_probability:
            child = self.problem.mutate(child, self.rng)
        return child

    # ------------------------------------------------------------------ #
    # Selection and survival
    # ------------------------------------------------------------------ #
    def _tournament(self) -> int:
        a, b = self.rng.choice(self.population_size, size=2, replace=False)
        a, b = int(a), int(b)
        if self._ranks[a] != self._ranks[b]:
            return a if self._ranks[a] < self._ranks[b] else b
        return a if self._crowding[a] >= self._crowding[b] else b

    def _survival(self, designs: list, objectives: np.ndarray) -> None:
        fronts = fast_non_dominated_sort(objectives)
        survivors: list[int] = []
        for front in fronts:
            if len(survivors) + len(front) <= self.population_size:
                survivors.extend(front)
                continue
            remaining = self.population_size - len(survivors)
            if remaining > 0:
                front_obj = objectives[front]
                distances = crowding_distance(front_obj)
                order = np.argsort(-distances, kind="stable")
                survivors.extend([front[int(i)] for i in order[:remaining]])
            break
        self.designs = [designs[i] for i in survivors]
        self.objectives = objectives[survivors]
        self._refresh_rank_and_crowding()

    def _refresh_rank_and_crowding(self) -> None:
        fronts = fast_non_dominated_sort(self.objectives)
        ranks = np.zeros(len(self.objectives), dtype=np.int64)
        crowding = np.zeros(len(self.objectives), dtype=np.float64)
        for rank, front in enumerate(fronts):
            ranks[front] = rank
            crowding[front] = crowding_distance(self.objectives[front])
        self._ranks = ranks
        self._crowding = crowding
