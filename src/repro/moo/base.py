"""Shared machinery for population-based optimisers.

Provides population bookkeeping, snapshot recording and ideal-point tracking
so the individual algorithms (MOEA/D, NSGA-II, MOOS, MOO-STAGE, MOELA) only
implement their own iteration logic.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.moo.archive import ParetoArchive
from repro.moo.dominance import non_dominated_mask
from repro.moo.problem import Problem
from repro.moo.result import OptimizationResult, SearchSnapshot
from repro.moo.termination import Budget, StopWatch
from repro.study.events import EventCallback, StudyEvent
from repro.utils.rng import RngLike, ensure_rng


class PopulationOptimizer:
    """Base class for optimisers that evolve a fixed-size population.

    Besides the working population, every optimiser maintains a bounded
    archive of the non-dominated designs it has *evaluated* (the standard
    offline-performance protocol).  History snapshots and the reported "front
    at the stop budget" come from this archive, so PHV comparisons between
    algorithms measure search quality under exactly the same bookkeeping.

    ``batch_evaluation`` selects between the vectorised hot path (broods of
    designs scored through one :meth:`evaluate_batch` call) and the scalar
    reference path (one :meth:`evaluate` call per design, the pre-batch
    implementation).  Both consume the RNG identically — neighbour/offspring
    generation always happens before any evaluation — so the two paths visit
    exactly the same designs; the scalar path exists as the equivalence oracle
    for the batched one.
    """

    name = "base"

    def __init__(
        self,
        problem: Problem,
        population_size: int = 50,
        rng: RngLike = None,
        batch_evaluation: bool = True,
    ):
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        self.problem = problem
        self.population_size = population_size
        self.batch_evaluation = batch_evaluation
        self.rng = ensure_rng(rng)
        self.designs: list[Any] = []
        self.objectives: np.ndarray = np.empty((0, problem.num_objectives))
        self.archive = ParetoArchive(max_size=population_size)
        self.evaluations = 0
        self.history: list[SearchSnapshot] = []
        self._watch: StopWatch | None = None
        # Progress streaming (see repro.study.events): when set, run() emits a
        # StudyEvent after initialisation and after every iteration.  Events
        # are built from read-only counters after all RNG consumption, so a
        # subscribed run stays bit-identical to a silent one.
        self.on_event: EventCallback | None = None
        self.event_context: dict[str, Any] = {}
        # Directed feasibility repair (see repro.noc.repair): opt-in via the
        # dispatch layer, like on_event.  Off by default; when off,
        # repair_brood() returns its input unchanged without consuming RNG or
        # touching the problem, so seeded runs stay bit-identical to
        # pre-repair behaviour.  When on, infeasible brood members are
        # replaced by their repaired counterparts *before* scoring, each
        # repair walk seeded from (repair_seed, call index) so a run replays
        # deterministically.
        self.repair_infeasible: bool = False
        self.repair_budget: Any = None
        self.repair_seed: int = 0
        self.repair_stats: dict[str, int] = {"attempted": 0, "repaired": 0, "evaluations": 0}
        self._repair_calls = 0

    # ------------------------------------------------------------------ #
    # Template method
    # ------------------------------------------------------------------ #
    def run(self, budget: Budget) -> OptimizationResult:
        """Run the optimiser until the budget is exhausted."""
        self._watch = StopWatch()
        self.evaluations = 0
        self.history = []
        self.repair_stats = {"attempted": 0, "repaired": 0, "evaluations": 0}
        self._repair_calls = 0
        self.initialize()
        self.record_snapshot(iteration=0)
        self.emit_event("run_started", iteration=0)
        iteration = 0
        while not budget.exhausted(iteration, self.evaluations, self._watch.elapsed()):
            iteration += 1
            self.step(iteration, budget)
            self.record_snapshot(iteration)
            self.emit_event("iteration", iteration=iteration)
        result = self.build_result()
        self.emit_event("run_finished", iteration=iteration)
        return result

    def initialize(self) -> None:
        """Create and evaluate the initial population (random by default).

        The whole initial population is scored through one
        :meth:`evaluate_batch` call so problems with a batch evaluation path
        (shared routing reuse, cache partitioning, parallel workers) are used
        at full effect.  With ``batch_evaluation=False`` every design is scored
        through a scalar :meth:`evaluate` call instead.
        """
        self.designs = self.repair_brood(
            [self.problem.random_design(self.rng) for _ in range(self.population_size)]
        )
        if self.batch_evaluation:
            self.objectives = self.evaluate_batch(self.designs)
        else:
            self.objectives = np.array(
                [self.evaluate(design) for design in self.designs], dtype=np.float64
            )

    def step(self, iteration: int, budget: Budget) -> None:
        """One iteration of the algorithm (must be overridden)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def evaluate(self, design: Any) -> np.ndarray:
        """Evaluate a design, count the evaluation and archive it if non-dominated."""
        self.evaluations += 1
        objectives = np.asarray(self.problem.evaluate(design), dtype=np.float64)
        self.archive.add(design, objectives)
        return objectives

    def evaluate_batch(self, designs: list[Any]) -> np.ndarray:
        """Batch counterpart of :meth:`evaluate` for population-scale scoring.

        Routes through :meth:`Problem.evaluate_many` (one call for the whole
        batch), counts every design as one evaluation, and archives each
        result in order, exactly as the scalar wrapper does — so the archive
        (and therefore every downstream front/PHV computation) evolves
        identically whether a brood is scored scalar-by-scalar or in one call.

        Budget-aware contract: a batch call advances :attr:`evaluations` by
        ``len(designs)`` at once, so callers that must respect an evaluation
        budget size their broods with :meth:`brood_limit` *before* calling —
        :class:`~repro.moo.termination.Budget.exhausted` then fires at exactly
        the same evaluation count as the scalar path, which checks between
        single evaluations.
        """
        if not designs:
            return np.empty((0, self.problem.num_objectives), dtype=np.float64)
        objectives = np.asarray(self.problem.evaluate_many(designs), dtype=np.float64)
        self.evaluations += len(designs)
        for design, vector in zip(designs, objectives):
            self.archive.add(design, vector)
        return objectives

    def repair_brood(self, designs: list[Any]) -> list[Any]:
        """Replace infeasible brood members with repaired counterparts (opt-in).

        With :attr:`repair_infeasible` unset — the default — this returns
        ``designs`` unchanged without consuming RNG or touching the problem,
        so seeded runs are bit-identical to pre-repair behaviour.  When set,
        each infeasible member runs through the problem's ``repair_design``
        (see :func:`repro.noc.repair.repair_design`) with a seed derived from
        ``(repair_seed, call index)``; members whose walk fails stay in the
        brood unchanged (evaluation remains the final arbiter).  Call this
        *before* scoring a brood — substituting designs after evaluation
        would desynchronise populations from their objective rows.
        """
        if not self.repair_infeasible or not designs:
            return designs
        repair_fn = getattr(self.problem, "repair_design", None)
        feasible_fn = getattr(self.problem, "is_feasible", None)
        if not callable(repair_fn) or not callable(feasible_fn):
            return designs
        out: list[Any] = []
        for design in designs:
            if feasible_fn(design):
                out.append(design)
                continue
            call = self._repair_calls
            self._repair_calls += 1
            plan = repair_fn(
                design,
                seed=self.repair_seed + call,
                budget=self.repair_budget,
            )
            self.repair_stats["attempted"] += 1
            self.repair_stats["evaluations"] += plan.evaluations_used
            if plan.feasible:
                self.repair_stats["repaired"] += 1
                out.append(plan.design)
            else:
                out.append(design)
        return out

    def brood_repairer(self) -> "Any | None":
        """:meth:`repair_brood` when repair is enabled, ``None`` otherwise.

        The local searches (:func:`repro.moo.local_search.greedy_descent`)
        accept an optional ``repair`` callable; passing ``None`` keeps their
        signature-stable fast path.
        """
        return self.repair_brood if self.repair_infeasible else None

    def brood_limit(self, budget: Budget, requested: int) -> int:
        """Largest brood size the evaluation budget still allows.

        Returns ``requested`` when the budget has no evaluation limit.  This is
        the budget-aware half of the :meth:`evaluate_batch` contract: trimming
        the brood *before* the batch call makes the batched path stop at
        exactly the evaluation count where the scalar path's per-design budget
        check would have stopped (no overshoot from scoring a whole brood).
        """
        remaining = budget.remaining_evaluations(self.evaluations)
        return requested if remaining is None else min(requested, remaining)

    def elapsed(self) -> float:
        """Seconds since :meth:`run` started."""
        return self._watch.elapsed() if self._watch is not None else 0.0

    def emit_event(self, kind: str, iteration: int, payload: "dict[str, Any] | None" = None) -> None:
        """Send one :class:`~repro.study.events.StudyEvent` to the subscriber.

        No-op without a subscriber.  Emission is observation-only: the event
        is assembled from the archive/evaluation counters *after* the
        iteration's RNG consumption, so subscribing cannot change a seeded
        trajectory.  ``event_context`` (set by the dispatch layer) supplies
        the run identity; sensible defaults are derived from the optimiser
        and problem when it is empty.
        """
        if self.on_event is None:
            return
        # record_snapshot already computed the archive front for this
        # iteration; reuse it instead of paying the non-dominated sort twice.
        front_size = len(self.history[-1].front) if self.history else len(self.current_front())
        data: dict[str, Any] = {"front_size": int(front_size)}
        stats_fn = getattr(self.problem, "routing_cache_stats", None)
        if callable(stats_fn):
            data["routing_cache"] = stats_fn()
        if payload:
            data.update(payload)
        context = self.event_context
        self.on_event(
            StudyEvent(
                kind=kind,
                algorithm=context.get("algorithm", self.name),
                application=context.get(
                    "application", getattr(getattr(self.problem, "workload", None), "name", None)
                ),
                num_objectives=context.get("num_objectives", self.problem.num_objectives),
                iteration=iteration,
                evaluations=int(self.evaluations),
                elapsed_seconds=float(self.elapsed()),
                payload=data,
            )
        )

    def current_front(self) -> np.ndarray:
        """Non-dominated front of the designs evaluated so far (archive-based)."""
        if len(self.archive):
            return self.archive.objectives
        if len(self.objectives) == 0:
            return self.objectives
        return self.objectives[non_dominated_mask(self.objectives)]

    def ideal_point(self) -> np.ndarray:
        """Componentwise minimum of the current population objectives."""
        return self.objectives.min(axis=0)

    def record_snapshot(self, iteration: int) -> None:
        """Append a history snapshot of the current front."""
        self.history.append(
            SearchSnapshot(
                iteration=iteration,
                evaluations=self.evaluations,
                elapsed_seconds=self.elapsed(),
                front=self.current_front().copy(),
            )
        )

    def build_result(self) -> OptimizationResult:
        """Assemble the :class:`OptimizationResult` for the finished run.

        ``designs``/``objectives`` are the final population (the ``N`` designs
        the paper's Algorithm 1 returns); the archived non-dominated set is
        attached as ``metadata["archive_designs"]`` and backs the last history
        snapshot.
        """
        result = OptimizationResult(
            algorithm=self.name,
            problem_name=getattr(self.problem, "name", type(self.problem).__name__),
            designs=list(self.designs),
            objectives=self.objectives.copy(),
            history=list(self.history),
            evaluations=self.evaluations,
            elapsed_seconds=self.elapsed(),
        )
        result.metadata["archive_designs"] = self.archive.designs
        result.metadata["archive_objectives"] = self.archive.objectives
        # Thread the problem's routing-cache counters (RoutingEngine hits /
        # misses / incremental repairs) into the result so campaign shards can
        # record them without holding on to the problem instance.
        stats_fn = getattr(self.problem, "routing_cache_stats", None)
        if callable(stats_fn):
            result.metadata["routing_cache"] = stats_fn()
        # Repair counters ride along only when the opt-in path is enabled, so
        # default-run result dictionaries stay byte-identical to pre-repair
        # shards.
        if self.repair_infeasible:
            result.metadata["repair"] = dict(self.repair_stats)
        return result
