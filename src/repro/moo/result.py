"""Optimisation results and per-iteration search history.

Every optimiser records a :class:`SearchSnapshot` per iteration (the current
non-dominated front, evaluation count and wall time).  The experiment harness
recomputes hypervolume histories from these snapshots using a *common*
reference point across algorithms, which is what Tables I/II of the paper
require (speed-up to reach a PHV level, PHV at the stop budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.moo.dominance import non_dominated_mask
from repro.moo.hypervolume import hypervolume


@dataclass(frozen=True)
class SearchSnapshot:
    """State of a search at the end of one iteration."""

    iteration: int
    evaluations: int
    elapsed_seconds: float
    front: np.ndarray

    def __post_init__(self) -> None:
        front = np.atleast_2d(np.asarray(self.front, dtype=np.float64))
        object.__setattr__(self, "front", front)

    def hypervolume(self, reference: np.ndarray) -> float:
        """Hypervolume of the snapshot's front for a given reference point."""
        return hypervolume(self.front, reference)


@dataclass
class OptimizationResult:
    """Final state and history of one optimisation run."""

    algorithm: str
    problem_name: str
    designs: list[Any]
    objectives: np.ndarray
    history: list[SearchSnapshot] = field(default_factory=list)
    evaluations: int = 0
    elapsed_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.objectives = np.atleast_2d(np.asarray(self.objectives, dtype=np.float64))

    # ------------------------------------------------------------------ #
    # Fronts and hypervolume
    # ------------------------------------------------------------------ #
    @property
    def num_objectives(self) -> int:
        """Number of objectives of the underlying problem."""
        return self.objectives.shape[1]

    def pareto_front(self) -> np.ndarray:
        """Non-dominated subset of the final population objectives."""
        if len(self.objectives) == 0:
            return self.objectives
        return self.objectives[non_dominated_mask(self.objectives)]

    def pareto_designs(self) -> list[Any]:
        """Designs corresponding to :meth:`pareto_front` (same order)."""
        if len(self.objectives) == 0:
            return []
        mask = non_dominated_mask(self.objectives)
        return [design for design, keep in zip(self.designs, mask) if keep]

    def final_front(self) -> np.ndarray:
        """The front reported at the stop budget.

        This is the last history snapshot (the optimiser's archive of
        evaluated non-dominated designs) when a history exists, otherwise the
        non-dominated subset of the final population.
        """
        if self.history:
            return self.history[-1].front
        return self.pareto_front()

    def final_hypervolume(self, reference: np.ndarray) -> float:
        """Hypervolume of :meth:`final_front` for a reference point."""
        return hypervolume(self.final_front(), reference)

    def hypervolume_history(self, reference: np.ndarray) -> np.ndarray:
        """Hypervolume of every snapshot, in iteration order."""
        return np.array([snap.hypervolume(reference) for snap in self.history], dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Effort-to-quality queries (Table I support)
    # ------------------------------------------------------------------ #
    def effort_to_reach(
        self, phv_target: float, reference: np.ndarray, measure: str = "evaluations"
    ) -> float | None:
        """Search effort needed to first reach a hypervolume target.

        ``measure`` selects the effort axis: ``"evaluations"``, ``"seconds"``
        or ``"iterations"``.  Returns ``None`` when the run never reached the
        target.
        """
        if measure not in ("evaluations", "seconds", "iterations"):
            raise ValueError("measure must be 'evaluations', 'seconds' or 'iterations'")
        for snap in self.history:
            if snap.hypervolume(reference) >= phv_target:
                if measure == "evaluations":
                    return float(snap.evaluations)
                if measure == "seconds":
                    return float(snap.elapsed_seconds)
                return float(snap.iteration)
        return None

    def convergence_effort(
        self,
        reference: np.ndarray,
        window: int = 5,
        tolerance: float = 0.005,
        measure: str = "evaluations",
    ) -> tuple[float, float]:
        """Effort and hypervolume at the paper's convergence criterion.

        Convergence is declared at the first snapshot where the hypervolume
        improved by less than ``tolerance`` (relative) over the previous
        ``window`` snapshots; if the criterion never triggers, the final
        snapshot is used.  Returns ``(effort, hypervolume_at_convergence)``.
        """
        history = self.hypervolume_history(reference)
        if len(history) == 0:
            return 0.0, 0.0
        converged_idx = len(history) - 1
        for idx in range(window, len(history)):
            baseline = history[idx - window]
            if baseline <= 0:
                continue
            if (history[idx] - baseline) / baseline < tolerance:
                converged_idx = idx
                break
        snap = self.history[converged_idx]
        if measure == "seconds":
            effort = float(snap.elapsed_seconds)
        elif measure == "iterations":
            effort = float(snap.iteration)
        else:
            effort = float(snap.evaluations)
        return effort, float(history[converged_idx])

    def summary(self) -> dict[str, float]:
        """Compact numeric summary of the run."""
        return {
            "algorithm": self.algorithm,
            "problem": self.problem_name,
            "population": len(self.designs),
            "pareto_size": len(self.pareto_front()),
            "evaluations": self.evaluations,
            "elapsed_seconds": self.elapsed_seconds,
            "iterations": self.history[-1].iteration if self.history else 0,
        }
