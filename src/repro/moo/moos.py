"""MOOS baseline: ML-guided local search with learned direction adjustment.

Deshwal et al. (2019) improve on MOO-STAGE by letting the learned model also
steer the *direction* of the local search: instead of only predicting good
restart designs, MOOS scores (design, scalarisation-direction) pairs and runs
each local search along the most promising direction, while still accepting
moves that grow the archive's Pareto hypervolume.  The repeated hypervolume
evaluations inside the acceptance test are what make MOOS (and MOO-STAGE)
expensive as objective counts grow — the overhead MOELA's Eq.-8 local search
avoids.
"""

from __future__ import annotations

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.moo.archive import ParetoArchive
from repro.moo.base import PopulationOptimizer
from repro.moo.hypervolume import hypervolume, hypervolume_contribution, reference_point_from
from repro.moo.local_search import score_neighbor_brood
from repro.moo.problem import Problem
from repro.moo.scalarization import tchebycheff
from repro.moo.termination import Budget
from repro.moo.weights import uniform_weights
from repro.utils.rng import RngLike


class MOOS(PopulationOptimizer):
    """MOOS: learned start *and* direction selection with PHV-based acceptance."""

    name = "MOOS"

    def __init__(
        self,
        problem: Problem,
        population_size: int = 50,
        searches_per_iteration: int = 4,
        local_search_steps: int = 15,
        neighbors_per_step: int = 3,
        num_directions: int = 12,
        early_random_iterations: int = 2,
        max_training_samples: int = 10_000,
        forest_size: int = 20,
        rng: RngLike = None,
        batch_evaluation: bool = True,
    ):
        super().__init__(problem, population_size, rng, batch_evaluation=batch_evaluation)
        if searches_per_iteration < 1:
            raise ValueError("searches_per_iteration must be >= 1")
        if local_search_steps < 1:
            raise ValueError("local_search_steps must be >= 1")
        if neighbors_per_step < 1:
            raise ValueError("neighbors_per_step must be >= 1")
        if num_directions < 2:
            raise ValueError("num_directions must be >= 2")
        self.searches_per_iteration = searches_per_iteration
        self.local_search_steps = local_search_steps
        self.neighbors_per_step = neighbors_per_step
        self.early_random_iterations = early_random_iterations
        self.max_training_samples = max_training_samples
        self.forest_size = forest_size
        self.directions = uniform_weights(problem.num_objectives, num_directions, self.rng)
        self.archive = ParetoArchive(max_size=population_size)
        self.reference: np.ndarray | None = None
        self._train_features: list[np.ndarray] = []
        self._train_targets: list[float] = []
        self._model: RandomForestRegressor | None = None

    # ------------------------------------------------------------------ #
    # Algorithm
    # ------------------------------------------------------------------ #
    def initialize(self) -> None:
        super().initialize()
        self.reference = reference_point_from(self.objectives, margin=0.2)
        for design, objectives in zip(self.designs, self.objectives):
            self.archive.add(design, objectives)
        self._sync_population()

    def step(self, iteration: int, budget: Budget) -> None:
        plans = self._select_search_plans(iteration)
        for start_design, start_objectives, direction in plans:
            if budget.exhausted(iteration, self.evaluations, self.elapsed()):
                break
            self._directed_local_search(start_design, start_objectives, direction, iteration, budget)
        self._train_model()
        self._sync_population()

    # ------------------------------------------------------------------ #
    # Search-plan selection (learned start + direction)
    # ------------------------------------------------------------------ #
    def _select_search_plans(self, iteration: int) -> list[tuple]:
        candidates = list(zip(self.archive.designs, self.archive.objectives))
        if not candidates:
            candidates = list(zip(self.designs, self.objectives))
        count = min(self.searches_per_iteration, len(candidates))
        if iteration <= self.early_random_iterations or self._model is None:
            indices = self.rng.choice(len(candidates), size=count, replace=False)
            plans = []
            for i in indices:
                design, objectives = candidates[int(i)]
                direction = self.directions[int(self.rng.integers(len(self.directions)))]
                plans.append((design, objectives, direction))
            return plans

        # Score every (candidate, direction) pair with the learned model in
        # one vectorised predict over the full cross product, then greedily
        # take the top pairs while keeping starts distinct.
        base_features = np.asarray(
            [self.problem.features(design) for design, _ in candidates], dtype=np.float64
        )
        num_candidates, num_directions = len(candidates), len(self.directions)
        feature_rows = np.hstack(
            [
                np.repeat(base_features, num_directions, axis=0),
                np.tile(self.directions, (num_candidates, 1)),
            ]
        )
        predictions = self._model.predict(feature_rows)
        # Stable argsort keeps the (candidate, direction)-lexicographic tie
        # order of the previous per-pair Python sort.
        order = np.argsort(-np.asarray(predictions, dtype=np.float64), kind="stable")
        plans = []
        used_starts: set[int] = set()
        for flat in order:
            c_idx, d_idx = divmod(int(flat), num_directions)
            if c_idx in used_starts:
                continue
            design, objectives = candidates[c_idx]
            plans.append((design, objectives, self.directions[d_idx]))
            used_starts.add(c_idx)
            if len(plans) >= count:
                break
        return plans

    # ------------------------------------------------------------------ #
    # Directed PHV local search
    # ------------------------------------------------------------------ #
    def _directed_local_search(
        self, start_design, start_objectives, direction: np.ndarray, iteration: int, budget: Budget
    ) -> None:
        """Directed PHV local search, scoring each step's neighbour brood in one batch.

        Every step generates all ``neighbors_per_step`` neighbours first, then
        scores them through one counting
        :meth:`~repro.moo.base.PopulationOptimizer.evaluate_batch` call.  The
        archive snapshot (``front``) is taken before the brood is archived and
        the acceptance test runs on the scored matrix afterwards, so the
        trajectory is identical to the scalar reference path
        (:meth:`_directed_local_search_reference`), which interleaves
        evaluation with the acceptance test.
        """
        if not self.batch_evaluation:
            self._directed_local_search_reference(
                start_design, start_objectives, direction, iteration, budget
            )
            return
        current = start_design
        current_obj = np.asarray(start_objectives, dtype=np.float64)
        ideal = self.archive.objectives.min(axis=0) if len(self.archive) else current_obj
        start_features = np.concatenate([self.problem.features(start_design), direction])
        phv_before = hypervolume(self.archive.objectives, self.reference)
        current_scalar = tchebycheff(current_obj, direction, ideal)
        for _ in range(self.local_search_steps):
            if budget.exhausted(iteration, self.evaluations, self.elapsed()):
                break
            front = self.archive.objectives
            candidates, candidate_objs = score_neighbor_brood(
                self.problem, current, self.neighbors_per_step, self.rng,
                evaluate_many=self.evaluate_batch,
                repair=self.brood_repairer(),
            )
            best_candidate = None
            best_candidate_obj = None
            best_score = 0.0
            best_scalar = current_scalar
            for candidate, candidate_obj in zip(candidates, candidate_objs):
                gain = hypervolume_contribution(candidate_obj, front, self.reference)
                scalar = tchebycheff(candidate_obj, direction, ideal)
                # Accept moves that grow the archive PHV, preferring moves that
                # also advance along the chosen scalarisation direction.
                if gain > 0.0 and (gain > best_score or scalar < best_scalar):
                    best_score = gain
                    best_scalar = scalar
                    best_candidate = candidate
                    best_candidate_obj = candidate_obj
            if best_candidate is None:
                break
            current = best_candidate
            current_obj = best_candidate_obj
            current_scalar = best_scalar
            self.archive.add(current, current_obj)
        phv_after = hypervolume(self.archive.objectives, self.reference)
        self._record_training_sample(start_features, phv_after - phv_before)

    def _directed_local_search_reference(
        self, start_design, start_objectives, direction: np.ndarray, iteration: int, budget: Budget
    ) -> None:
        """Pre-batch scalar twin of :meth:`_directed_local_search` (equivalence oracle)."""
        current = start_design
        current_obj = np.asarray(start_objectives, dtype=np.float64)
        ideal = self.archive.objectives.min(axis=0) if len(self.archive) else current_obj
        start_features = np.concatenate([self.problem.features(start_design), direction])
        phv_before = hypervolume(self.archive.objectives, self.reference)
        current_scalar = tchebycheff(current_obj, direction, ideal)
        for _ in range(self.local_search_steps):
            if budget.exhausted(iteration, self.evaluations, self.elapsed()):
                break
            best_candidate = None
            best_candidate_obj = None
            best_score = 0.0
            best_scalar = current_scalar
            front = self.archive.objectives
            for _ in range(self.neighbors_per_step):
                candidate = self.problem.neighbor(current, self.rng)
                candidate_obj = self.evaluate(candidate)
                gain = hypervolume_contribution(candidate_obj, front, self.reference)
                scalar = tchebycheff(candidate_obj, direction, ideal)
                if gain > 0.0 and (gain > best_score or scalar < best_scalar):
                    best_score = gain
                    best_scalar = scalar
                    best_candidate = candidate
                    best_candidate_obj = candidate_obj
            if best_candidate is None:
                break
            current = best_candidate
            current_obj = best_candidate_obj
            current_scalar = best_scalar
            self.archive.add(current, current_obj)
        phv_after = hypervolume(self.archive.objectives, self.reference)
        self._record_training_sample(start_features, phv_after - phv_before)

    # ------------------------------------------------------------------ #
    # Learned evaluation function
    # ------------------------------------------------------------------ #
    def _record_training_sample(self, features: np.ndarray, target: float) -> None:
        self._train_features.append(np.asarray(features, dtype=np.float64))
        self._train_targets.append(float(target))
        if len(self._train_features) > self.max_training_samples:
            self._train_features = self._train_features[-self.max_training_samples :]
            self._train_targets = self._train_targets[-self.max_training_samples :]

    def _train_model(self) -> None:
        if len(self._train_features) < 4:
            return
        X = np.asarray(self._train_features, dtype=np.float64)
        y = np.asarray(self._train_targets, dtype=np.float64)
        model = RandomForestRegressor(
            n_estimators=self.forest_size, max_depth=8, rng=self.rng
        )
        model.fit(X, y)
        self._model = model

    # ------------------------------------------------------------------ #
    # Population synchronisation
    # ------------------------------------------------------------------ #
    def _sync_population(self) -> None:
        designs = self.archive.designs
        objectives = self.archive.objectives
        if len(designs) == 0:
            return
        self.designs = designs
        self.objectives = objectives
