"""Scalarisation functions used by the decomposition-based components.

* :func:`weighted_distance` — the weighted-sum distance to the reference point
  used by MOELA's local search (Eq. 8);
* :func:`tchebycheff` — the Tchebycheff scalarisation used by the
  decomposition-based EA's population update (Eq. 9).

Both treat the reference point ``z`` as the (running) ideal point and are
minimised.
"""

from __future__ import annotations

import numpy as np


def _validate(objectives: np.ndarray, weight: np.ndarray, reference: np.ndarray, scale=None):
    objectives = np.asarray(objectives, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if objectives.shape[-1] != weight.shape[-1] or weight.shape[-1] != reference.shape[-1]:
        raise ValueError(
            "objectives, weight and reference must share the same number of objectives"
        )
    if np.any(weight < 0):
        raise ValueError("weights must be non-negative")
    if scale is None:
        scale = np.ones_like(reference)
    else:
        scale = np.asarray(scale, dtype=np.float64)
        if scale.shape[-1] != reference.shape[-1]:
            raise ValueError("scale must have one entry per objective")
        scale = np.where(scale <= 0, 1.0, scale)
    return objectives, weight, reference, scale


def weighted_distance(
    objectives: np.ndarray,
    weight: np.ndarray,
    reference: np.ndarray,
    scale: np.ndarray | None = None,
) -> float:
    """Weighted absolute distance to the reference point, Eq. 8.

    ``g(Obj | w, z) = sum_i w_i * |Obj_i - z_i|``

    ``scale`` optionally divides each objective's distance (typically the
    population's nadir-minus-ideal span) so that objectives with very
    different magnitudes contribute comparably.
    """
    objectives, weight, reference, scale = _validate(objectives, weight, reference, scale)
    return float(np.sum(weight * np.abs(objectives - reference) / scale, axis=-1))


def tchebycheff(
    objectives: np.ndarray,
    weight: np.ndarray,
    reference: np.ndarray,
    scale: np.ndarray | None = None,
) -> float:
    """Tchebycheff scalarisation, Eq. 9.

    ``g(x | w, z) = max_i w_i * |Obj_i(x) - z_i|``

    Zero weights are replaced by a small positive value so that every
    objective still influences the scalar value (the standard MOEA/D fix for
    boundary weight vectors).  ``scale`` behaves as in
    :func:`weighted_distance`.
    """
    objectives, weight, reference, scale = _validate(objectives, weight, reference, scale)
    safe_weight = np.where(weight <= 0, 1e-6, weight)
    return float(np.max(safe_weight * np.abs(objectives - reference) / scale, axis=-1))


def normalize_objectives(
    objectives: np.ndarray, ideal: np.ndarray, nadir: np.ndarray
) -> np.ndarray:
    """Scale objective vectors into [0, 1] per dimension using ideal/nadir points."""
    objectives = np.asarray(objectives, dtype=np.float64)
    ideal = np.asarray(ideal, dtype=np.float64)
    nadir = np.asarray(nadir, dtype=np.float64)
    span = nadir - ideal
    span[span == 0] = 1.0
    return (objectives - ideal) / span
