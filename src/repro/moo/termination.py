"""Search budgets and convergence detection.

The paper bounds every algorithm by a wall-clock stop time ``T_stop`` and
declares convergence when the PHV improves by less than 0.5 % over five
iterations (Section V.C).  :class:`Budget` generalises the stop condition to
iterations / evaluations / seconds so the reduced benchmark harness can use a
deterministic evaluation budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class Budget:
    """Stop conditions for one optimisation run (any satisfied condition stops)."""

    max_iterations: int | None = None
    max_evaluations: int | None = None
    max_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_iterations is None and self.max_evaluations is None and self.max_seconds is None:
            raise ValueError("a budget needs at least one stop condition")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be > 0")

    def exhausted(self, iterations: int, evaluations: int, elapsed_seconds: float) -> bool:
        """True when any configured limit has been reached."""
        if self.max_iterations is not None and iterations >= self.max_iterations:
            return True
        if self.max_evaluations is not None and evaluations >= self.max_evaluations:
            return True
        if self.max_seconds is not None and elapsed_seconds >= self.max_seconds:
            return True
        return False

    def remaining_evaluations(self, evaluations: int) -> int | None:
        """Evaluations left before the evaluation limit, or None if unlimited."""
        if self.max_evaluations is None:
            return None
        return max(0, self.max_evaluations - evaluations)

    @classmethod
    def iterations(cls, count: int) -> "Budget":
        """Budget limited only by iteration count."""
        return cls(max_iterations=count)

    @classmethod
    def evaluations(cls, count: int) -> "Budget":
        """Budget limited only by objective evaluations."""
        return cls(max_evaluations=count)

    @classmethod
    def seconds(cls, seconds: float) -> "Budget":
        """Budget limited only by wall-clock time (the paper's ``T_stop``)."""
        return cls(max_seconds=seconds)


class ConvergenceDetector:
    """Sliding-window relative-improvement convergence test.

    ``update(value)`` returns True once the monitored value (PHV) has improved
    by less than ``tolerance`` (relative) over the last ``window`` updates —
    the paper's "<0.5 % improvement in 5 iterations" criterion.
    """

    def __init__(self, window: int = 5, tolerance: float = 0.005):
        if window < 1:
            raise ValueError("window must be >= 1")
        if tolerance < 0:
            raise ValueError("tolerance must be >= 0")
        self.window = window
        self.tolerance = tolerance
        self._values: list[float] = []
        self.converged_at: int | None = None

    def update(self, value: float) -> bool:
        """Record a new value; returns True when convergence is (or was) reached."""
        self._values.append(float(value))
        if self.converged_at is not None:
            return True
        if len(self._values) <= self.window:
            return False
        baseline = self._values[-1 - self.window]
        current = self._values[-1]
        if baseline <= 0:
            return False
        if (current - baseline) / baseline < self.tolerance:
            self.converged_at = len(self._values) - 1
            return True
        return False

    @property
    def values(self) -> list[float]:
        """All recorded values in order."""
        return list(self._values)


class StopWatch:
    """Tiny wall-clock helper shared by the optimisers."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start
