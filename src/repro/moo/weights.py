"""Weight-vector generation for decomposition-based algorithms.

MOEA/D and MOELA decompose the multi-objective problem into ``N`` scalar
sub-problems, each defined by a weight vector.  Weight vectors must be evenly
spread over the unit simplex; the standard construction is the Das-Dennis
simplex lattice.  When the lattice size does not match the requested
population size, the lattice is sub-sampled (or topped up with random simplex
samples) to exactly ``N`` vectors.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


def das_dennis_weights(num_objectives: int, divisions: int) -> np.ndarray:
    """Das-Dennis simplex-lattice weight vectors.

    Produces ``C(divisions + M - 1, M - 1)`` vectors with components that are
    multiples of ``1/divisions`` and sum to 1.
    """
    if num_objectives < 1:
        raise ValueError("num_objectives must be >= 1")
    if divisions < 1:
        raise ValueError("divisions must be >= 1")
    vectors = []
    for dividers in combinations(range(divisions + num_objectives - 1), num_objectives - 1):
        previous = -1
        counts = []
        for divider in dividers:
            counts.append(divider - previous - 1)
            previous = divider
        counts.append(divisions + num_objectives - 2 - previous)
        vectors.append([c / divisions for c in counts])
    return np.asarray(vectors, dtype=np.float64)


def _divisions_for(num_objectives: int, minimum_count: int) -> int:
    divisions = 1
    while len(das_dennis_weights(num_objectives, divisions)) < minimum_count:
        divisions += 1
        if divisions > 200:
            raise RuntimeError("could not find a lattice with enough weight vectors")
    return divisions


def uniform_weights(num_objectives: int, count: int, rng: RngLike = None) -> np.ndarray:
    """Exactly ``count`` evenly spread weight vectors on the unit simplex.

    The smallest Das-Dennis lattice with at least ``count`` vectors is built
    and, when larger than ``count``, sub-sampled with a greedy max-min
    dispersion heuristic so the retained vectors stay evenly spread (the
    extreme single-objective directions are always kept when possible).
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = ensure_rng(rng)
    if num_objectives == 1:
        return np.ones((count, 1), dtype=np.float64)
    divisions = _divisions_for(num_objectives, count)
    lattice = das_dennis_weights(num_objectives, divisions)
    if len(lattice) == count:
        return lattice
    return _maxmin_subset(lattice, count, rng)


def _maxmin_subset(lattice: np.ndarray, count: int, rng) -> np.ndarray:
    """Greedy max-min dispersion subset of the lattice with ``count`` members."""
    chosen: list[int] = []
    # Seed with the extreme points (unit vectors) present in the lattice.
    for axis in range(lattice.shape[1]):
        extreme = np.argmax(lattice[:, axis])
        if extreme not in chosen and len(chosen) < count:
            chosen.append(int(extreme))
    if not chosen:
        chosen.append(int(rng.integers(len(lattice))))
    distances = np.full(len(lattice), np.inf)
    for idx in chosen:
        distances = np.minimum(distances, np.linalg.norm(lattice - lattice[idx], axis=1))
    while len(chosen) < count:
        candidate = int(np.argmax(distances))
        chosen.append(candidate)
        distances = np.minimum(distances, np.linalg.norm(lattice - lattice[candidate], axis=1))
    return lattice[np.asarray(chosen[:count])]


def neighborhoods(weights: np.ndarray, size: int) -> np.ndarray:
    """Index matrix of the ``size`` closest weight vectors (Euclidean) per vector.

    Row ``i`` lists the indices of the sub-problems whose weight vectors are
    closest to ``weights[i]`` (always including ``i`` itself first).
    """
    weights = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    count = len(weights)
    size = max(1, min(size, count))
    result = np.empty((count, size), dtype=np.int64)
    for i in range(count):
        distances = np.linalg.norm(weights - weights[i], axis=1)
        order = np.argsort(distances, kind="stable")
        result[i] = order[:size]
    return result
