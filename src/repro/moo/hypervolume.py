"""Pareto hypervolume (PHV) computation.

The PHV of a solution set is the volume of the objective-space region
dominated by the set and bounded by a reference point (minimisation: the
reference point must be no better than every point in every objective).  The
exact computation uses the WFG-style recursive "exclusive hypervolume"
decomposition, which is practical for the paper's dimensionalities (3-5
objectives) and population sizes (tens of points).  A Monte-Carlo estimator
is provided for sanity checks and very large fronts.
"""

from __future__ import annotations

import numpy as np

from repro.moo.dominance import non_dominated_mask
from repro.utils.rng import RngLike, ensure_rng


def _validate(points: np.ndarray, reference: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    reference = np.asarray(reference, dtype=np.float64).ravel()
    if points.size == 0:
        return points.reshape(0, len(reference)), reference
    if points.shape[1] != len(reference):
        raise ValueError(
            f"points have {points.shape[1]} objectives but the reference has {len(reference)}"
        )
    return points, reference


def hypervolume(points: np.ndarray, reference: np.ndarray) -> float:
    """Exact hypervolume of ``points`` w.r.t. ``reference`` (minimisation).

    Points that do not dominate the reference point contribute nothing and are
    discarded; dominated points are likewise discarded before the recursion.
    """
    points, reference = _validate(points, reference)
    if len(points) == 0:
        return 0.0
    inside = np.all(points < reference, axis=1)
    points = points[inside]
    if len(points) == 0:
        return 0.0
    points = points[non_dominated_mask(points)]
    return _wfg(points, reference)


def _wfg(points: np.ndarray, reference: np.ndarray) -> float:
    """WFG exclusive-hypervolume recursion on a mutually non-dominated set."""
    if len(points) == 0:
        return 0.0
    if len(points) == 1:
        return float(np.prod(reference - points[0]))
    # Sort by the first objective (descending volume contribution order helps
    # keep the limited sets small).
    order = np.argsort(points[:, 0], kind="stable")
    points = points[order]
    total = 0.0
    for idx in range(len(points)):
        point = points[idx]
        exclusive = float(np.prod(reference - point))
        if idx + 1 < len(points):
            # Limit the remaining points to the region dominated by `point`.
            limited = np.maximum(points[idx + 1 :], point)
            limited = limited[np.all(limited < reference, axis=1)]
            if len(limited) > 0:
                limited = limited[non_dominated_mask(limited)]
                exclusive -= _wfg(limited, reference)
        total += exclusive
    return total


def hypervolume_contribution(point: np.ndarray, front: np.ndarray, reference: np.ndarray) -> float:
    """Exclusive hypervolume a new point would add to an existing front.

    Computes ``hv(front + {point}) - hv(front)`` without re-evaluating the
    full front: the contribution is the volume of the box between ``point``
    and the reference, minus the part of that box already covered by the
    front (obtained by clipping the front into the box).  Used by the
    MOOS / MOO-STAGE baselines whose local searches accept moves by
    hypervolume improvement.
    """
    point = np.asarray(point, dtype=np.float64).ravel()
    front, reference = _validate(front, reference)
    if np.any(point >= reference):
        return 0.0
    box = float(np.prod(reference - point))
    if len(front) == 0:
        return box
    clipped = np.maximum(front, point)
    clipped = clipped[np.all(clipped < reference, axis=1)]
    if len(clipped) == 0:
        return box
    clipped = clipped[non_dominated_mask(clipped)]
    return box - _wfg(clipped, reference)


def hypervolume_monte_carlo(
    points: np.ndarray,
    reference: np.ndarray,
    ideal: np.ndarray | None = None,
    num_samples: int = 20_000,
    rng: RngLike = None,
) -> float:
    """Monte-Carlo estimate of the hypervolume (for validation / huge fronts).

    Samples are drawn uniformly from the box ``[ideal, reference]``; the
    estimate is the dominated fraction times the box volume.  ``ideal``
    defaults to the componentwise minimum of the points.
    """
    points, reference = _validate(points, reference)
    if len(points) == 0:
        return 0.0
    inside = np.all(points < reference, axis=1)
    points = points[inside]
    if len(points) == 0:
        return 0.0
    rng = ensure_rng(rng)
    if ideal is None:
        ideal = points.min(axis=0)
    ideal = np.asarray(ideal, dtype=np.float64)
    box = np.prod(reference - ideal)
    if box <= 0:
        return 0.0
    samples = rng.uniform(ideal, reference, size=(num_samples, len(reference)))
    dominated = np.zeros(num_samples, dtype=bool)
    for point in points:
        dominated |= np.all(samples >= point, axis=1)
    return float(dominated.mean() * box)


def reference_point_from(points: np.ndarray, margin: float = 0.1) -> np.ndarray:
    """A reference point slightly worse than the componentwise worst of ``points``."""
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    worst = points.max(axis=0)
    span = worst - points.min(axis=0)
    span[span == 0] = np.abs(worst[span == 0]) + 1.0
    return worst + margin * span
