"""Abstract multi-objective problem interface.

Optimisers in :mod:`repro.moo` and :mod:`repro.core` are written against this
interface so they can be reused on other design problems (the paper notes
MOELA applies "across many other problem domains").  The concrete 3D NoC
design problem is :class:`repro.core.problem.NocDesignProblem`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Hashable

import numpy as np

from repro.utils.rng import RngLike


class Problem(ABC):
    """A multi-objective minimisation problem over an arbitrary design space."""

    @property
    @abstractmethod
    def num_objectives(self) -> int:
        """Number of objectives (all minimised)."""

    @property
    def objective_names(self) -> tuple[str, ...]:
        """Optional human-readable objective names."""
        return tuple(f"objective_{i}" for i in range(self.num_objectives))

    @abstractmethod
    def evaluate(self, design: Any) -> np.ndarray:
        """Objective vector of a design (length ``num_objectives``)."""

    def evaluate_many(self, designs: list[Any]) -> np.ndarray:
        """Objective matrix (``len(designs) x num_objectives``) for a batch.

        The default loops over :meth:`evaluate`; problems with a cheaper batch
        path (shared routing, caching, parallelism) should override this —
        optimisers route all population-scale evaluation through it.
        """
        return np.array([self.evaluate(design) for design in designs], dtype=np.float64)

    @abstractmethod
    def random_design(self, rng: RngLike = None) -> Any:
        """A random feasible design."""

    @abstractmethod
    def neighbor(self, design: Any, rng: RngLike = None) -> Any:
        """A random feasible neighbour of ``design`` (local-search move)."""

    @abstractmethod
    def crossover(self, parent_a: Any, parent_b: Any, rng: RngLike = None) -> Any:
        """A feasible offspring recombining two parents."""

    @abstractmethod
    def mutate(self, design: Any, rng: RngLike = None) -> Any:
        """A feasible mutation of ``design``."""

    def design_key(self, design: Any) -> Hashable:
        """Hashable identity of a design (used for caching / dedup)."""
        return design

    def features(self, design: Any) -> np.ndarray:
        """Numeric feature vector describing ``design`` for learned models.

        The default implementation returns the objective vector, which is
        always available; problem-specific subclasses should add structural
        features.
        """
        return np.asarray(self.evaluate(design), dtype=np.float64)

    @property
    def evaluations(self) -> int:
        """Number of objective evaluations performed so far (0 if untracked)."""
        return 0
