"""MOO-STAGE baseline: STAGE-style learned start selection with PHV local search.

Joardar et al. (2019) extend the single-objective STAGE algorithm to MOO: a
greedy local search accepts neighbours that increase the Pareto hypervolume of
the current archive, and a learned evaluation function (random forest) trained
on past trajectories predicts, for a candidate starting design, the archive
hypervolume the search will reach — so later searches start from the most
promising designs instead of random restarts.
"""

from __future__ import annotations

import numpy as np

from repro.ml.forest import RandomForestRegressor
from repro.moo.archive import ParetoArchive
from repro.moo.base import PopulationOptimizer
from repro.moo.hypervolume import hypervolume, hypervolume_contribution, reference_point_from
from repro.moo.local_search import score_neighbor_brood
from repro.moo.problem import Problem
from repro.moo.termination import Budget
from repro.utils.rng import RngLike


class MOOStage(PopulationOptimizer):
    """MOO-STAGE: PHV-greedy local search with learned restart selection."""

    name = "MOO-STAGE"

    def __init__(
        self,
        problem: Problem,
        population_size: int = 50,
        searches_per_iteration: int = 4,
        local_search_steps: int = 15,
        neighbors_per_step: int = 3,
        early_random_iterations: int = 2,
        max_training_samples: int = 10_000,
        forest_size: int = 20,
        rng: RngLike = None,
        batch_evaluation: bool = True,
    ):
        super().__init__(problem, population_size, rng, batch_evaluation=batch_evaluation)
        if searches_per_iteration < 1:
            raise ValueError("searches_per_iteration must be >= 1")
        if local_search_steps < 1:
            raise ValueError("local_search_steps must be >= 1")
        if neighbors_per_step < 1:
            raise ValueError("neighbors_per_step must be >= 1")
        self.searches_per_iteration = searches_per_iteration
        self.local_search_steps = local_search_steps
        self.neighbors_per_step = neighbors_per_step
        self.early_random_iterations = early_random_iterations
        self.max_training_samples = max_training_samples
        self.forest_size = forest_size
        self.archive = ParetoArchive(max_size=population_size)
        self.reference: np.ndarray | None = None
        self._train_features: list[np.ndarray] = []
        self._train_targets: list[float] = []
        self._model: RandomForestRegressor | None = None

    # ------------------------------------------------------------------ #
    # Algorithm
    # ------------------------------------------------------------------ #
    def initialize(self) -> None:
        super().initialize()
        self.reference = reference_point_from(self.objectives, margin=0.2)
        for design, objectives in zip(self.designs, self.objectives):
            self.archive.add(design, objectives)
        self._sync_population()

    def step(self, iteration: int, budget: Budget) -> None:
        starts = self._select_starts(iteration)
        for start_design, start_objectives in starts:
            if budget.exhausted(iteration, self.evaluations, self.elapsed()):
                break
            self._phv_local_search(start_design, start_objectives, iteration, budget)
        self._train_model()
        self._sync_population()

    # ------------------------------------------------------------------ #
    # Start selection (the STAGE idea)
    # ------------------------------------------------------------------ #
    def _select_starts(self, iteration: int) -> list[tuple]:
        candidates = list(zip(self.archive.designs, self.archive.objectives))
        if not candidates:
            candidates = list(zip(self.designs, self.objectives))
        count = min(self.searches_per_iteration, len(candidates))
        if iteration <= self.early_random_iterations or self._model is None:
            indices = self.rng.choice(len(candidates), size=count, replace=False)
            return [candidates[int(i)] for i in indices]
        features = np.array(
            [self.problem.features(design) for design, _ in candidates], dtype=np.float64
        )
        predicted = self._model.predict(features)
        order = np.argsort(-predicted, kind="stable")
        return [candidates[int(i)] for i in order[:count]]

    # ------------------------------------------------------------------ #
    # PHV-greedy local search
    # ------------------------------------------------------------------ #
    def _phv_local_search(self, start_design, start_objectives, iteration: int, budget: Budget) -> None:
        """PHV-greedy local search, scoring each step's neighbour brood in one batch.

        Neighbours are generated before any evaluation and scored through one
        counting :meth:`~repro.moo.base.PopulationOptimizer.evaluate_batch`
        call per step; the archive snapshot the gains are measured against is
        taken first, so the trajectory matches the scalar reference path
        (:meth:`_phv_local_search_reference`) exactly.
        """
        if not self.batch_evaluation:
            self._phv_local_search_reference(start_design, start_objectives, iteration, budget)
            return
        current = start_design
        current_obj = np.asarray(start_objectives, dtype=np.float64)
        start_features = self.problem.features(start_design)
        for _ in range(self.local_search_steps):
            if budget.exhausted(iteration, self.evaluations, self.elapsed()):
                break
            front = self.archive.objectives
            candidates, candidate_objs = score_neighbor_brood(
                self.problem, current, self.neighbors_per_step, self.rng,
                evaluate_many=self.evaluate_batch,
                repair=self.brood_repairer(),
            )
            best_candidate = None
            best_candidate_obj = None
            best_gain = 0.0
            for candidate, candidate_obj in zip(candidates, candidate_objs):
                gain = hypervolume_contribution(candidate_obj, front, self.reference)
                if gain > best_gain:
                    best_gain = gain
                    best_candidate = candidate
                    best_candidate_obj = candidate_obj
            if best_candidate is None:
                break
            current = best_candidate
            current_obj = best_candidate_obj
            self.archive.add(current, current_obj)
        final_phv = hypervolume(self.archive.objectives, self.reference)
        self._record_training_sample(start_features, final_phv)

    def _phv_local_search_reference(
        self, start_design, start_objectives, iteration: int, budget: Budget
    ) -> None:
        """Pre-batch scalar twin of :meth:`_phv_local_search` (equivalence oracle)."""
        current = start_design
        current_obj = np.asarray(start_objectives, dtype=np.float64)
        start_features = self.problem.features(start_design)
        for _ in range(self.local_search_steps):
            if budget.exhausted(iteration, self.evaluations, self.elapsed()):
                break
            best_candidate = None
            best_candidate_obj = None
            best_gain = 0.0
            front = self.archive.objectives
            for _ in range(self.neighbors_per_step):
                candidate = self.problem.neighbor(current, self.rng)
                candidate_obj = self.evaluate(candidate)
                gain = hypervolume_contribution(candidate_obj, front, self.reference)
                if gain > best_gain:
                    best_gain = gain
                    best_candidate = candidate
                    best_candidate_obj = candidate_obj
            if best_candidate is None:
                break
            current = best_candidate
            current_obj = best_candidate_obj
            self.archive.add(current, current_obj)
        final_phv = hypervolume(self.archive.objectives, self.reference)
        self._record_training_sample(start_features, final_phv)

    # ------------------------------------------------------------------ #
    # Learned evaluation function
    # ------------------------------------------------------------------ #
    def _record_training_sample(self, features: np.ndarray, target: float) -> None:
        self._train_features.append(np.asarray(features, dtype=np.float64))
        self._train_targets.append(float(target))
        if len(self._train_features) > self.max_training_samples:
            self._train_features = self._train_features[-self.max_training_samples :]
            self._train_targets = self._train_targets[-self.max_training_samples :]

    def _train_model(self) -> None:
        if len(self._train_features) < 4:
            return
        X = np.asarray(self._train_features, dtype=np.float64)
        y = np.asarray(self._train_targets, dtype=np.float64)
        model = RandomForestRegressor(
            n_estimators=self.forest_size, max_depth=8, rng=self.rng
        )
        model.fit(X, y)
        self._model = model

    # ------------------------------------------------------------------ #
    # Population synchronisation
    # ------------------------------------------------------------------ #
    def _sync_population(self) -> None:
        designs = self.archive.designs
        objectives = self.archive.objectives
        if len(designs) == 0:
            return
        self.designs = designs
        self.objectives = objectives
