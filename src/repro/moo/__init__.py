"""Multi-objective optimisation substrate and baseline optimisers."""

from repro.moo.archive import ParetoArchive
from repro.moo.dominance import (
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
    non_dominated_mask,
)
from repro.moo.hypervolume import hypervolume, hypervolume_monte_carlo
from repro.moo.moead import MOEAD
from repro.moo.moos import MOOS
from repro.moo.moo_stage import MOOStage
from repro.moo.nsga2 import NSGA2
from repro.moo.problem import Problem
from repro.moo.result import OptimizationResult, SearchSnapshot
from repro.moo.scalarization import tchebycheff, weighted_distance
from repro.moo.termination import Budget, ConvergenceDetector
from repro.moo.weights import das_dennis_weights, uniform_weights

__all__ = [
    "Budget",
    "ConvergenceDetector",
    "MOEAD",
    "MOOS",
    "MOOStage",
    "NSGA2",
    "OptimizationResult",
    "ParetoArchive",
    "Problem",
    "SearchSnapshot",
    "crowding_distance",
    "das_dennis_weights",
    "dominates",
    "fast_non_dominated_sort",
    "hypervolume",
    "hypervolume_monte_carlo",
    "non_dominated_mask",
    "tchebycheff",
    "uniform_weights",
    "weighted_distance",
]
