"""Bounded Pareto archive of non-dominated designs."""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.moo.dominance import crowding_distance, dominates


class ParetoArchive:
    """Maintains a set of mutually non-dominated ``(design, objectives)`` pairs.

    When a maximum size is set and exceeded, the most crowded members are
    evicted first (crowding-distance based truncation), preserving spread.
    """

    def __init__(self, max_size: int | None = None):
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 or None")
        self.max_size = max_size
        self._designs: list[Any] = []
        self._objectives: list[np.ndarray] = []

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def add(self, design: Any, objectives: np.ndarray) -> bool:
        """Insert a candidate; returns True when it enters the archive.

        The candidate is rejected when an archived member dominates it or has
        identical objectives; archived members dominated by the candidate are
        removed.
        """
        objectives = np.asarray(objectives, dtype=np.float64).copy()
        keep_designs: list[Any] = []
        keep_objectives: list[np.ndarray] = []
        for archived_design, archived_obj in zip(self._designs, self._objectives):
            if dominates(archived_obj, objectives) or np.array_equal(archived_obj, objectives):
                return False
            if not dominates(objectives, archived_obj):
                keep_designs.append(archived_design)
                keep_objectives.append(archived_obj)
        keep_designs.append(design)
        keep_objectives.append(objectives)
        self._designs = keep_designs
        self._objectives = keep_objectives
        self._truncate()
        return True

    def add_many(self, designs: list[Any], objectives: np.ndarray) -> int:
        """Insert several candidates; returns how many entered the archive."""
        objectives = np.atleast_2d(np.asarray(objectives, dtype=np.float64))
        return sum(1 for design, obj in zip(designs, objectives) if self.add(design, obj))

    def _truncate(self) -> None:
        if self.max_size is None or len(self._designs) <= self.max_size:
            return
        while len(self._designs) > self.max_size:
            distances = crowding_distance(np.asarray(self._objectives))
            victim = int(np.argmin(distances))
            del self._designs[victim]
            del self._objectives[victim]

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._designs)

    def __iter__(self) -> Iterator[tuple[Any, np.ndarray]]:
        return iter(zip(self._designs, [o.copy() for o in self._objectives]))

    @property
    def designs(self) -> list[Any]:
        """The archived designs."""
        return list(self._designs)

    @property
    def objectives(self) -> np.ndarray:
        """The archived objective vectors as an ``n x M`` matrix."""
        if not self._objectives:
            return np.empty((0, 0))
        return np.asarray(self._objectives, dtype=np.float64).copy()

    def ideal_point(self) -> np.ndarray:
        """Componentwise best objective values across the archive."""
        if not self._objectives:
            raise ValueError("the archive is empty")
        return self.objectives.min(axis=0)

    def best_for_weight(self, weight: np.ndarray, reference: np.ndarray) -> tuple[Any, np.ndarray]:
        """Archived member with the best Tchebycheff value for a weight vector."""
        from repro.moo.scalarization import tchebycheff

        if not self._objectives:
            raise ValueError("the archive is empty")
        values = [tchebycheff(obj, weight, reference) for obj in self._objectives]
        best = int(np.argmin(values))
        return self._designs[best], self._objectives[best].copy()
