"""MOEA/D: multi-objective evolutionary algorithm based on decomposition.

Baseline algorithm from Zhang & Li (2007), used by the paper as the
EA-only comparison point.  The problem is decomposed into ``N`` Tchebycheff
sub-problems defined by evenly spread weight vectors; each generation mates
parents drawn (with probability ``delta``) from the sub-problem's
neighbourhood and replaces at most ``replacement_limit`` neighbours whose
scalarised fitness the offspring improves.
"""

from __future__ import annotations

import numpy as np

from repro.moo.base import PopulationOptimizer
from repro.moo.problem import Problem
from repro.moo.scalarization import tchebycheff
from repro.moo.termination import Budget
from repro.moo.weights import neighborhoods, uniform_weights
from repro.utils.rng import RngLike


class MOEAD(PopulationOptimizer):
    """MOEA/D with Tchebycheff decomposition and neighbourhood mating."""

    name = "MOEA/D"

    def __init__(
        self,
        problem: Problem,
        population_size: int = 50,
        neighborhood_size: int = 10,
        delta: float = 0.9,
        replacement_limit: int = 2,
        mutation_probability: float = 0.3,
        rng: RngLike = None,
    ):
        super().__init__(problem, population_size, rng)
        if neighborhood_size < 2:
            raise ValueError("neighborhood_size must be >= 2")
        if not (0.0 <= delta <= 1.0):
            raise ValueError("delta must lie in [0, 1]")
        if replacement_limit < 1:
            raise ValueError("replacement_limit must be >= 1")
        if not (0.0 <= mutation_probability <= 1.0):
            raise ValueError("mutation_probability must lie in [0, 1]")
        self.neighborhood_size = min(neighborhood_size, population_size)
        self.delta = delta
        self.replacement_limit = replacement_limit
        self.mutation_probability = mutation_probability
        self.weights = uniform_weights(problem.num_objectives, population_size, self.rng)
        self.neighbor_index = neighborhoods(self.weights, self.neighborhood_size)
        self.reference: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Algorithm
    # ------------------------------------------------------------------ #
    def initialize(self) -> None:
        super().initialize()
        self.reference = self.objectives.min(axis=0)

    def objective_scale(self) -> np.ndarray:
        """Per-objective normalisation span (population nadir minus ideal point)."""
        span = self.objectives.max(axis=0) - self.reference
        span[span <= 0] = 1.0
        return span

    def step(self, iteration: int, budget: Budget) -> None:
        for sub_problem in range(self.population_size):
            if budget.exhausted(iteration, self.evaluations, self.elapsed()):
                return
            pool = self._mating_pool(sub_problem)
            parent_a, parent_b = self.rng.choice(pool, size=2, replace=False)
            child = self.problem.crossover(
                self.designs[int(parent_a)], self.designs[int(parent_b)], self.rng
            )
            if self.rng.random() < self.mutation_probability:
                child = self.problem.mutate(child, self.rng)
            child = self.repair_brood([child])[0]
            child_obj = self.evaluate(child)
            self.reference = np.minimum(self.reference, child_obj)
            self._update_neighbors(sub_problem, pool, child, child_obj)

    def _mating_pool(self, sub_problem: int) -> np.ndarray:
        if self.rng.random() < self.delta:
            return self.neighbor_index[sub_problem]
        return np.arange(self.population_size)

    def _update_neighbors(
        self, sub_problem: int, pool: np.ndarray, child, child_obj: np.ndarray
    ) -> None:
        scale = self.objective_scale()
        replaced = 0
        order = self.rng.permutation(len(pool))
        for idx in order:
            neighbor = int(pool[int(idx)])
            current_value = tchebycheff(
                self.objectives[neighbor], self.weights[neighbor], self.reference, scale
            )
            child_value = tchebycheff(child_obj, self.weights[neighbor], self.reference, scale)
            if child_value < current_value:
                self.designs[neighbor] = child
                self.objectives[neighbor] = child_obj
                replaced += 1
                if replaced >= self.replacement_limit:
                    break

    def build_result(self):
        result = super().build_result()
        result.metadata["weights"] = self.weights.copy()
        return result
