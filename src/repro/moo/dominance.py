"""Pareto-dominance utilities (minimisation convention throughout).

A vector ``a`` dominates ``b`` when it is no worse in every objective and
strictly better in at least one.  These functions back the Pareto archive,
NSGA-II's non-dominated sorting and the hypervolume routines.
"""

from __future__ import annotations

import numpy as np


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True when objective vector ``a`` Pareto-dominates ``b`` (minimisation)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"objective vectors must have the same shape: {a.shape} vs {b.shape}")
    return bool(np.all(a <= b) and np.any(a < b))


def non_dominated_mask(objectives: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of an ``n x M`` objective matrix."""
    objectives = np.atleast_2d(np.asarray(objectives, dtype=np.float64))
    n = len(objectives)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        for j in range(n):
            if i == j or not mask[j]:
                continue
            if dominates(objectives[j], objectives[i]):
                mask[i] = False
                break
    return mask


def non_dominated_front(objectives: np.ndarray) -> np.ndarray:
    """The non-dominated rows of an objective matrix (duplicates preserved)."""
    objectives = np.atleast_2d(np.asarray(objectives, dtype=np.float64))
    return objectives[non_dominated_mask(objectives)]


def fast_non_dominated_sort(objectives: np.ndarray) -> list[list[int]]:
    """NSGA-II fast non-dominated sorting.

    Returns the list of fronts; each front is a list of row indices, the first
    front being the non-dominated set.
    """
    objectives = np.atleast_2d(np.asarray(objectives, dtype=np.float64))
    n = len(objectives)
    dominated_by: list[list[int]] = [[] for _ in range(n)]
    domination_count = np.zeros(n, dtype=np.int64)

    for i in range(n):
        for j in range(i + 1, n):
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(objectives[j], objectives[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1

    fronts: list[list[int]] = [[i for i in range(n) if domination_count[i] == 0]]
    current = 0
    while fronts[current]:
        next_front: list[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # the last front is always empty
    return fronts


def crowding_distance(objectives: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each row within one front."""
    objectives = np.atleast_2d(np.asarray(objectives, dtype=np.float64))
    n, m = objectives.shape
    distance = np.zeros(n, dtype=np.float64)
    if n <= 2:
        return np.full(n, np.inf)
    for obj in range(m):
        order = np.argsort(objectives[:, obj], kind="stable")
        sorted_values = objectives[order, obj]
        span = sorted_values[-1] - sorted_values[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span == 0:
            continue
        distance[order[1:-1]] += (sorted_values[2:] - sorted_values[:-2]) / span
    return distance
