"""Generic greedy-descent local search over a problem's neighbourhood structure.

Used by MOELA (descending the weighted-sum scalarisation of Eq. 8), by the
MOO-STAGE/MOOS baselines (descending a PHV-based acceptance function), and by
the pure local-search baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.moo.problem import Problem
from repro.utils.rng import RngLike, ensure_rng

ScalarFn = Callable[[Any, np.ndarray], float]


def score_neighbor_brood(
    problem: Problem,
    current: Any,
    count: int,
    rng,
    evaluate: Callable[[Any], np.ndarray] | None = None,
    evaluate_many: Callable[[list[Any]], np.ndarray] | None = None,
    repair: Callable[[list[Any]], list[Any]] | None = None,
) -> tuple[list[Any], np.ndarray]:
    """Generate ``count`` random neighbours of ``current`` and score them.

    All neighbours are generated *before* any evaluation, so the batched
    (``evaluate_many``) and scalar (``evaluate``) scoring paths consume the
    RNG identically and visit the same designs — this is the invariant the
    seeded batch-vs-scalar equivalence tests pin down.  Shared by
    :func:`greedy_descent` and the MOOS / MOO-STAGE PHV local searches.

    ``repair`` (pass the optimiser's
    :meth:`~repro.moo.base.PopulationOptimizer.brood_repairer`) runs the
    generated brood through directed feasibility repair before scoring;
    ``None`` — the default — leaves the brood untouched.
    """
    candidates = [problem.neighbor(current, rng) for _ in range(count)]
    if repair is not None:
        candidates = repair(candidates)
    if evaluate_many is not None:
        objectives = np.asarray(evaluate_many(candidates), dtype=np.float64)
    else:
        evaluate = evaluate if evaluate is not None else problem.evaluate
        objectives = np.array([evaluate(candidate) for candidate in candidates], dtype=np.float64)
    return candidates, objectives


@dataclass(frozen=True)
class TrajectoryPoint:
    """One visited design during a local search."""

    design: Any
    objectives: np.ndarray
    value: float


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of one greedy-descent local search."""

    best_design: Any
    best_objectives: np.ndarray
    best_value: float
    start_value: float
    trajectory: tuple[TrajectoryPoint, ...]
    evaluations: int

    @property
    def improvement(self) -> float:
        """Absolute improvement of the scalar value over the start design."""
        return self.start_value - self.best_value


def greedy_descent(
    problem: Problem,
    start: Any,
    start_objectives: np.ndarray,
    scalar_fn: ScalarFn,
    max_steps: int = 25,
    neighbors_per_step: int = 4,
    patience: int = 3,
    rng: RngLike = None,
    evaluate: Callable[[Any], np.ndarray] | None = None,
    evaluate_many: Callable[[list[Any]], np.ndarray] | None = None,
    repair: Callable[[list[Any]], list[Any]] | None = None,
) -> LocalSearchResult:
    """Greedy first/best-improvement descent on ``scalar_fn``.

    At every step ``neighbors_per_step`` random neighbours of the current
    design are generated and scored — through one ``evaluate_many`` batch
    call when provided, per-design otherwise — and the best one is accepted
    if it improves the scalar value; the search stops after ``patience``
    consecutive non-improving steps or ``max_steps`` steps.  Neighbour
    generation happens before any evaluation, so the batch and per-design
    paths consume the RNG identically and visit the same designs.

    Parameters
    ----------
    scalar_fn:
        Maps ``(design, objectives)`` to the scalar value being minimised.
    evaluate:
        Objective evaluation callable; defaults to ``problem.evaluate`` (pass
        the optimiser's counting wrapper to track evaluation effort).
    evaluate_many:
        Optional batch evaluation callable mapping a list of designs to an
        objective matrix; when given it scores each step's neighbours in one
        call (pass the optimiser's counting batch wrapper).
    repair:
        Optional brood-repair callable applied to each step's neighbours
        before scoring (pass the optimiser's
        :meth:`~repro.moo.base.PopulationOptimizer.brood_repairer`).
    """
    if max_steps < 1:
        raise ValueError("max_steps must be >= 1")
    if neighbors_per_step < 1:
        raise ValueError("neighbors_per_step must be >= 1")
    rng = ensure_rng(rng)
    evaluate = evaluate if evaluate is not None else problem.evaluate

    current = start
    current_obj = np.asarray(start_objectives, dtype=np.float64)
    current_value = float(scalar_fn(current, current_obj))
    start_value = current_value
    trajectory = [TrajectoryPoint(current, current_obj.copy(), current_value)]
    evaluations = 0
    stall = 0

    for _ in range(max_steps):
        best_candidate = None
        best_candidate_obj = None
        best_candidate_value = current_value
        candidates, candidate_objs = score_neighbor_brood(
            problem, current, neighbors_per_step, rng,
            evaluate=evaluate, evaluate_many=evaluate_many, repair=repair,
        )
        evaluations += len(candidates)
        for candidate, candidate_obj in zip(candidates, candidate_objs):
            value = float(scalar_fn(candidate, candidate_obj))
            trajectory.append(TrajectoryPoint(candidate, candidate_obj.copy(), value))
            if value < best_candidate_value:
                best_candidate = candidate
                best_candidate_obj = candidate_obj
                best_candidate_value = value
        if best_candidate is None:
            stall += 1
            if stall >= patience:
                break
        else:
            stall = 0
            current = best_candidate
            current_obj = best_candidate_obj
            current_value = best_candidate_value

    return LocalSearchResult(
        best_design=current,
        best_objectives=current_obj.copy(),
        best_value=current_value,
        start_value=start_value,
        trajectory=tuple(trajectory),
        evaluations=evaluations,
    )
