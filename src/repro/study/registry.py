"""String-keyed registry of optimiser specifications.

This is the front door every dispatch path goes through:
:func:`repro.experiments.runner.run_algorithm`, the campaign grid builder,
the :class:`~repro.study.study.Study` façade and the ``python -m repro`` CLI
all resolve algorithm names here instead of hard-coding an if/elif chain.
Third-party optimisers plug in by registering an :class:`OptimizerSpec`
(:func:`register_optimizer`) — no change to ``repro/experiments`` required.

Name handling is normalised in exactly one place: :func:`canonical_key`
strips separators and case, so ``"MOEA/D"``, ``"MOEAD"`` and ``"moea-d"``
all resolve to the same spec (the alias special-cases that used to live in
``run_campaign``'s validation are gone).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.moo.termination import Budget

if TYPE_CHECKING:  # imported lazily to keep this module cycle-free
    from repro.experiments.config import ExperimentConfig
    from repro.moo.base import PopulationOptimizer
    from repro.moo.problem import Problem

#: ``factory(problem, experiment, seed, **options) -> optimizer``; ``options``
#: are validated against the spec's declared hyperparameter schema first.
OptimizerFactory = Callable[..., "PopulationOptimizer"]


def canonical_key(name: str) -> str:
    """Case- and separator-insensitive lookup key for an algorithm name.

    ``"MOEA/D"``, ``"moead"`` and ``"MOEA-D"`` all map to ``"MOEAD"`` — this
    is the single place alias spellings are normalised.
    """
    key = re.sub(r"[^A-Z0-9]+", "", str(name).upper())
    if not key:
        raise ValueError(f"algorithm name {name!r} has no alphanumeric characters")
    return key


@dataclass(frozen=True)
class OptimizerSpec:
    """Everything the front door needs to know about one optimiser.

    Parameters
    ----------
    name:
        Canonical display name (``"MOEA/D"``); used in results, manifests,
        tables and derived seeds.
    factory:
        ``factory(problem, experiment, seed, **options)`` building a
        ready-to-run optimiser.  The factory owns the mapping from the shared
        :class:`~repro.experiments.config.ExperimentConfig` onto the
        optimiser's constructor so every dispatch path wires budgets and
        hyper-parameters identically.
    hyperparameters:
        Declared override schema: option name -> one-line description.  Any
        option not declared here is rejected before the factory runs.
    aliases:
        Additional accepted spellings (beyond what :func:`canonical_key`
        already folds together).
    description:
        One-line summary shown by ``python -m repro run --list``.
    default_budget:
        Optional ``experiment -> Budget`` override; the default wires
        ``Budget.evaluations(experiment.max_evaluations)``.
    """

    name: str
    factory: OptimizerFactory
    hyperparameters: Mapping[str, str] = field(default_factory=dict)
    aliases: tuple[str, ...] = ()
    description: str = ""
    default_budget: "Callable[[ExperimentConfig], Budget] | None" = None

    def budget_for(self, experiment: "ExperimentConfig") -> Budget:
        """The budget a run gets when the caller does not pass one."""
        if self.default_budget is not None:
            return self.default_budget(experiment)
        return Budget.evaluations(experiment.max_evaluations)

    def validate_options(self, options: Mapping[str, Any]) -> None:
        """Reject overrides that are not part of the declared schema."""
        unknown = sorted(set(options) - set(self.hyperparameters))
        if unknown:
            declared = ", ".join(sorted(self.hyperparameters)) or "(none)"
            raise ValueError(
                f"unknown hyperparameters {unknown} for optimizer {self.name!r}; "
                f"declared: {declared}"
            )

    def create(
        self,
        problem: "Problem",
        experiment: "ExperimentConfig",
        seed: int,
        **options: Any,
    ) -> "PopulationOptimizer":
        """Validate ``options`` against the schema and build the optimiser."""
        self.validate_options(options)
        return self.factory(problem, experiment, seed, **options)


class OptimizerRegistry:
    """Registry of :class:`OptimizerSpec` keyed by canonicalised name."""

    def __init__(self) -> None:
        self._specs: dict[str, OptimizerSpec] = {}  # canonical name -> spec
        self._index: dict[str, str] = {}  # canonical_key -> canonical name

    def register(self, spec: OptimizerSpec, overwrite: bool = False) -> OptimizerSpec:
        """Add a spec under its name and aliases; returns the spec.

        With ``overwrite=False`` a key collision with a *different* optimiser
        raises; re-registering the same name overwrites silently only when
        ``overwrite=True``.
        """
        keys = {canonical_key(spec.name)}
        keys.update(canonical_key(alias) for alias in spec.aliases)
        if not overwrite:
            for key in sorted(keys):
                owner = self._index.get(key)
                if owner is not None and owner != spec.name:
                    raise ValueError(
                        f"name {spec.name!r} (key {key!r}) collides with registered "
                        f"optimizer {owner!r}; pass overwrite=True to replace it"
                    )
            if spec.name in self._specs:
                raise ValueError(
                    f"optimizer {spec.name!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
        stale = [k for k, owner in self._index.items() if owner == spec.name]
        for key in stale:
            del self._index[key]
        self._specs[spec.name] = spec
        for key in sorted(keys):
            self._index[key] = spec.name
        return spec

    def unregister(self, name: str) -> None:
        """Remove an optimiser (and all its lookup keys) from the registry."""
        canonical = self.canonical(name)
        del self._specs[canonical]
        for key in [k for k, owner in self._index.items() if owner == canonical]:
            del self._index[key]

    def names(self) -> tuple[str, ...]:
        """Canonical names in registration order."""
        return tuple(self._specs)

    def available_message(self) -> str:
        """Rendering of the registered names used in every lookup error."""
        return ", ".join(self.names()) or "(no optimizers registered)"

    def __contains__(self, name: object) -> bool:
        try:
            return canonical_key(str(name)) in self._index
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._specs)

    def spec(self, name: str) -> OptimizerSpec:
        """Resolve any accepted spelling to its spec (``ValueError`` on miss)."""
        canonical = self._index.get(canonical_key(name))
        if canonical is None:
            raise ValueError(
                f"unknown algorithm {name!r}; available: {self.available_message()}"
            )
        return self._specs[canonical]

    def canonical(self, name: str) -> str:
        """Canonical display name for any accepted spelling."""
        return self.spec(name).name

    def create(
        self,
        name: str,
        problem: "Problem",
        experiment: "ExperimentConfig",
        seed: int,
        **options: Any,
    ) -> "PopulationOptimizer":
        """Build a ready-to-run optimiser for any accepted spelling."""
        return self.spec(name).create(problem, experiment, seed, **options)


_DEFAULT_REGISTRY = OptimizerRegistry()
_BUILTINS_LOADED = False


def default_registry() -> OptimizerRegistry:
    """The process-wide registry, with the five baselines pre-registered.

    The baseline specs live in :mod:`repro.study.optimizers` and self-register
    on first access (lazily, so importing this module never drags in the
    optimiser implementations).
    """
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        # Flag before the import so the registration calls inside
        # repro.study.optimizers (which go through register_optimizer ->
        # default_registry) do not recurse into the import; reset on failure
        # so a broken first import stays retryable and diagnosable instead of
        # leaving the process with a silently empty registry.
        _BUILTINS_LOADED = True
        try:
            import repro.study.optimizers  # noqa: F401  (registers the baselines)
        except BaseException:
            _BUILTINS_LOADED = False
            raise
    return _DEFAULT_REGISTRY


def register_optimizer(spec: OptimizerSpec, overwrite: bool = False) -> OptimizerSpec:
    """Register a spec with the default registry (third-party entry point)."""
    return default_registry().register(spec, overwrite=overwrite)
