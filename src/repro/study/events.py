"""Streaming progress events for studies, runs and campaigns.

Long campaigns used to be silent until the last shard landed.  This module
defines the lightweight event protocol that fixes that: optimisers emit a
:class:`StudyEvent` per iteration (from
:meth:`repro.moo.base.PopulationOptimizer.run`), the campaign engine emits one
per shard start/completion, and the :class:`~repro.study.study.Study` façade
brackets everything with study-level events.  Consumers subscribe by passing
any ``Callable[[StudyEvent], None]`` — there is no broker, no thread and no
buffering, so emission can never perturb a seeded search (events are built
from read-only counters after all RNG consumption of the iteration).

This module is intentionally dependency-free (dataclasses only): it is
imported by :mod:`repro.moo.base`, which sits far below the study layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

#: Event kinds emitted by optimisers (``run_*``/``iteration``), the campaign
#: engine (``campaign_*``/``shard_*``) and the Study façade (``study_*``).
EVENT_KINDS: tuple[str, ...] = (
    "study_started",
    "run_started",
    "iteration",
    "run_finished",
    "campaign_started",
    "shard_started",
    "shard_skipped",
    "shard_finished",
    "campaign_finished",
    "study_finished",
)


@dataclass(frozen=True)
class StudyEvent:
    """One structured progress event.

    Parameters
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    algorithm, application, num_objectives:
        Identity of the run (or campaign cell) the event belongs to; ``None``
        for study/campaign-level events that span several runs.
    iteration:
        Optimiser iteration the event was emitted after (``run_*`` and
        ``iteration`` events only).
    evaluations:
        Objective evaluations consumed so far by the emitting run, or by the
        finished cell for ``shard_finished``.  Within one run this is
        monotonically non-decreasing.
    elapsed_seconds:
        Wall-clock seconds since the emitting run/campaign started.
    payload:
        Kind-specific extras: ``front_size`` and ``routing_cache`` counters on
        run events, the cell ``key`` on shard events, executed/skipped counts
        on ``campaign_finished``.
    """

    kind: str
    algorithm: "str | None" = None
    application: "str | None" = None
    num_objectives: "int | None" = None
    iteration: "int | None" = None
    evaluations: "int | None" = None
    elapsed_seconds: float = 0.0
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; known: {EVENT_KINDS}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (the event-log line format).

        ``None`` fields are omitted so log lines stay small; ``payload`` is
        copied into a plain dict.  :meth:`from_dict` round-trips the result.
        """
        data: dict[str, Any] = {"kind": self.kind}
        for name in ("algorithm", "application", "num_objectives", "iteration", "evaluations"):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        if self.elapsed_seconds:
            data["elapsed_seconds"] = self.elapsed_seconds
        if self.payload:
            data["payload"] = dict(self.payload)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudyEvent":
        """Rebuild an event from :meth:`to_dict` output (raises on bad kinds)."""
        return cls(
            kind=str(data["kind"]),
            algorithm=data.get("algorithm"),
            application=data.get("application"),
            num_objectives=data.get("num_objectives"),
            iteration=data.get("iteration"),
            evaluations=data.get("evaluations"),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            payload=dict(data.get("payload", {})),
        )

    def describe(self) -> str:
        """One-line human-readable rendering (used by the CLI progress mode)."""
        scope = ""
        if self.algorithm is not None:
            where = f"{self.application}/{self.num_objectives}-obj" if self.application else ""
            scope = f"[{self.algorithm}{' ' + where if where else ''}] "
        bits = [self.kind.replace("_", " ")]
        if self.iteration is not None and self.kind == "iteration":
            bits = [f"iteration {self.iteration}"]
        if self.evaluations is not None:
            bits.append(f"evaluations={self.evaluations}")
        front = self.payload.get("front_size")
        if front is not None:
            bits.append(f"front={front}")
        stats = self.payload.get("routing_cache")
        if isinstance(stats, Mapping) and stats.get("requests"):
            bits.append(f"cache-hit-rate={stats.get('hit_rate', 0.0):.0%}")
        key = self.payload.get("key")
        if key is not None:
            bits.append(str(key))
        return scope + " ".join(bits)


#: Signature every event consumer implements.
EventCallback = Callable[[StudyEvent], None]
