"""Baseline optimiser specs: the five algorithms of the paper self-register here.

Each spec's factory owns the mapping from the shared
:class:`~repro.experiments.config.ExperimentConfig` onto the optimiser's
constructor — exactly the wiring the old ``run_algorithm`` if/elif chain
performed, so registry-dispatched runs are bit-identical to the historical
path.  Hyper-parameter overrides (the ``options`` of
:meth:`~repro.study.registry.OptimizerSpec.create`) are applied on top of the
experiment-derived defaults; ``population_size`` overrides also re-derive the
dependent ``min(..., population_size)`` clamps unless those are overridden
explicitly too.

Registrations pass ``overwrite=True`` so the module stays idempotent: if the
first import fails partway (and the registry resets its loaded flag), a retry
re-registers the already-added specs cleanly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.config import MOELAConfig
from repro.core.moela import MOELA
from repro.moo.moead import MOEAD
from repro.moo.moo_stage import MOOStage
from repro.moo.moos import MOOS
from repro.moo.nsga2 import NSGA2
from repro.study.registry import OptimizerSpec, register_optimizer

if TYPE_CHECKING:
    from repro.experiments.config import ExperimentConfig
    from repro.moo.problem import Problem

#: Canonical names of the built-in baselines, in the paper's order.  This is
#: what ``repro.experiments.runner.ALGORITHMS`` re-exports.
BUILTIN_ALGORITHMS: tuple[str, ...] = ("MOELA", "MOEA/D", "MOOS", "MOO-STAGE", "NSGA-II")

_BATCH_EVALUATION_DOC = (
    "False selects the scalar reference evaluation path (the equivalence oracle)"
)


def _moela_factory(
    problem: "Problem", experiment: "ExperimentConfig", seed: int, **options: Any
) -> MOELA:
    batch_evaluation = bool(options.pop("batch_evaluation", True))
    population_size = int(options.pop("population_size", experiment.population_size))
    settings: dict[str, Any] = dict(
        population_size=population_size,
        generations=experiment.moela.generations,
        iter_early=experiment.moela.iter_early,
        n_local=min(experiment.moela.n_local, population_size),
        delta=experiment.moela.delta,
        neighborhood_size=min(experiment.moela.neighborhood_size, population_size),
        replacement_limit=experiment.moela.replacement_limit,
        local_search_steps=experiment.moela.local_search_steps,
        local_search_neighbors=experiment.moela.local_search_neighbors,
        local_search_patience=experiment.moela.local_search_patience,
        max_training_samples=experiment.moela.max_training_samples,
        forest_size=experiment.moela.forest_size,
        forest_depth=experiment.moela.forest_depth,
        seed=seed,
    )
    settings.update(options)
    return MOELA(problem, MOELAConfig(**settings), rng=seed, batch_evaluation=batch_evaluation)


def _moead_factory(
    problem: "Problem", experiment: "ExperimentConfig", seed: int, **options: Any
) -> MOEAD:
    population_size = int(options.pop("population_size", experiment.population_size))
    settings: dict[str, Any] = dict(
        population_size=population_size,
        neighborhood_size=min(experiment.moela.neighborhood_size, population_size),
        delta=experiment.moela.delta,
    )
    settings.update(options)
    return MOEAD(problem, rng=seed, **settings)


def _moos_like_settings(
    experiment: "ExperimentConfig", options: dict[str, Any]
) -> dict[str, Any]:
    settings: dict[str, Any] = dict(
        population_size=int(options.pop("population_size", experiment.population_size)),
        searches_per_iteration=experiment.searches_per_iteration,
        local_search_steps=experiment.local_search_steps,
        neighbors_per_step=experiment.neighbors_per_step,
    )
    settings.update(options)
    return settings


def _moos_factory(
    problem: "Problem", experiment: "ExperimentConfig", seed: int, **options: Any
) -> MOOS:
    return MOOS(problem, rng=seed, **_moos_like_settings(experiment, options))


def _moo_stage_factory(
    problem: "Problem", experiment: "ExperimentConfig", seed: int, **options: Any
) -> MOOStage:
    return MOOStage(problem, rng=seed, **_moos_like_settings(experiment, options))


def _nsga2_factory(
    problem: "Problem", experiment: "ExperimentConfig", seed: int, **options: Any
) -> NSGA2:
    settings: dict[str, Any] = dict(
        population_size=int(options.pop("population_size", experiment.population_size)),
    )
    settings.update(options)
    return NSGA2(problem, rng=seed, **settings)


_LOCAL_SEARCH_HYPERPARAMETERS = {
    "population_size": "population / archive size N",
    "searches_per_iteration": "local searches launched per iteration",
    "local_search_steps": "greedy-descent steps per local search",
    "neighbors_per_step": "neighbours scored per descent step",
    "early_random_iterations": "iterations with random restart selection",
    "max_training_samples": "cap on the trajectory training set",
    "forest_size": "random-forest size of the learned restart model",
    "batch_evaluation": _BATCH_EVALUATION_DOC,
}

register_optimizer(
    OptimizerSpec(
        name="MOELA",
        factory=_moela_factory,
        description="hybrid evolutionary/learning DSE framework (the paper's Algorithm 1)",
        hyperparameters={
            "population_size": "population / decomposition sub-problem count N",
            "generations": "MOELA iterations gen",
            "iter_early": "iterations with random local-search start selection",
            "n_local": "local searches launched per iteration",
            "delta": "neighbourhood-mating probability",
            "neighborhood_size": "decomposition neighbourhood size T",
            "replacement_limit": "max neighbours an offspring may replace",
            "local_search_steps": "greedy-descent steps per Eq.-8 local search",
            "local_search_neighbors": "neighbours scored per descent step",
            "local_search_patience": "descent steps without improvement before stopping",
            "max_training_samples": "cap on the trajectory training set |S_train|",
            "forest_size": "Eval random-forest size",
            "forest_depth": "Eval random-forest depth",
            "batch_evaluation": _BATCH_EVALUATION_DOC,
        },
    ),
    overwrite=True,
)

register_optimizer(
    OptimizerSpec(
        name="MOEA/D",
        factory=_moead_factory,
        description="decomposition-based EA baseline (Zhang & Li 2007)",
        hyperparameters={
            "population_size": "population / decomposition sub-problem count N",
            "neighborhood_size": "decomposition neighbourhood size T",
            "delta": "neighbourhood-mating probability",
            "replacement_limit": "max neighbours an offspring may replace",
            "mutation_probability": "post-crossover mutation probability",
        },
    ),
    overwrite=True,
)

register_optimizer(
    OptimizerSpec(
        name="MOOS",
        factory=_moos_factory,
        description="ML-guided local search with learned direction selection (Deshwal 2019)",
        hyperparameters={
            **_LOCAL_SEARCH_HYPERPARAMETERS,
            "num_directions": "candidate scalarisation directions scored per search",
        },
    ),
    overwrite=True,
)

register_optimizer(
    OptimizerSpec(
        name="MOO-STAGE",
        factory=_moo_stage_factory,
        description="STAGE-style learned restart selection with PHV local search (Joardar 2019)",
        hyperparameters=dict(_LOCAL_SEARCH_HYPERPARAMETERS),
    ),
    overwrite=True,
)

register_optimizer(
    OptimizerSpec(
        name="NSGA-II",
        factory=_nsga2_factory,
        aliases=("NSGA2",),
        description="non-dominated-sorting GA baseline (Deb 2002)",
        hyperparameters={
            "population_size": "population size N",
            "crossover_probability": "per-offspring crossover probability",
            "mutation_probability": "per-offspring mutation probability",
            "batch_evaluation": _BATCH_EVALUATION_DOC,
        },
    ),
    overwrite=True,
)
