"""The study layer: unified front-door API for runs, comparisons and campaigns.

* :mod:`repro.study.registry` — the :class:`OptimizerRegistry` every dispatch
  path resolves algorithm names through; third-party optimisers plug in via
  :func:`register_optimizer`.
* :mod:`repro.study.optimizers` — the five baseline specs (self-registered).
* :mod:`repro.study.events` — the :class:`StudyEvent` streaming-progress
  protocol emitted by optimisers, campaigns and studies.
* :mod:`repro.study.event_log` — the durable JSONL event log that carries
  those events across the campaign process-pool boundary (writer + tailer).
* :mod:`repro.study.study` — the :class:`Study` façade (fluent or declarative
  TOML/JSON construction) and its unified :class:`StudyResult`.

Heavy submodules are re-exported lazily (PEP 562): :mod:`repro.moo.base`
imports :mod:`repro.study.events` from far below this layer, so this
``__init__`` must stay import-light.
"""

from __future__ import annotations

from repro.study.events import EVENT_KINDS, EventCallback, StudyEvent

__all__ = [
    "EVENT_KINDS",
    "EVENT_LOG_NAME",
    "EventCallback",
    "EventLogReader",
    "EventLogWriter",
    "EventRecord",
    "OptimizerRegistry",
    "OptimizerSpec",
    "Study",
    "StudyEvent",
    "StudyResult",
    "canonical_key",
    "default_registry",
    "read_event_log",
    "register_optimizer",
]

_LAZY = {
    "EVENT_LOG_NAME": ("repro.study.event_log", "EVENT_LOG_NAME"),
    "EventLogReader": ("repro.study.event_log", "EventLogReader"),
    "EventLogWriter": ("repro.study.event_log", "EventLogWriter"),
    "EventRecord": ("repro.study.event_log", "EventRecord"),
    "read_event_log": ("repro.study.event_log", "read_event_log"),
    "OptimizerRegistry": ("repro.study.registry", "OptimizerRegistry"),
    "OptimizerSpec": ("repro.study.registry", "OptimizerSpec"),
    "canonical_key": ("repro.study.registry", "canonical_key"),
    "default_registry": ("repro.study.registry", "default_registry"),
    "register_optimizer": ("repro.study.registry", "register_optimizer"),
    "Study": ("repro.study.study", "Study"),
    "StudyResult": ("repro.study.study", "StudyResult"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    return getattr(import_module(module_name), attribute)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
