"""Durable JSONL event log: :class:`StudyEvent`\\ s across process boundaries.

Callbacks cannot cross a process pool, so pooled campaigns used to be silent
between shard completions.  This module fixes that with a plain append-only
JSONL file next to the campaign manifest: every worker appends its events
through an :class:`EventLogWriter` (one ``os.write`` per line onto an
``O_APPEND`` descriptor — the POSIX guarantee campaign shards already rely on
for atomicity), and the parent replays new lines into the caller's
subscribers through an :class:`EventLogReader` tailer.  Inline and pooled
campaigns therefore emit the identical event stream, and the log itself is a
durable record: a killed campaign's events survive for post-mortems, and a
resumed campaign appends to the same file.

Line format (one JSON object per line, no pretty-printing)::

    {"origin": "cell-MOELA_BFS_3obj", "seq": 12, "event": {"kind": "iteration", ...}}

``origin`` identifies the writer (one per campaign cell, plus ``"campaign"``
for the parent's bracket events) and ``seq`` is that writer's own monotonic
counter, so a replayed log can be checked for consistency per origin even
though writers interleave freely.  A ``seq`` of ``0`` marks a new writer
*incarnation* under the same origin — a resumed campaign re-running a cell,
or the parent bracketing another invocation — so the consistency invariant
over a multi-invocation log is: every origin's sequence splits into
incarnations at each ``0``, and each incarnation counts up by exactly one.

Crash behaviour: a process killed mid-``write`` can leave at most one torn
line.  A torn line at the *end* of the log is simply not yet consumed (the
reader only parses newline-terminated lines); a torn line in the *middle*
(the next writer appended after the torn bytes) fails JSON parsing and is
skipped, counted in :attr:`EventLogReader.corrupt_lines` — replay never
propagates garbage, it only loses the single event whose write was cut.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.study.events import StudyEvent
from repro.utils.serialization import json_line

#: File name of the event log inside a campaign output directory.
EVENT_LOG_NAME = "events.jsonl"


@dataclass(frozen=True)
class EventRecord:
    """One parsed event-log line: the event plus its provenance."""

    origin: str
    seq: int
    event: StudyEvent


class EventLogWriter:
    """Append-only event sink usable directly as an ``EventCallback``.

    Each :meth:`append` serialises one event to a single JSON line and writes
    it with one ``os.write`` call on an ``O_APPEND`` descriptor, so concurrent
    writers (campaign pool workers) never interleave bytes within a line on a
    local filesystem.  The descriptor is opened lazily on first append and
    the writer is safe to construct in the parent and use after ``fork``/
    ``spawn`` — workers construct their own instance from the path anyway.
    """

    def __init__(self, path: "str | Path", origin: "str | None" = None):
        self.path = Path(path)
        self.origin = origin if origin is not None else f"pid-{os.getpid()}"
        self._seq = 0
        self._fd: "int | None" = None

    def append(self, event: StudyEvent) -> None:
        """Durably append one event (one atomic single-``write`` line)."""
        record = {"origin": self.origin, "seq": self._seq, "event": event.to_dict()}
        if self._fd is None:
            self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            if self._log_has_torn_tail():
                # Self-heal after a kill: terminate the torn last line so this
                # writer's records stay parseable (the torn line alone is
                # skipped on replay, not merged with ours).
                os.write(self._fd, b"\n")
        os.write(self._fd, json_line(record))
        self._seq += 1

    def _log_has_torn_tail(self) -> bool:
        """True when the log is non-empty and not newline-terminated."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return False
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except OSError:
            return False

    # Writers double as event callbacks: ``on_event=writer`` just works.
    __call__ = append

    def close(self) -> None:
        """Close the underlying descriptor (appends after close reopen it)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class EventLogReader:
    """Incremental tailer over an event log.

    Tracks a byte offset and, on every :meth:`poll`, parses the complete
    (newline-terminated) lines appended since the previous poll.  A trailing
    partial line — an append in flight, or the torn last write of a killed
    process — stays unconsumed until its newline arrives; complete lines that
    fail to parse are skipped and counted in :attr:`corrupt_lines`.

    ``start_at_end=True`` begins tailing at the file's current end, so a
    resumed campaign replays only its own events, not the previous run's —
    replaying history is what ``start_at_end=False`` (the default) is for.
    """

    def __init__(self, path: "str | Path", start_at_end: bool = False):
        self.path = Path(path)
        self.corrupt_lines = 0
        self._offset = 0
        if start_at_end and self.path.exists():
            self._offset = self.path.stat().st_size

    @property
    def offset(self) -> int:
        """Byte offset of the next unread position in the log."""
        return self._offset

    def poll(self) -> list[EventRecord]:
        """Parse and return every complete record appended since last poll."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
        except FileNotFoundError:
            return []
        if not data:
            return []
        # Only consume up to the last newline: a trailing partial line is an
        # append still in flight (or a torn final write) and must be left for
        # a later poll / never consumed.
        end = data.rfind(b"\n")
        if end < 0:
            return []
        complete, self._offset = data[: end + 1], self._offset + end + 1
        records: list[EventRecord] = []
        for line in complete.splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
                record = EventRecord(
                    origin=str(payload["origin"]),
                    seq=int(payload["seq"]),
                    event=StudyEvent.from_dict(payload["event"]),
                )
            except (ValueError, KeyError, TypeError):
                self.corrupt_lines += 1
                continue
            records.append(record)
        return records

    def __iter__(self) -> Iterator[EventRecord]:
        """One full pass over the currently unread portion of the log."""
        return iter(self.poll())


def read_event_log(path: "str | Path") -> list[EventRecord]:
    """Replay a whole event log from the beginning (durability inspection)."""
    return EventLogReader(path).poll()
