"""The :class:`Study` façade: one front door for runs, comparisons and campaigns.

A study is built fluently::

    result = (
        Study(platform="small-3x3x3", objectives=5)
        .algorithm("moela", population_size=16)
        .algorithm("MOOS")
        .apps("BFS", "HOT")
        .evaluations(1_200)
        .run()
    )

or declaratively from a dict / TOML / JSON file (:meth:`Study.from_dict`,
:meth:`Study.from_file`), with full validation and a round-tripping
:meth:`Study.to_dict`.  ``run()`` executes every (algorithm, application,
scenario) combination through the registry-backed
:func:`repro.experiments.runner.run_algorithm` path — bit-identical to
calling it directly — or, when :meth:`Study.campaign` configured an output
directory, through the sharded campaign engine.  Either way the outcome is
one unified :class:`StudyResult` carrying every
:class:`~repro.moo.result.OptimizationResult`, the routing-cache counters and
the paper's comparison-table builders.

Progress streams through the :class:`~repro.study.events.StudyEvent` protocol:
subscribe with :meth:`Study.on_event` and every optimiser iteration, campaign
shard and study boundary emits a structured event.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.experiments.config import CampaignConfig, ExperimentConfig
from repro.experiments.runner import (
    CampaignExecution,
    CampaignSummary,
    make_problem,
    run_algorithm,
    run_campaign,
    submit_campaign,
)
from repro.experiments.tables import (
    BASELINES,
    RunMap,
    TableResult,
    _phv_gain_value,
    _speedup_value,
    aggregate_campaign,
    build_comparison_table,
    format_table,
)
from repro.moo.result import OptimizationResult
from repro.experiments.robustness import (
    RobustnessCertificate,
    SensitivityMap,
    robustness_certificate,
    sensitivity_map,
)
from repro.noc.platform import PlatformConfig
from repro.scenarios.registry import canonical_scenario_key
from repro.study.events import EventCallback, StudyEvent
from repro.study.registry import default_registry
from repro.utils.serialization import platform_to_dict

#: Named platform factories accepted by ``Study(platform=...)`` and the
#: declarative ``"platform"`` key (hyphen/underscore/case-insensitive, with
#: the short forms ``tiny`` / ``small`` / ``paper`` / ``flat`` / ``big``).
PLATFORM_FACTORIES: dict[str, Any] = {
    "tiny": PlatformConfig.tiny_2x2x2,
    "tiny-2x2x2": PlatformConfig.tiny_2x2x2,
    "small": PlatformConfig.small_3x3x3,
    "small-3x3x3": PlatformConfig.small_3x3x3,
    "paper": PlatformConfig.paper_4x4x4,
    "paper-4x4x4": PlatformConfig.paper_4x4x4,
    "flat": PlatformConfig.flat_4x4x1,
    "flat-4x4x1": PlatformConfig.flat_4x4x1,
    "big": PlatformConfig.big_8x8x4,
    "big-8x8x4": PlatformConfig.big_8x8x4,
}

#: Base experiment presets the study starts from before applying overrides.
PRESETS: dict[str, Any] = {
    "smoke": ExperimentConfig.smoke,
    "reduced": ExperimentConfig.reduced,
    "paper": ExperimentConfig.paper_scale,
}

#: Keys accepted by :meth:`Study.from_dict` (everything else raises).
_STUDY_KEYS: tuple[str, ...] = (
    "preset",
    "platform",
    "applications",
    "objectives",
    "algorithms",
    "population_size",
    "evaluations",
    "scenarios",
    "seed",
    "routing_cache",
    "campaign",
)

_CAMPAIGN_KEYS: tuple[str, ...] = (
    "output_dir",
    "max_workers",
    "resume",
    "parallel_evaluation",
    "event_log",
    "shared_routing_cache",
    "routing_warm_start",
    "repair_infeasible",
    "repair_max_rounds",
    "repair_candidates_per_round",
    "repair_max_evaluations",
)


def resolve_platform(platform: "str | PlatformConfig") -> PlatformConfig:
    """Resolve a platform name (or pass a config through)."""
    if isinstance(platform, PlatformConfig):
        return platform
    key = str(platform).strip().lower().replace("_", "-")
    factory = PLATFORM_FACTORIES.get(key)
    if factory is None:
        known = ", ".join(sorted(set(PLATFORM_FACTORIES)))
        raise ValueError(f"unknown platform {platform!r}; available: {known}")
    return factory()


def _normalize_objectives(objectives: "int | list[int] | tuple[int, ...]") -> tuple[int, ...]:
    if isinstance(objectives, int):
        return (objectives,)
    return tuple(int(m) for m in objectives)


@dataclass(frozen=True)
class _AlgorithmEntry:
    """One algorithm of the study: canonical name plus validated overrides."""

    name: str
    options: Mapping[str, Any] = field(default_factory=dict)

    def to_config(self) -> "str | dict[str, Any]":
        if not self.options:
            return self.name
        return {"name": self.name, "options": dict(self.options)}


class Study:
    """Declaratively configured bundle of optimisation runs.

    Parameters mirror the declarative schema; every one is optional and can
    also be set fluently afterwards (each fluent method returns ``self``).

    Parameters
    ----------
    platform:
        Platform name (``"tiny"``/``"small"``/``"paper"`` or a full factory
        name) or a :class:`~repro.noc.platform.PlatformConfig`.
    objectives:
        Objective scenario(s): an int or a sequence drawn from {3, 4, 5}.
    apps:
        Application names (defaults to the preset's applications).
    preset:
        Base :class:`~repro.experiments.config.ExperimentConfig` the overrides
        apply to: ``"smoke"``, ``"reduced"`` (default) or ``"paper"``.
    population_size, evaluations, seed:
        Overrides for the preset's population, per-run evaluation budget and
        base seed.
    scenarios:
        Fault/scenario models run as a campaign grid axis (canonical keys,
        e.g. ``"link_failure(k=1,mode=remove)"``; see :mod:`repro.scenarios`).
        Validated at build time; campaign mode only — the default is the
        single nominal ``identity`` axis.
    routing_cache:
        ``False`` disables the cross-design routing engine (escape hatch;
        results are bit-identical either way).
    """

    def __init__(
        self,
        platform: "str | PlatformConfig | None" = None,
        objectives: "int | list[int] | tuple[int, ...] | None" = None,
        apps: "tuple[str, ...] | list[str] | None" = None,
        preset: str = "reduced",
        population_size: "int | None" = None,
        evaluations: "int | None" = None,
        seed: "int | None" = None,
        scenarios: "tuple[str, ...] | list[str] | None" = None,
        routing_cache: bool = True,
    ):
        if preset not in PRESETS:
            raise ValueError(f"unknown preset {preset!r}; available: {', '.join(sorted(PRESETS))}")
        self._preset = preset
        self._platform = resolve_platform(platform) if platform is not None else None
        self._objectives = _normalize_objectives(objectives) if objectives is not None else None
        self._apps = tuple(str(a).upper() for a in apps) if apps is not None else None
        self._population_size = population_size
        self._evaluations = evaluations
        self._seed = seed
        self._scenarios = self._normalize_scenarios(scenarios)
        self._routing_cache = bool(routing_cache)
        self._algorithms: list[_AlgorithmEntry] = []
        self._campaign: "dict[str, Any] | None" = None
        self._on_event: EventCallback | None = None

    # ------------------------------------------------------------------ #
    # Fluent builder
    # ------------------------------------------------------------------ #
    def algorithm(self, name: str, **options: Any) -> "Study":
        """Add one algorithm (any registered spelling) with overrides.

        The name is canonicalised and the overrides validated against the
        optimiser's declared hyperparameter schema immediately, so a typo
        fails at build time, not hours into a campaign.
        """
        spec = default_registry().spec(name)
        spec.validate_options(options)
        if any(entry.name == spec.name for entry in self._algorithms):
            raise ValueError(f"algorithm {spec.name!r} is already part of the study")
        self._algorithms.append(_AlgorithmEntry(name=spec.name, options=dict(options)))
        return self

    def algorithms(self, *names: str) -> "Study":
        """Add several algorithms without overrides."""
        for name in names:
            self.algorithm(name)
        return self

    def clear_algorithms(self) -> "Study":
        """Drop every configured algorithm (e.g. before replacing the list)."""
        self._algorithms.clear()
        return self

    def apps(self, *applications: str) -> "Study":
        """Set the applications evaluated by every algorithm."""
        self._apps = tuple(str(a).upper() for a in applications)
        return self

    def objectives(self, *counts: int) -> "Study":
        """Set the objective scenarios (3, 4 and/or 5)."""
        self._objectives = _normalize_objectives(list(counts))
        return self

    def platform(self, platform: "str | PlatformConfig") -> "Study":
        """Set the platform by name or config."""
        self._platform = resolve_platform(platform)
        return self

    def preset(self, name: str) -> "Study":
        """Select the base experiment preset the overrides apply to."""
        if name not in PRESETS:
            raise ValueError(f"unknown preset {name!r}; available: {', '.join(sorted(PRESETS))}")
        self._preset = name
        return self

    def evaluations(self, budget: int) -> "Study":
        """Set the per-run evaluation budget."""
        self._evaluations = int(budget)
        return self

    def population_size(self, size: int) -> "Study":
        """Set the population / archive size for every algorithm."""
        self._population_size = int(size)
        return self

    def seed(self, seed: int) -> "Study":
        """Set the base seed per-cell seeds are derived from."""
        self._seed = int(seed)
        return self

    def routing_cache(self, enabled: bool) -> "Study":
        """Toggle the cross-design routing cache (performance only)."""
        self._routing_cache = bool(enabled)
        return self

    @staticmethod
    def _normalize_scenarios(
        scenarios: "tuple[str, ...] | list[str] | None",
    ) -> "tuple[str, ...] | None":
        """Canonicalise scenario keys eagerly so typos fail at build time."""
        if scenarios is None:
            return None
        return tuple(canonical_scenario_key(str(s)) for s in scenarios)

    def scenarios(self, *models: str) -> "Study":
        """Set the fault/scenario grid axis (canonical keys; campaign mode).

        Include ``"identity"`` alongside the fault models when robustness
        analyses should compare against the nominal baseline (they need it).
        """
        self._scenarios = self._normalize_scenarios(list(models))
        return self

    def on_event(self, callback: "EventCallback | None") -> "Study":
        """Subscribe a callback to the study's streaming progress events."""
        self._on_event = callback
        return self

    def campaign(
        self,
        output_dir: "str | Path",
        max_workers: int = 1,
        resume: bool = True,
        parallel_evaluation: "bool | None" = None,
        event_log: bool = True,
        shared_routing_cache: bool = True,
        routing_warm_start: bool = False,
        repair_infeasible: bool = False,
        repair_max_rounds: int = 4,
        repair_candidates_per_round: int = 8,
        repair_max_evaluations: int = 32,
    ) -> "Study":
        """Execute as a sharded, resumable campaign instead of inline runs.

        ``event_log=True`` (the default) streams every cell's events —
        pooled or inline — through the durable ``events.jsonl`` next to the
        manifest; it is also what :meth:`submit`'s non-blocking handle tails.
        ``shared_routing_cache`` and ``routing_warm_start`` control the
        cross-cell routing-cache tiers; ``repair_infeasible`` and the
        ``repair_*`` budget keys control the opt-in directed feasibility
        repair path inside every cell (see
        :class:`~repro.experiments.config.CampaignConfig`).
        """
        self._campaign = {
            "output_dir": str(output_dir),
            "max_workers": int(max_workers),
            "resume": bool(resume),
            "parallel_evaluation": parallel_evaluation,
            "event_log": bool(event_log),
            "shared_routing_cache": bool(shared_routing_cache),
            "routing_warm_start": bool(routing_warm_start),
            "repair_infeasible": bool(repair_infeasible),
            "repair_max_rounds": int(repair_max_rounds),
            "repair_candidates_per_round": int(repair_candidates_per_round),
            "repair_max_evaluations": int(repair_max_evaluations),
        }
        return self

    def campaign_settings(self) -> "dict[str, Any] | None":
        """Copy of the configured campaign settings (None in inline mode)."""
        return dict(self._campaign) if self._campaign is not None else None

    # ------------------------------------------------------------------ #
    # Declarative construction and round-tripping
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Study":
        """Build a study from the declarative schema (see :meth:`to_dict`).

        Unknown keys — top-level, inside ``campaign``, or an unknown
        algorithm/hyperparameter — raise ``ValueError`` with the accepted
        names, so a typo in a config file fails loudly.
        """
        unknown = sorted(set(payload) - set(_STUDY_KEYS))
        if unknown:
            raise ValueError(
                f"unknown study keys {unknown}; accepted: {', '.join(_STUDY_KEYS)}"
            )
        platform = payload.get("platform")
        if isinstance(platform, Mapping):
            platform = PlatformConfig(**platform)
        study = cls(
            platform=platform,
            objectives=payload.get("objectives"),
            apps=payload.get("applications"),
            preset=str(payload.get("preset", "reduced")),
            population_size=payload.get("population_size"),
            evaluations=payload.get("evaluations"),
            seed=payload.get("seed"),
            scenarios=payload.get("scenarios"),
            routing_cache=bool(payload.get("routing_cache", True)),
        )
        for entry in payload.get("algorithms", ()):
            if isinstance(entry, str):
                study.algorithm(entry)
            elif isinstance(entry, Mapping):
                extra = sorted(set(entry) - {"name", "options"})
                if extra:
                    raise ValueError(
                        f"unknown algorithm-entry keys {extra}; accepted: name, options"
                    )
                study.algorithm(str(entry["name"]), **dict(entry.get("options", {})))
            else:
                raise ValueError(
                    f"algorithm entries must be names or {{name, options}} maps, got {entry!r}"
                )
        campaign = payload.get("campaign")
        if campaign is not None:
            extra = sorted(set(campaign) - set(_CAMPAIGN_KEYS))
            if extra:
                raise ValueError(
                    f"unknown campaign keys {extra}; accepted: {', '.join(_CAMPAIGN_KEYS)}"
                )
            if "output_dir" not in campaign:
                raise ValueError("campaign configuration requires an output_dir")
            study.campaign(
                campaign["output_dir"],
                max_workers=int(campaign.get("max_workers", 1)),
                resume=bool(campaign.get("resume", True)),
                parallel_evaluation=campaign.get("parallel_evaluation"),
                event_log=bool(campaign.get("event_log", True)),
                shared_routing_cache=bool(campaign.get("shared_routing_cache", True)),
                routing_warm_start=bool(campaign.get("routing_warm_start", False)),
                repair_infeasible=bool(campaign.get("repair_infeasible", False)),
                repair_max_rounds=int(campaign.get("repair_max_rounds", 4)),
                repair_candidates_per_round=int(campaign.get("repair_candidates_per_round", 8)),
                repair_max_evaluations=int(campaign.get("repair_max_evaluations", 32)),
            )
        return study

    @classmethod
    def from_file(cls, path: "str | Path") -> "Study":
        """Load a study from a TOML or JSON file (selected by suffix)."""
        path = Path(path)
        if path.suffix.lower() == ".toml":
            try:
                import tomllib
            except ModuleNotFoundError as error:  # pragma: no cover - Python < 3.11
                raise RuntimeError(
                    "TOML study files need Python >= 3.11 (tomllib); use JSON instead"
                ) from error
            payload = tomllib.loads(path.read_text())
        elif path.suffix.lower() == ".json":
            payload = json.loads(path.read_text())
        else:
            raise ValueError(f"unsupported study file suffix {path.suffix!r}; use .toml or .json")
        if "study" in payload and isinstance(payload["study"], Mapping):
            payload = payload["study"]
        return cls.from_dict(payload)

    def to_dict(self) -> dict[str, Any]:
        """Declarative representation; ``Study.from_dict`` round-trips it.

        Only explicitly set fields are emitted, so the dict stays minimal and
        the round-tripped study resolves every default identically.
        """
        payload: dict[str, Any] = {"preset": self._preset}
        if self._platform is not None:
            # A named platform is matched by its factory name first (cheap,
            # deterministic), then confirmed by value — a custom config that
            # merely reuses a factory's name still serialises field-by-field.
            factory = PLATFORM_FACTORIES.get(self._platform.name)
            if factory is not None and factory() == self._platform:
                payload["platform"] = self._platform.name
            else:
                payload["platform"] = platform_to_dict(self._platform)
        if self._objectives is not None:
            payload["objectives"] = list(self._objectives)
        if self._apps is not None:
            payload["applications"] = list(self._apps)
        if self._algorithms:
            payload["algorithms"] = [entry.to_config() for entry in self._algorithms]
        if self._population_size is not None:
            payload["population_size"] = self._population_size
        if self._evaluations is not None:
            payload["evaluations"] = self._evaluations
        if self._seed is not None:
            payload["seed"] = self._seed
        if self._scenarios is not None:
            payload["scenarios"] = list(self._scenarios)
        if not self._routing_cache:
            payload["routing_cache"] = False
        if self._campaign is not None:
            campaign = {k: v for k, v in self._campaign.items() if v is not None}
            if campaign.get("resume") is True:
                del campaign["resume"]
            if campaign.get("max_workers") == 1:
                del campaign["max_workers"]
            if campaign.get("event_log") is True:
                del campaign["event_log"]
            if campaign.get("repair_infeasible") is False:
                # Repair off is the default; dropping the whole block keeps
                # pre-repair study files byte-identical.
                for key in (
                    "repair_infeasible",
                    "repair_max_rounds",
                    "repair_candidates_per_round",
                    "repair_max_evaluations",
                ):
                    campaign.pop(key, None)
            payload["campaign"] = campaign
        return payload

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def algorithm_names(self) -> tuple[str, ...]:
        """Canonical names of the study's algorithms (every builtin if unset)."""
        if self._algorithms:
            return tuple(entry.name for entry in self._algorithms)
        return tuple(default_registry().names())

    def experiment(self) -> ExperimentConfig:
        """The :class:`ExperimentConfig` the study's runs execute under."""
        experiment = PRESETS[self._preset]()
        overrides: dict[str, Any] = {}
        if self._platform is not None:
            overrides["platform"] = self._platform
        if self._apps is not None:
            overrides["applications"] = self._apps
        if self._objectives is not None:
            overrides["objective_counts"] = self._objectives
        if self._population_size is not None:
            overrides["population_size"] = self._population_size
        if self._evaluations is not None:
            overrides["max_evaluations"] = self._evaluations
        if self._seed is not None:
            overrides["seed"] = self._seed
        if self._scenarios is not None:
            overrides["scenario_models"] = self._scenarios
        return replace(experiment, **overrides) if overrides else experiment

    def campaign_config(self) -> CampaignConfig:
        """The :class:`CampaignConfig` a campaign-mode study runs."""
        if self._campaign is None:
            raise ValueError("study has no campaign configuration; call .campaign(output_dir)")
        entries = self._algorithms or [
            _AlgorithmEntry(name) for name in default_registry().names()
        ]
        with_options = [entry.name for entry in entries if entry.options]
        if with_options:
            raise ValueError(
                f"campaign mode does not support per-algorithm hyperparameter overrides "
                f"(set on {with_options}); campaigns wire every cell from the shared "
                "experiment configuration"
            )
        return CampaignConfig(
            experiment=self.experiment(),
            algorithms=tuple(entry.name for entry in entries),
            max_workers=self._campaign["max_workers"],
            resume=self._campaign["resume"],
            parallel_evaluation=self._campaign["parallel_evaluation"],
            routing_cache=self._routing_cache,
            event_log=self._campaign.get("event_log", True),
            shared_routing_cache=self._campaign.get("shared_routing_cache", True),
            routing_warm_start=self._campaign.get("routing_warm_start", False),
            repair_infeasible=self._campaign.get("repair_infeasible", False),
            repair_max_rounds=self._campaign.get("repair_max_rounds", 4),
            repair_candidates_per_round=self._campaign.get("repair_candidates_per_round", 8),
            repair_max_evaluations=self._campaign.get("repair_max_evaluations", 32),
        )

    def _emit(self, kind: str, **payload: Any) -> None:
        if self._on_event is not None:
            self._on_event(StudyEvent(kind=kind, payload=payload))

    def run(self) -> "StudyResult":
        """Execute the study and return the unified result.

        Inline mode runs every (application, scenario, algorithm) combination
        through :func:`repro.experiments.runner.run_algorithm` — sharing one
        problem instance (and therefore the evaluator's caches) per
        (application, scenario) group exactly like ``compare_algorithms``.
        Campaign mode delegates to the sharded campaign engine and folds the
        finished shards back into the same result shape.
        """
        if self._campaign is not None:
            return self._run_campaign()
        experiment = self.experiment()
        if experiment.scenario_models != ("identity",):
            raise ValueError(
                "fault scenarios need campaign mode (shards carry the per-scenario "
                "results the robustness analyses read); call .campaign(output_dir) "
                "or drop .scenarios(...)"
            )
        names = self.algorithm_names()
        self._emit(
            "study_started",
            algorithms=list(names),
            applications=list(experiment.applications),
            objectives=list(experiment.objective_counts),
        )
        entries = self._algorithms or [_AlgorithmEntry(name) for name in names]
        runs: RunMap = {}
        for application in experiment.applications:
            for num_objectives in experiment.objective_counts:
                problem = make_problem(
                    experiment, application, num_objectives, routing_cache=self._routing_cache
                )
                group: dict[str, OptimizationResult] = {}
                for entry in entries:
                    # budget=None defers to the spec's default budget wiring
                    # (Budget.evaluations(experiment.max_evaluations) unless
                    # the registration overrode default_budget), so the façade
                    # and a direct run_algorithm call stay interchangeable.
                    group[entry.name] = run_algorithm(
                        entry.name,
                        problem,
                        experiment,
                        options=entry.options,
                        on_event=self._on_event,
                    )
                runs[(application, num_objectives)] = group
        result = StudyResult(experiment=experiment, algorithms=names, runs=runs)
        self._emit("study_finished", runs=sum(len(group) for group in runs.values()))
        return result

    def submit(self) -> CampaignExecution:
        """Start the study's campaign without blocking and return its handle.

        Campaign-mode only (configure with :meth:`campaign` first).  The
        returned :class:`~repro.experiments.runner.CampaignExecution` streams
        live events (``.events()``), answers progress polls (``.progress()``)
        and joins with ``.wait()``; pass the finished summary to
        :meth:`collect` for the same :class:`StudyResult` a blocking
        :meth:`run` would have produced.  The study's :meth:`on_event`
        subscriber (if any) is invoked from whichever thread consumes the
        handle.
        """
        campaign = self.campaign_config()
        output_dir = Path(self._campaign["output_dir"])
        return submit_campaign(campaign, output_dir, on_event=self._on_event)

    def collect(self, summary: CampaignSummary) -> "StudyResult":
        """Fold a finished campaign's shards into the unified study result."""
        campaign = self.campaign_config()
        aggregate = aggregate_campaign(summary.output_dir)
        return StudyResult(
            experiment=campaign.experiment,
            algorithms=tuple(campaign.algorithms),
            runs=aggregate.runs,
            campaign=summary,
        )

    def _run_campaign(self) -> "StudyResult":
        return self.collect(self.submit().wait())


@dataclass
class StudyResult:
    """Unified outcome of a study: single runs, comparisons and campaigns.

    ``runs`` maps ``(application, num_objectives)`` to the per-algorithm
    :class:`~repro.moo.result.OptimizationResult` map — the same ``RunMap``
    layout the paper's table builders consume.  ``campaign`` carries the
    shard/manifest summary when the study executed as a campaign.
    """

    experiment: ExperimentConfig
    algorithms: tuple[str, ...]
    runs: RunMap
    campaign: "CampaignSummary | None" = None

    def __iter__(self) -> Iterator[tuple[str, int, str, OptimizationResult]]:
        """Yield ``(application, num_objectives, algorithm, result)`` rows."""
        for (application, num_objectives), group in self.runs.items():
            for algorithm, result in group.items():
                yield application, num_objectives, algorithm, result

    def result(
        self,
        algorithm: str,
        application: "str | None" = None,
        num_objectives: "int | None" = None,
    ) -> OptimizationResult:
        """One run's result; cell selectors may be omitted when unambiguous."""
        canonical = default_registry().canonical(algorithm)
        matches = [
            result
            for app, m, name, result in self
            if name == canonical
            and (application is None or app == application.upper())
            and (num_objectives is None or m == num_objectives)
        ]
        if not matches:
            raise KeyError(f"no result for {algorithm!r} ({application}, {num_objectives})")
        if len(matches) > 1:
            raise KeyError(
                f"{len(matches)} results match {algorithm!r}; pass application= and "
                "num_objectives= to disambiguate"
            )
        return matches[0]

    @property
    def target(self) -> str:
        """Comparison target of the tables: MOELA when present, else the first."""
        if not self.algorithms:
            raise ValueError("study produced no runs")
        return "MOELA" if "MOELA" in self.algorithms else self.algorithms[0]

    @property
    def baselines(self) -> tuple[str, ...]:
        """Every algorithm except the comparison target."""
        return tuple(name for name in self.algorithms if name != self.target)

    def table1(self, measure: str = "evaluations") -> TableResult:
        """Table I (speed-up of the target over each baseline)."""
        return build_comparison_table(
            self.runs,
            name=f"Table I: speed-up of {self.target}",
            value_fn=_speedup_value(measure),
            target=self.target,
            baselines=self.baselines or BASELINES,
            strict=False,
        )

    def table2(self) -> TableResult:
        """Table II (PHV gain of the target over each baseline, %)."""
        return build_comparison_table(
            self.runs,
            name=f"Table II: PHV gain of {self.target} (%)",
            value_fn=_phv_gain_value,
            target=self.target,
            baselines=self.baselines or BASELINES,
            strict=False,
        )

    def format_tables(self, measure: str = "evaluations") -> str:
        """Render Table I and Table II as text (needs >= 2 algorithms)."""
        return format_table(self.table1(measure)) + "\n\n" + format_table(self.table2())

    def robustness(self, quantiles: tuple[float, ...] = (0.5, 0.9)) -> RobustnessCertificate:
        """Robustness certificate over the campaign's fault-scenario grid.

        Campaign-mode only: the certificate is computed purely from the
        finished shards (see :mod:`repro.experiments.robustness`), so it
        never re-runs a cell.  Requires completed ``identity`` cells as the
        degradation baseline.
        """
        if self.campaign is None:
            raise ValueError(
                "robustness analyses read finished campaign shards; run the study "
                "in campaign mode (.campaign(output_dir)) with a scenarios axis"
            )
        return robustness_certificate(self.campaign.output_dir, quantiles=quantiles)

    def sensitivity(self) -> SensitivityMap:
        """Per-objective scenario sensitivity map from the campaign's shards."""
        if self.campaign is None:
            raise ValueError(
                "sensitivity maps read finished campaign shards; run the study "
                "in campaign mode (.campaign(output_dir)) with a scenarios axis"
            )
        return sensitivity_map(self.campaign.output_dir)

    def routing_cache_summary(self) -> dict[str, Any]:
        """Folded routing-engine counters across every run of the study.

        Inline runs share one problem (and therefore one routing engine) per
        ``(application, num_objectives)`` group and every result's metadata
        snapshot is *cumulative* over that engine, so the fold takes the last
        algorithm's snapshot per group — summing all snapshots would count
        earlier algorithms' requests once per later algorithm.
        """
        if self.campaign is not None and self.campaign.routing_cache is not None:
            return dict(self.campaign.routing_cache)
        totals = {"hits": 0, "misses": 0, "incremental_repairs": 0}
        for group in self.runs.values():
            snapshots = [
                result.metadata.get("routing_cache")
                for result in group.values()
                if isinstance(result.metadata.get("routing_cache"), Mapping)
            ]
            if not snapshots:
                continue
            for key in totals:
                totals[key] += int(snapshots[-1].get(key, 0))
        requests = sum(totals.values())
        return {
            **totals,
            "requests": requests,
            "hit_rate": totals["hits"] / requests if requests else 0.0,
        }

    def summary_rows(self) -> list[dict[str, Any]]:
        """One compact numeric summary dict per run (table-friendly)."""
        rows = []
        for application, num_objectives, algorithm, result in self:
            row = {"application": application, "num_objectives": num_objectives}
            row.update(result.summary())
            rows.append(row)
        return rows
