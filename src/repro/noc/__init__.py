"""3D NoC platform model: tiles, links, designs, constraints, routing and moves."""

from repro.noc.design import MoveDelta, NocDesign, annotate_move, move_delta_of
from repro.noc.geometry import Grid3D, TileCoord
from repro.noc.links import Link, LinkKind, candidate_planar_links, candidate_vertical_links
from repro.noc.mesh import mesh_design, mesh_links
from repro.noc.platform import PEType, PlatformConfig
from repro.noc.constraints import (
    ConstraintChecker,
    ConstraintViolation,
    InfeasibleDesignError,
    ViolationReport,
    random_design,
    violation_details,
)
from repro.noc.repair import RepairBudget, RepairPlan, RepairStep, repair_design
from repro.noc.routing import RoutingTables
from repro.noc.routing_engine import RoutingEngine

__all__ = [
    "ConstraintChecker",
    "ConstraintViolation",
    "InfeasibleDesignError",
    "Grid3D",
    "Link",
    "LinkKind",
    "MoveDelta",
    "NocDesign",
    "PEType",
    "PlatformConfig",
    "RepairBudget",
    "RepairPlan",
    "RepairStep",
    "RoutingEngine",
    "RoutingTables",
    "TileCoord",
    "ViolationReport",
    "annotate_move",
    "candidate_planar_links",
    "candidate_vertical_links",
    "mesh_design",
    "mesh_links",
    "move_delta_of",
    "random_design",
    "repair_design",
    "violation_details",
]
