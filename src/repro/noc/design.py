"""Design encoding: a PE placement plus a link placement.

A :class:`NocDesign` is one point of the design space explored by MOELA and
the baseline optimisers.  It consists of

* ``placement`` — an array of length ``num_tiles`` where ``placement[t]`` is
  the logical PE id hosted by tile ``t`` (a permutation of ``0..A-1``), and
* ``links`` — the set of communication links, stored as a sorted tuple of
  :class:`~repro.noc.links.Link`.

Designs are immutable value objects: move operators and crossover return new
designs.  They hash on their canonical encoding so evaluators can cache
objective vectors.

Move provenance
---------------
Move operators and crossover additionally *annotate* the designs they return
with a :class:`MoveDelta` — a structured record of how the child differs from
its parent (move kind, links added/removed, tiles swapped, and the parent's
link set).  The annotation rides outside the design's identity: it does not
participate in equality, hashing or serialisation, so two designs reached by
different moves still compare equal.  The routing engine
(:class:`repro.noc.routing_engine.RoutingEngine`) consumes the annotation as a
*hint* — placement-only deltas reuse the parent's routing tables wholesale and
link deltas trigger an incremental repair — and never depends on it for
correctness: a missing or stale delta only costs a fresh table build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.noc.geometry import Grid3D
from repro.noc.links import Link, LinkKind, link_kind, link_lengths_array
from repro.noc.platform import PEType, PlatformConfig


@dataclass(frozen=True)
class NocDesign:
    """One candidate 3D NoC design (tile placement + link placement)."""

    placement: tuple[int, ...]
    links: tuple[Link, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "placement", tuple(int(p) for p in self.placement))
        object.__setattr__(self, "links", tuple(sorted(self.links)))

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls, placement: Sequence[int], links: Iterable[tuple[int, int] | Link]
    ) -> "NocDesign":
        """Build a design from a placement sequence and link endpoint pairs."""
        normalized = tuple(
            link if isinstance(link, Link) else Link.make(int(link[0]), int(link[1]))
            for link in links
        )
        return cls(placement=tuple(int(p) for p in placement), links=normalized)

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    @property
    def num_tiles(self) -> int:
        """Number of tiles in the design."""
        return len(self.placement)

    @property
    def num_links(self) -> int:
        """Number of links in the design."""
        return len(self.links)

    def pe_at(self, tile_id: int) -> int:
        """Logical PE id hosted by ``tile_id``."""
        return self.placement[tile_id]

    def tile_of(self, pe_id: int) -> int:
        """Tile hosting logical PE ``pe_id``."""
        return self.tile_of_pe()[pe_id]

    def tile_of_pe(self) -> np.ndarray:
        """Inverse placement: ``tile_of_pe()[pe] -> tile``."""
        inverse = np.empty(self.num_tiles, dtype=np.int64)
        inverse[np.asarray(self.placement, dtype=np.int64)] = np.arange(self.num_tiles)
        return inverse

    def placement_array(self) -> np.ndarray:
        """Placement as a numpy array (tile -> PE)."""
        return np.asarray(self.placement, dtype=np.int64)

    def link_set(self) -> frozenset[Link]:
        """The links as a frozen set for membership tests."""
        return frozenset(self.links)

    def has_link(self, a: int, b: int) -> bool:
        """True when a link between tiles ``a`` and ``b`` exists."""
        return Link.make(a, b) in self.link_set()

    def adjacency(self) -> dict[int, list[int]]:
        """Adjacency lists over tiles induced by the link placement."""
        adj: dict[int, list[int]] = {t: [] for t in range(self.num_tiles)}
        for link in self.links:
            adj[link.a].append(link.b)
            adj[link.b].append(link.a)
        return adj

    def degrees(self) -> np.ndarray:
        """Router degree (number of attached links) for every tile."""
        degrees = np.zeros(self.num_tiles, dtype=np.int64)
        for link in self.links:
            degrees[link.a] += 1
            degrees[link.b] += 1
        return degrees

    def links_by_kind(self, grid: Grid3D) -> dict[LinkKind, list[Link]]:
        """Partition the links into planar and vertical groups."""
        partition: dict[LinkKind, list[Link]] = {LinkKind.PLANAR: [], LinkKind.VERTICAL: []}
        for link in self.links:
            partition[link_kind(link, grid)].append(link)
        return partition

    def link_lengths(self, grid: Grid3D) -> np.ndarray:
        """Physical length of every link (``d_k``), in link order."""
        return link_lengths_array(self.links, grid)

    def tiles_of_type(self, config: PlatformConfig, pe_type: PEType) -> list[int]:
        """Tiles hosting PEs of the given type."""
        return [t for t, pe in enumerate(self.placement) if config.pe_type(pe) is pe_type]

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def key(self) -> tuple:
        """Canonical hashable key for caching objective evaluations."""
        return (self.placement, self.links)

    def __hash__(self) -> int:
        return hash(self.key())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, NocDesign) and self.key() == other.key()

    def __repr__(self) -> str:
        return f"NocDesign(num_tiles={self.num_tiles}, num_links={self.num_links})"


@dataclass(frozen=True)
class MoveDelta:
    """Structured difference between a child design and the parent it came from.

    ``parent_links`` is the parent's canonical (sorted) link tuple — exactly
    the topology key the routing engine caches tables under, so a consumer can
    look the parent's tables up without holding the parent design alive.
    """

    kind: str
    links_added: tuple[Link, ...] = ()
    links_removed: tuple[Link, ...] = ()
    tiles_swapped: "tuple[int, int] | None" = None
    parent_links: tuple[Link, ...] = ()

    @property
    def placement_only(self) -> bool:
        """True when the move left the link set untouched (routing reusable as-is)."""
        return not self.links_added and not self.links_removed

    @property
    def num_link_changes(self) -> int:
        """Total number of links added plus removed."""
        return len(self.links_added) + len(self.links_removed)

    @classmethod
    def between(cls, parent: "NocDesign", child: "NocDesign", kind: str) -> "MoveDelta":
        """Compute the link-set delta between two designs (for composite moves).

        Used by multi-move mutation and crossover, where the child is not one
        elementary move away from the parent: the link differences are derived
        from the encodings instead of accumulated move by move.
        """
        parent_set = frozenset(parent.links)
        child_set = frozenset(child.links)
        return cls(
            kind=kind,
            links_added=tuple(sorted(child_set - parent_set)),
            links_removed=tuple(sorted(parent_set - child_set)),
            tiles_swapped=None,
            parent_links=parent.links,
        )


def annotate_move(child: NocDesign, delta: MoveDelta) -> NocDesign:
    """Attach a :class:`MoveDelta` to a freshly created design and return it.

    The annotation is stored outside the frozen dataclass fields, so identity
    (equality, hashing, ``key()``) and JSON serialisation are unaffected.
    Only annotate designs you just created — annotating a shared design would
    overwrite its provenance.
    """
    # Sanctioned frozen-bypass: the annotation rides outside the design's
    # identity and is only ever attached to a design this call site just
    # created (see the docstring) — the one blessed exception to REP004.
    object.__setattr__(child, "move_delta", delta)  # repro: allow[REP004]
    return child


def move_delta_of(design: NocDesign) -> "MoveDelta | None":
    """The :class:`MoveDelta` a move operator attached to ``design``, if any."""
    return getattr(design, "move_delta", None)


@dataclass(frozen=True)
class DesignSummary:
    """Lightweight structural statistics of a design (used by featurisers and reports)."""

    num_tiles: int
    num_links: int
    num_planar_links: int
    num_vertical_links: int
    mean_link_length: float
    max_link_length: int
    mean_degree: float
    max_degree: int
    connected: bool = field(default=True)


def summarize(design: NocDesign, config: PlatformConfig) -> DesignSummary:
    """Compute structural statistics for a design."""
    grid = config.grid
    partition = design.links_by_kind(grid)
    lengths = design.link_lengths(grid)
    degrees = design.degrees()
    from repro.noc.constraints import is_connected  # local import to avoid a cycle

    return DesignSummary(
        num_tiles=design.num_tiles,
        num_links=design.num_links,
        num_planar_links=len(partition[LinkKind.PLANAR]),
        num_vertical_links=len(partition[LinkKind.VERTICAL]),
        mean_link_length=float(lengths.mean()) if len(lengths) else 0.0,
        max_link_length=int(lengths.max()) if len(lengths) else 0,
        mean_degree=float(degrees.mean()),
        max_degree=int(degrees.max()),
        connected=is_connected(design),
    )
