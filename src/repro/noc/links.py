"""Communication links of the 3D NoC.

Two kinds of links exist (Section III):

* **planar links** connect two routers on the same layer; their Manhattan
  length is limited to ``max_planar_length`` tile units;
* **vertical links** (TSVs) connect two routers in the same single-tile stack
  on adjacent layers; at most one TSV may exist between any vertical pair.

A link is stored as an ordered pair of tile ids ``(a, b)`` with ``a < b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

import numpy as np

from repro.noc.geometry import Grid3D
from repro.noc.platform import PlatformConfig


class LinkKind(str, Enum):
    """Classification of a link."""

    PLANAR = "planar"
    VERTICAL = "vertical"


@dataclass(frozen=True, order=True)
class Link:
    """An undirected link between two tiles (stored with ``a < b``)."""

    a: int
    b: int

    def __post_init__(self) -> None:
        # Canonicalise to Python ints: numpy endpoints leak in from array
        # code, and anything keyed on a link's textual form (e.g. the
        # scenario RNG streams hashing str(design.key())) must not depend
        # on whether a caller passed np.int64(4) or 4.
        object.__setattr__(self, "a", int(self.a))
        object.__setattr__(self, "b", int(self.b))
        if self.a == self.b:
            raise ValueError("a link cannot connect a tile to itself")
        if self.a > self.b:
            raise ValueError("links must be stored with a < b; use Link.make()")

    @classmethod
    def make(cls, a: int, b: int) -> "Link":
        """Create a link with endpoints normalised to ``a < b``."""
        return cls(min(a, b), max(a, b))

    def endpoints(self) -> tuple[int, int]:
        """Return the two tile ids connected by this link."""
        return (self.a, self.b)

    def other(self, tile_id: int) -> int:
        """Return the opposite endpoint from ``tile_id``."""
        if tile_id == self.a:
            return self.b
        if tile_id == self.b:
            return self.a
        raise ValueError(f"tile {tile_id} is not an endpoint of {self}")


def link_kind(link: Link, grid: Grid3D) -> LinkKind:
    """Classify a link as planar (same layer) or vertical (same column)."""
    ca, cb = grid.coord(link.a), grid.coord(link.b)
    if ca.same_layer(cb):
        return LinkKind.PLANAR
    if ca.same_column(cb):
        return LinkKind.VERTICAL
    raise ValueError(f"{link} is neither planar nor vertical (diagonal links are not allowed)")


def link_length(link: Link, grid: Grid3D) -> int:
    """Physical length of a link in tile units (``d_k`` of the energy model)."""
    return grid.manhattan_distance(link.a, link.b)


def link_lengths_array(links: Sequence[Link] | Iterable[Link], grid: Grid3D) -> np.ndarray:
    """Vectorized :func:`link_length` for a sequence of links (``d_k`` vector).

    The single vectorized twin of the scalar metric — batch consumers
    (routing tables, design statistics) call this so the length formula lives
    in one module.
    """
    links = list(links)
    num = len(links)
    ends_a = np.fromiter((link.a for link in links), dtype=np.int64, count=num)
    ends_b = np.fromiter((link.b for link in links), dtype=np.int64, count=num)
    xa, ya, za = grid.coords_arrays(ends_a)
    xb, yb, zb = grid.coords_arrays(ends_b)
    return (np.abs(xa - xb) + np.abs(ya - yb) + np.abs(za - zb)).astype(np.float64)


def is_feasible_link(link: Link, config: PlatformConfig) -> bool:
    """True when the link respects planar-length / vertical-adjacency rules."""
    grid = config.grid
    ca, cb = grid.coord(link.a), grid.coord(link.b)
    if ca.same_layer(cb):
        return 1 <= ca.planar_distance(cb) <= config.max_planar_length
    if ca.same_column(cb):
        return abs(ca.z - cb.z) == 1
    return False


def candidate_planar_links(config: PlatformConfig) -> list[Link]:
    """All feasible planar links for the platform, in deterministic order."""
    grid = config.grid
    candidates: list[Link] = []
    for a in range(config.num_tiles):
        coord_a = grid.coord(a)
        for b in range(a + 1, config.num_tiles):
            coord_b = grid.coord(b)
            if not coord_a.same_layer(coord_b):
                continue
            if 1 <= coord_a.planar_distance(coord_b) <= config.max_planar_length:
                candidates.append(Link(a, b))
    return candidates


def candidate_vertical_links(config: PlatformConfig) -> list[Link]:
    """All feasible vertical (TSV) links, i.e. every vertically adjacent tile pair."""
    grid = config.grid
    candidates: list[Link] = []
    for a in range(config.num_tiles):
        for b in grid.vertical_neighbors(a):
            if b > a:
                candidates.append(Link(a, b))
    return candidates


def candidate_links(config: PlatformConfig) -> list[Link]:
    """All feasible links (planar then vertical), in deterministic order."""
    return candidate_planar_links(config) + candidate_vertical_links(config)
