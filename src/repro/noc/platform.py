"""Platform configuration: processing elements, link budgets and technology constants.

The paper's experimental platform (Section V.A) is a 4x4x4 tile system with
40 NVIDIA Maxwell-class GPU cores, 8 x86 CPU cores and 16 LLC tiles, connected
by 96 planar links and 48 TSVs.  :meth:`PlatformConfig.paper_4x4x4` builds that
configuration; smaller factory methods exist for fast tests and the reduced
benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.noc.geometry import Grid3D
from repro.utils.validation import require, require_positive


class PEType(str, Enum):
    """Type of the processing element hosted by a tile."""

    CPU = "CPU"
    GPU = "GPU"
    LLC = "LLC"


@dataclass(frozen=True)
class PlatformConfig:
    """Static description of the 3D heterogeneous manycore platform.

    Parameters
    ----------
    n:
        Per-layer grid dimension (the platform is ``n x n`` tiles per layer).
    layers:
        Number of stacked layers (``Y`` in the paper).
    num_cpus, num_gpus, num_llcs:
        Number of processing elements of each type.  They must sum to the
        total tile count ``n * n * layers``.
    num_planar_links, num_vertical_links:
        Link budget.  The paper allocates the same number of planar links as
        an equivalent 3D mesh (``2 n (n-1) layers``) and one TSV per vertical
        tile pair (``n^2 (layers-1)``).
    max_planar_length:
        Maximum Manhattan length of a planar link, in units of inter-tile
        spacing (5 in the paper).
    max_router_degree:
        Maximum number of links attached to any single router (7 in the
        paper).
    router_stages:
        Router pipeline depth ``r`` used by the latency objective.
    link_energy_per_flit, router_energy_per_port:
        ``E_link`` and ``E_r`` of the energy objective (picojoules).
    vertical_resistance, base_resistance:
        ``R_j`` and ``R_b`` of the thermal model (K/W); stand-ins for the
        3D-ICE-derived constants of the paper.
    cpu_frequency_ghz, gpu_frequency_ghz:
        Operating frequencies used by the performance simulator.
    """

    n: int = 4
    layers: int = 4
    num_cpus: int = 8
    num_gpus: int = 40
    num_llcs: int = 16
    num_planar_links: int = 96
    num_vertical_links: int = 48
    max_planar_length: int = 5
    max_router_degree: int = 7
    router_stages: int = 4
    link_energy_per_flit: float = 0.98
    router_energy_per_port: float = 1.37
    vertical_resistance: float = 0.8
    base_resistance: float = 2.0
    cpu_frequency_ghz: float = 2.5
    gpu_frequency_ghz: float = 0.7
    name: str = field(default="custom", compare=False)

    def __post_init__(self) -> None:
        require_positive(self.n, "n")
        require_positive(self.layers, "layers")
        require(self.num_cpus >= 0, "num_cpus must be >= 0")
        require(self.num_gpus >= 0, "num_gpus must be >= 0")
        require(self.num_llcs >= 1, "num_llcs must be >= 1 (memory access is required)")
        total = self.num_cpus + self.num_gpus + self.num_llcs
        require(
            total == self.num_tiles,
            f"PE count {total} must equal tile count {self.num_tiles} "
            f"({self.n}x{self.n}x{self.layers})",
        )
        require_positive(self.num_planar_links, "num_planar_links")
        require(self.num_vertical_links >= 0, "num_vertical_links must be >= 0")
        require(
            self.num_vertical_links <= self.max_vertical_candidates,
            f"num_vertical_links {self.num_vertical_links} exceeds the number of "
            f"vertical tile pairs {self.max_vertical_candidates}",
        )
        require_positive(self.max_planar_length, "max_planar_length")
        require(self.max_router_degree >= 3, "max_router_degree must be >= 3 for connectivity headroom")
        require_positive(self.router_stages, "router_stages")
        require_positive(self.link_energy_per_flit, "link_energy_per_flit")
        require_positive(self.router_energy_per_port, "router_energy_per_port")
        require_positive(self.vertical_resistance, "vertical_resistance")
        require_positive(self.base_resistance, "base_resistance")
        require_positive(self.cpu_frequency_ghz, "cpu_frequency_ghz")
        require_positive(self.gpu_frequency_ghz, "gpu_frequency_ghz")
        require(
            self.num_links >= self.num_tiles - 1,
            "total link budget must allow a connected network (>= num_tiles - 1 links)",
        )
        require(
            self.num_llcs <= len(self.grid.edge_tiles()),
            "there must be enough edge tiles to host every LLC",
        )

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> Grid3D:
        """The tile grid of this platform."""
        return Grid3D(self.n, self.layers)

    @property
    def num_tiles(self) -> int:
        """Total number of tiles (== number of PEs)."""
        return self.n * self.n * self.layers

    @property
    def num_links(self) -> int:
        """Total number of links (planar + vertical)."""
        return self.num_planar_links + self.num_vertical_links

    @property
    def max_vertical_candidates(self) -> int:
        """Number of possible TSV positions (one per vertical tile pair)."""
        return self.n * self.n * (self.layers - 1)

    @property
    def mesh_planar_links(self) -> int:
        """Planar link count of the equivalent 3D mesh."""
        return 2 * self.n * (self.n - 1) * self.layers

    # ------------------------------------------------------------------ #
    # PE catalogue
    # ------------------------------------------------------------------ #
    @property
    def pe_types(self) -> tuple[PEType, ...]:
        """PE type of every logical PE id, ordered CPU block, GPU block, LLC block."""
        return (
            (PEType.CPU,) * self.num_cpus
            + (PEType.GPU,) * self.num_gpus
            + (PEType.LLC,) * self.num_llcs
        )

    @property
    def cpu_ids(self) -> np.ndarray:
        """Logical PE ids of the CPUs."""
        return np.arange(0, self.num_cpus, dtype=np.int64)

    @property
    def gpu_ids(self) -> np.ndarray:
        """Logical PE ids of the GPUs."""
        return np.arange(self.num_cpus, self.num_cpus + self.num_gpus, dtype=np.int64)

    @property
    def llc_ids(self) -> np.ndarray:
        """Logical PE ids of the LLC tiles."""
        return np.arange(self.num_cpus + self.num_gpus, self.num_tiles, dtype=np.int64)

    def pe_type(self, pe_id: int) -> PEType:
        """Return the type of logical PE ``pe_id``."""
        if not 0 <= pe_id < self.num_tiles:
            raise ValueError(f"pe_id {pe_id} out of range [0, {self.num_tiles})")
        if pe_id < self.num_cpus:
            return PEType.CPU
        if pe_id < self.num_cpus + self.num_gpus:
            return PEType.GPU
        return PEType.LLC

    def frequency_ghz(self, pe_id: int) -> float:
        """Operating frequency of a PE (LLCs are clocked with the CPUs)."""
        return self.gpu_frequency_ghz if self.pe_type(pe_id) is PEType.GPU else self.cpu_frequency_ghz

    # ------------------------------------------------------------------ #
    # Factory configurations
    # ------------------------------------------------------------------ #
    @classmethod
    def paper_4x4x4(cls) -> "PlatformConfig":
        """The 64-tile platform used in the paper's evaluation (Section V.A)."""
        return cls(
            n=4,
            layers=4,
            num_cpus=8,
            num_gpus=40,
            num_llcs=16,
            num_planar_links=96,
            num_vertical_links=48,
            name="paper-4x4x4",
        )

    @classmethod
    def big_8x8x4(cls) -> "PlatformConfig":
        """A 256-tile platform for big-grid profiling (8x8 per layer, 4 layers).

        Scales the paper platform 4x in tile count while keeping its flavour:
        1/8 of the tiles are CPUs, a quarter are LLCs placed on edge tiles,
        and the link budgets keep the same links-per-tile density (~1.75
        planar, ~0.6 vertical).  The vertical budget stays well below the 192
        single-column candidates so the degree-capped random fill always
        terminates.
        """
        return cls(
            n=8,
            layers=4,
            num_cpus=32,
            num_gpus=160,
            num_llcs=64,
            num_planar_links=448,
            num_vertical_links=160,
            name="big-8x8x4",
        )

    @classmethod
    def small_3x3x3(cls) -> "PlatformConfig":
        """A 27-tile platform matching the Fig. 1 illustration; used by the reduced benchmarks."""
        return cls(
            n=3,
            layers=3,
            num_cpus=4,
            num_gpus=15,
            num_llcs=8,
            num_planar_links=36,
            num_vertical_links=18,
            name="small-3x3x3",
        )

    @classmethod
    def tiny_2x2x2(cls) -> "PlatformConfig":
        """An 8-tile platform for unit tests."""
        return cls(
            n=2,
            layers=2,
            num_cpus=2,
            num_gpus=3,
            num_llcs=3,
            num_planar_links=8,
            num_vertical_links=4,
            name="tiny-2x2x2",
        )

    @classmethod
    def flat_4x4x1(cls) -> "PlatformConfig":
        """A single-layer 16-tile platform (2D NoC corner case)."""
        return cls(
            n=4,
            layers=1,
            num_cpus=2,
            num_gpus=8,
            num_llcs=6,
            num_planar_links=24,
            num_vertical_links=0,
            name="flat-4x4x1",
        )
