"""Genetic crossover operator for NoC designs.

The decomposition-based EA step of MOELA generates an offspring from two
parent designs (Section IV.C).  The operator recombines the two encodings:

* **placement** — a uniform-style crossover over tiles: each tile inherits the
  PE of one parent when possible; conflicts (a PE already used) are resolved
  by a greedy completion that keeps LLCs on edge tiles;
* **links** — the offspring keeps links common to both parents, then fills the
  per-kind budgets by drawing from the union of the parents' remaining links
  before falling back to random candidates.

The resulting offspring is repaired (connectivity, budgets, degree) so the EA
always works with feasible designs.
"""

from __future__ import annotations

import numpy as np

from repro.noc.constraints import repair_links
from repro.noc.design import MoveDelta, NocDesign, annotate_move
from repro.noc.links import LinkKind, link_kind
from repro.noc.platform import PEType, PlatformConfig
from repro.utils.rng import RngLike, ensure_rng


def crossover_placement(
    parent_a: NocDesign, parent_b: NocDesign, config: PlatformConfig, rng: RngLike = None
) -> tuple[int, ...]:
    """Recombine two parent placements into a feasible child placement."""
    rng = ensure_rng(rng)
    grid = config.grid
    num_tiles = config.num_tiles
    child = [-1] * num_tiles
    used: set[int] = set()

    tile_order = rng.permutation(num_tiles)
    for tile in tile_order:
        tile = int(tile)
        first, second = (parent_a, parent_b) if rng.random() < 0.5 else (parent_b, parent_a)
        for parent in (first, second):
            pe = parent.pe_at(tile)
            if pe in used:
                continue
            if config.pe_type(pe) is PEType.LLC and not grid.is_edge_tile(tile):
                continue
            child[tile] = pe
            used.add(pe)
            break

    # Complete the permutation with the unused PEs, respecting the LLC rule.
    unused = [pe for pe in range(num_tiles) if pe not in used]
    rng.shuffle(unused)
    unused_llc = [pe for pe in unused if config.pe_type(pe) is PEType.LLC]
    unused_other = [pe for pe in unused if config.pe_type(pe) is not PEType.LLC]
    empty_edge = [t for t in range(num_tiles) if child[t] == -1 and grid.is_edge_tile(t)]
    empty_other = [t for t in range(num_tiles) if child[t] == -1 and not grid.is_edge_tile(t)]

    if len(unused_llc) > len(empty_edge):
        # Not enough empty edge tiles for the remaining LLCs: evict non-LLC PEs
        # from edge tiles to make room.
        needed = len(unused_llc) - len(empty_edge)
        evictable = [
            t
            for t in grid.edge_tiles()
            if child[t] != -1 and config.pe_type(child[t]) is not PEType.LLC
        ]
        rng.shuffle(evictable)
        for tile in evictable[:needed]:
            unused_other.append(child[tile])
            child[tile] = -1
            empty_edge.append(tile)

    for tile, pe in zip(empty_edge, unused_llc):
        child[tile] = pe
    leftover_edge = empty_edge[len(unused_llc):]
    remaining_tiles = leftover_edge + empty_other
    for tile, pe in zip(remaining_tiles, unused_other):
        child[tile] = pe
    return tuple(child)


def crossover_links(
    parent_a: NocDesign, parent_b: NocDesign, config: PlatformConfig, rng: RngLike = None
) -> tuple:
    """Recombine two parents' link placements (may require repair afterwards)."""
    rng = ensure_rng(rng)
    grid = config.grid
    set_a, set_b = parent_a.link_set(), parent_b.link_set()
    common = set_a & set_b
    exclusive = list((set_a | set_b) - common)
    rng.shuffle(exclusive)

    budgets = {
        LinkKind.PLANAR: config.num_planar_links,
        LinkKind.VERTICAL: config.num_vertical_links,
    }
    counts = {LinkKind.PLANAR: 0, LinkKind.VERTICAL: 0}
    chosen = set()
    degrees = np.zeros(config.num_tiles, dtype=np.int64)

    def try_add(link) -> None:
        kind = link_kind(link, grid)
        if counts[kind] >= budgets[kind]:
            return
        if degrees[link.a] >= config.max_router_degree or degrees[link.b] >= config.max_router_degree:
            return
        chosen.add(link)
        counts[kind] += 1
        degrees[link.a] += 1
        degrees[link.b] += 1

    for link in sorted(common):
        try_add(link)
    for link in exclusive:
        try_add(link)
    return tuple(sorted(chosen))


def crossover(
    parent_a: NocDesign, parent_b: NocDesign, config: PlatformConfig, rng: RngLike = None
) -> NocDesign:
    """Full crossover: recombine placements and links, then repair to feasibility.

    The offspring is annotated with a :class:`~repro.noc.design.MoveDelta`
    against whichever parent its link set is closer to, so the routing engine
    can repair that parent's cached tables instead of rebuilding from scratch.
    """
    rng = ensure_rng(rng)
    placement = crossover_placement(parent_a, parent_b, config, rng)
    links = crossover_links(parent_a, parent_b, config, rng)
    child = repair_links(NocDesign(placement=placement, links=links), config, rng)
    child_links = frozenset(child.links)
    diff_a = len(child_links.symmetric_difference(parent_a.links))
    diff_b = len(child_links.symmetric_difference(parent_b.links))
    closest = parent_a if diff_a <= diff_b else parent_b
    return annotate_move(child, MoveDelta.between(closest, child, "crossover"))
