"""Geometry of the 3D tile grid.

The platform is an ``N x N x Y`` stack of tiles (Section III of the paper).
Tiles are addressed either by a linear index (``tile_id``) or by an
``(x, y, z)`` coordinate where ``z`` is the layer.  Layer ``z = 0`` is the
layer closest to the heat sink (the thermal model in
:mod:`repro.objectives.thermal` counts layers away from the sink starting
there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass(frozen=True, order=True)
class TileCoord:
    """Coordinate of a tile inside the 3D grid."""

    x: int
    y: int
    z: int

    def planar_distance(self, other: "TileCoord") -> int:
        """Manhattan distance within a layer (ignores ``z``)."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def manhattan_distance(self, other: "TileCoord") -> int:
        """Full 3D Manhattan distance."""
        return self.planar_distance(other) + abs(self.z - other.z)

    def same_layer(self, other: "TileCoord") -> bool:
        """True when both tiles sit on the same layer."""
        return self.z == other.z

    def same_column(self, other: "TileCoord") -> bool:
        """True when both tiles share the same (x, y) single-tile stack."""
        return self.x == other.x and self.y == other.y


class Grid3D:
    """An ``n x n x layers`` grid of tiles with linear indexing helpers."""

    def __init__(self, n: int, layers: int):
        if n <= 0:
            raise ValueError(f"grid dimension n must be > 0, got {n}")
        if layers <= 0:
            raise ValueError(f"layer count must be > 0, got {layers}")
        self.n = n
        self.layers = layers

    @property
    def tiles_per_layer(self) -> int:
        """Number of tiles on a single layer."""
        return self.n * self.n

    @property
    def num_tiles(self) -> int:
        """Total number of tiles in the stack."""
        return self.tiles_per_layer * self.layers

    @property
    def num_columns(self) -> int:
        """Number of single-tile stacks (columns) in the platform."""
        return self.tiles_per_layer

    def tile_id(self, coord: TileCoord) -> int:
        """Convert a coordinate to a linear tile index."""
        self._check_coord(coord)
        return coord.z * self.tiles_per_layer + coord.y * self.n + coord.x

    def coord(self, tile_id: int) -> TileCoord:
        """Convert a linear tile index to a coordinate."""
        if not (0 <= tile_id < self.num_tiles):
            raise ValueError(f"tile_id {tile_id} out of range [0, {self.num_tiles})")
        z, rest = divmod(tile_id, self.tiles_per_layer)
        y, x = divmod(rest, self.n)
        return TileCoord(x=x, y=y, z=z)

    def coords_arrays(self, tile_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`coord`: ``(x, y, z)`` arrays for an array of tile ids.

        The single authoritative decode of the linear tile layout — vectorized
        callers (routing, thermal) use this instead of re-deriving the
        ``divmod`` arithmetic.
        """
        tile_ids = np.asarray(tile_ids, dtype=np.int64)
        z, rest = np.divmod(tile_ids, self.tiles_per_layer)
        y, x = np.divmod(rest, self.n)
        return x, y, z

    def column_id(self, tile_id: int) -> int:
        """Return the single-tile-stack (column) index of a tile."""
        coord = self.coord(tile_id)
        return coord.y * self.n + coord.x

    def layer_of(self, tile_id: int) -> int:
        """Return the layer (z) of a tile."""
        return self.coord(tile_id).z

    def tiles(self) -> Iterator[int]:
        """Iterate over all tile ids."""
        return iter(range(self.num_tiles))

    def coords(self) -> Iterator[TileCoord]:
        """Iterate over all tile coordinates in id order."""
        return (self.coord(t) for t in range(self.num_tiles))

    def is_edge_tile(self, tile_id: int) -> bool:
        """True when the tile is on the perimeter of its die.

        LLC tiles (which embed memory controllers) must be placed on edge
        tiles so they can interface with off-chip main memory (Section III
        constraints).
        """
        coord = self.coord(tile_id)
        return (
            coord.x == 0
            or coord.y == 0
            or coord.x == self.n - 1
            or coord.y == self.n - 1
        )

    def edge_tiles(self) -> list[int]:
        """All tile ids located on a die perimeter."""
        return [t for t in range(self.num_tiles) if self.is_edge_tile(t)]

    def interior_tiles(self) -> list[int]:
        """All tile ids not on a die perimeter."""
        return [t for t in range(self.num_tiles) if not self.is_edge_tile(t)]

    def planar_distance(self, a: int, b: int) -> int:
        """Manhattan distance between two tiles within their layers."""
        return self.coord(a).planar_distance(self.coord(b))

    def manhattan_distance(self, a: int, b: int) -> int:
        """3D Manhattan distance between two tiles."""
        return self.coord(a).manhattan_distance(self.coord(b))

    def vertical_neighbors(self, tile_id: int) -> list[int]:
        """Tiles directly above/below ``tile_id`` (same column, adjacent layer)."""
        coord = self.coord(tile_id)
        neighbors = []
        for dz in (-1, 1):
            z = coord.z + dz
            if 0 <= z < self.layers:
                neighbors.append(self.tile_id(TileCoord(coord.x, coord.y, z)))
        return neighbors

    def planar_neighbors(self, tile_id: int) -> list[int]:
        """Tiles adjacent in the same layer (NSEW neighbours)."""
        coord = self.coord(tile_id)
        neighbors = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            x, y = coord.x + dx, coord.y + dy
            if 0 <= x < self.n and 0 <= y < self.n:
                neighbors.append(self.tile_id(TileCoord(x, y, coord.z)))
        return neighbors

    def _check_coord(self, coord: TileCoord) -> None:
        if not (0 <= coord.x < self.n and 0 <= coord.y < self.n and 0 <= coord.z < self.layers):
            raise ValueError(
                f"coordinate {coord} outside grid {self.n}x{self.n}x{self.layers}"
            )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Grid3D) and self.n == other.n and self.layers == other.layers

    def __hash__(self) -> int:
        return hash((self.n, self.layers))

    def __repr__(self) -> str:
        return f"Grid3D(n={self.n}, layers={self.layers})"
