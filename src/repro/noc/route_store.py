"""Bounded disk-backed warm-start table for routing solutions.

A :class:`RouteStore` persists the state arrays of a
:class:`~repro.noc.routing.RoutingTables` instance (distance + canonical
predecessors, see :meth:`~repro.noc.routing.RoutingTables.table_state`) keyed
by a sha256 of the grid dimensions and the exact link set.  Loading a stored
entry reconstructs tables bit-identical to the build that produced it — and
therefore to any fresh build for the same link set — without re-running the
all-pairs Dijkstra.

The store exists for process boundaries that an in-memory
:class:`~repro.noc.routing_engine.RoutingEngine` cannot cross: evaluation-pool
workers and campaign-cell processes each own a private engine, so without the
store every process pays a cold build for topologies a sibling already solved.
Attaching one store to all of them turns those rebuilds into a single
``.npz`` read.

Durability and determinism
--------------------------
Writes are atomic (``os.replace`` of a pid-suffixed temporary file), so
readers never observe a partial entry and concurrent writers of the same key
converge on identical content.  Entry names derive only from the stored
content's identity — no wall-clock, counters or randomness — so a store
populated twice from the same designs is file-for-file identical.  The entry
count is bounded by ``max_entries``: once full, new keys are simply not
persisted (concurrent writers may overshoot by at most one entry each, which
keeps the bound approximate but the behaviour deterministic per process).
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.noc.geometry import Grid3D
from repro.noc.links import Link
from repro.noc.routing import RoutingTables

#: Default maximum number of persisted topologies per store.
DEFAULT_MAX_ENTRIES = 64


class RouteStore:
    """Content-keyed ``.npz`` store of routing-table state arrays.

    Parameters
    ----------
    root:
        Directory holding the entries (created on first use).
    max_entries:
        Maximum number of persisted topologies; saves beyond the bound are
        skipped (and report ``False``) rather than evicting older entries,
        so a warm store stays stable under concurrent readers.
    """

    def __init__(self, root: "str | Path", max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = Path(root)
        self.max_entries = int(max_entries)

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for name in os.listdir(self.root) if name.endswith(".npz"))

    @staticmethod
    def key_for(
        links: "Sequence[Link] | Iterable[Link]", num_tiles: int, grid: Grid3D
    ) -> str:
        """Deterministic content key for a (grid, link set) topology."""
        ordered = tuple(sorted(links))
        ends = np.array([(link.a, link.b) for link in ordered], dtype=np.int64)
        digest = hashlib.sha256()
        digest.update(np.array([grid.n, grid.layers, num_tiles], dtype=np.int64).tobytes())
        digest.update(ends.tobytes())
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def load(
        self, links: "Sequence[Link] | Iterable[Link]", num_tiles: int, grid: Grid3D
    ) -> "RoutingTables | None":
        """Reconstruct stored tables for a link set, or ``None`` when absent.

        The stored link endpoints are verified against the request before
        reconstruction, so a (vanishingly unlikely) key collision or a stale
        file degrades to a miss instead of wrong routes.
        """
        ordered = tuple(sorted(links))
        entry_path = self._entry_path(self.key_for(ordered, num_tiles, grid))
        if not entry_path.is_file():
            return None
        try:
            with np.load(entry_path) as payload:
                dims = payload["dims"]
                ends = payload["link_ends"]
                distance = payload["distance"]
                predecessors = payload["predecessors"]
        except Exception:
            # A foreign or truncated file is a miss, never an error: writes
            # are atomic, so this only guards files the store never wrote.
            return None
        expected = np.array([(link.a, link.b) for link in ordered], dtype=np.int64)
        expected = expected.reshape(-1, 2)
        if (
            tuple(dims.tolist()) != (grid.n, grid.layers, num_tiles)
            or ends.shape != expected.shape
            or not np.array_equal(ends, expected)
        ):
            return None
        return RoutingTables.from_state(ordered, num_tiles, grid, distance, predecessors)

    def save(self, tables: RoutingTables) -> bool:
        """Persist a table's state; True when a new entry was written.

        Skips (returning ``False``) when the key is already stored or the
        store is full.  The write is atomic: the arrays go to a pid-suffixed
        temporary sibling first and are published with one ``os.replace``.
        """
        key = self.key_for(tables.links, tables.num_tiles, tables.grid)
        entry_path = self._entry_path(key)
        if entry_path.is_file():
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        if len(self) >= self.max_entries:
            return False
        state = tables.table_state()
        ends = np.array([(link.a, link.b) for link in tables.links], dtype=np.int64)
        staged_path = entry_path.with_name(f".{key}.{os.getpid()}.tmp.npz")
        with open(staged_path, "wb") as staged:
            np.savez(
                staged,
                dims=np.array(
                    [tables.grid.n, tables.grid.layers, tables.num_tiles], dtype=np.int64
                ),
                link_ends=ends.reshape(-1, 2),
                distance=state["distance"],
                predecessors=state["predecessors"],
            )
            staged.flush()
            os.fsync(staged.fileno())
        os.replace(staged_path, entry_path)
        return True
