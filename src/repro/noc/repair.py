"""Directed feasibility repair driven by structured violation reports.

:mod:`repro.noc.constraints` explains *why* a design is infeasible
(:class:`~repro.noc.constraints.ViolationReport`); this module acts on that
explanation.  :func:`repair_design` runs a seeded, budget-bounded walk that
picks targeted operators per violation code — LLC placement swaps for
``llc-edge``, invalid-link drops, degree trims, budget trims/fills and
connectivity bridging for the link-family codes — generates a brood of
candidate repairs per round, and (when an evaluator is supplied) scores the
feasible candidates through
:meth:`~repro.objectives.evaluator.ObjectiveEvaluator.evaluate_many` so the
repair that lands closest to the Pareto-relevant region wins, not merely the
first feasible one.

Every stochastic choice is derived from ``(seed, round, candidate)`` via a
sha256 substream (the campaign-cell idiom from
:mod:`repro.experiments.runner`), so a :class:`RepairPlan` replays
bit-identically from its recorded seed: same design + same seed + same
budget → same steps, same evaluations spent, same repaired design.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.noc.constraints import (
    ConstraintChecker,
    ViolationReport,
    _enforce_degree_cap,
    _fill_budgets,
    _is_redundant,
    _restore_connectivity,
    is_connected,
    random_link_placement,
)
from repro.noc.design import NocDesign
from repro.noc.links import LinkKind, is_feasible_link
from repro.noc.platform import PEType, PlatformConfig
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (evaluator imports noc)
    from repro.objectives.evaluator import ObjectiveEvaluator

#: Violation codes the link-operator pipeline can act on.
LINK_CODES = frozenset(
    {
        "duplicate-link",
        "link-range",
        "link-shape",
        "planar-budget",
        "vertical-budget",
        "router-degree",
        "connectivity",
    }
)


@dataclass(frozen=True)
class RepairBudget:
    """Bounds on the directed repair walk.

    ``max_rounds`` caps the number of candidate broods generated,
    ``candidates_per_round`` sizes each brood, and ``max_evaluations`` caps
    the total number of candidates scored through the objective evaluator
    (scoring is skipped entirely once the cap is reached; the walk then
    falls back to the first feasible candidate, which costs nothing).
    """

    max_rounds: int = 4
    candidates_per_round: int = 8
    max_evaluations: int = 32

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.candidates_per_round < 1:
            raise ValueError("candidates_per_round must be >= 1")
        if self.max_evaluations < 0:
            raise ValueError("max_evaluations must be >= 0")

    def to_dict(self) -> dict[str, int]:
        return {
            "max_rounds": self.max_rounds,
            "candidates_per_round": self.candidates_per_round,
            "max_evaluations": self.max_evaluations,
        }

    @classmethod
    def smoke(cls) -> "RepairBudget":
        """Tiny budget for tests."""
        return cls(max_rounds=2, candidates_per_round=4, max_evaluations=8)


@dataclass(frozen=True)
class RepairStep:
    """One round of the repair walk.

    ``actions`` names the operators applied to the candidate the round
    selected (in application order); ``codes_before``/``codes_after`` are the
    violation codes around the round, so a transcript reads as a chain of
    "had these problems → applied these operators → left with these".
    """

    round: int
    actions: tuple[str, ...]
    candidates: int
    feasible_candidates: int
    scored: int
    selected: int
    codes_before: tuple[str, ...]
    codes_after: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "round": self.round,
            "actions": list(self.actions),
            "candidates": self.candidates,
            "feasible_candidates": self.feasible_candidates,
            "scored": self.scored,
            "selected": self.selected,
            "codes_before": list(self.codes_before),
            "codes_after": list(self.codes_after),
        }


@dataclass(frozen=True)
class RepairPlan:
    """The full, replayable outcome of one :func:`repair_design` call."""

    seed: int
    budget: RepairBudget
    feasible: bool
    design: NocDesign
    initial_report: ViolationReport
    final_report: ViolationReport
    steps: tuple[RepairStep, ...]
    evaluations_used: int

    @property
    def rounds_used(self) -> int:
        """Number of candidate broods the walk generated."""
        return len(self.steps)

    def to_dict(self) -> dict[str, Any]:
        """JSON representation (reports via their own canonical encodings)."""
        return {
            "seed": self.seed,
            "budget": self.budget.to_dict(),
            "feasible": self.feasible,
            "evaluations_used": self.evaluations_used,
            "rounds_used": self.rounds_used,
            "steps": [step.to_dict() for step in self.steps],
            "initial_report": self.initial_report.to_dict(),
            "final_report": self.final_report.to_dict(),
            "design": {
                "placement": [int(p) for p in self.design.placement],
                "links": [[int(link.a), int(link.b)] for link in self.design.links],
            },
        }

    def format(self) -> str:
        """Multi-line human-readable repair transcript."""
        verdict = "repaired" if self.feasible else "NOT repaired"
        lines = [
            f"repair walk (seed {self.seed}): {verdict} after "
            f"{self.rounds_used} round(s), {self.evaluations_used} evaluation(s)"
        ]
        for step in self.steps:
            before = ",".join(step.codes_before) or "-"
            after = ",".join(step.codes_after) or "feasible"
            actions = " -> ".join(step.actions) or "(no-op)"
            lines.append(
                f"  round {step.round}: [{before}] {actions} => [{after}] "
                f"(candidate {step.selected}/{step.candidates}, "
                f"{step.feasible_candidates} feasible, {step.scored} scored)"
            )
        return "\n".join(lines)


def _candidate_seed(seed: int, round_idx: int, index: int) -> int:
    """Deterministic per-(round, candidate) substream seed."""
    identity = f"repair|{seed}|{round_idx}|{index}"
    digest = hashlib.sha256(identity.encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFFFFFFFFFFFFFF


def _swap_llcs_to_edge(design: NocDesign, config: PlatformConfig, rng) -> NocDesign:
    """Swap interior-placed LLC PEs with random non-LLC PEs on edge tiles."""
    grid = config.grid
    placement = list(design.placement)
    offending = [
        tile
        for tile, pe in enumerate(placement)
        if config.pe_type(int(pe)) is PEType.LLC and not grid.is_edge_tile(tile)
    ]
    if not offending:
        return design
    targets = [
        tile
        for tile in range(config.num_tiles)
        if grid.is_edge_tile(tile) and config.pe_type(int(placement[tile])) is not PEType.LLC
    ]
    order = rng.permutation(len(targets))
    for tile, target_idx in zip(offending, order):
        target = targets[int(target_idx)]
        placement[tile], placement[target] = placement[target], placement[tile]
    return NocDesign(placement=tuple(int(p) for p in placement), links=design.links)


def _drop_invalid_links(design: NocDesign, config: PlatformConfig) -> NocDesign:
    """Remove duplicate, out-of-range and shape-invalid links."""
    kept = tuple(
        sorted(
            {
                link
                for link in design.links
                if link.a < config.num_tiles
                and link.b < config.num_tiles
                and is_feasible_link(link, config)
            }
        )
    )
    if kept == design.links:
        return design
    return NocDesign(placement=design.placement, links=kept)


def _trim_budgets(design: NocDesign, config: PlatformConfig, rng) -> NocDesign:
    """Remove excess links per kind, preferring redundant (non-bridging) ones."""
    grid = config.grid
    partition = design.links_by_kind(grid)
    links = set(design.links)
    changed = False
    for kind, budget in (
        (LinkKind.PLANAR, config.num_planar_links),
        (LinkKind.VERTICAL, config.num_vertical_links),
    ):
        of_kind = sorted(partition[kind])
        excess = len(of_kind) - budget
        while excess > 0:
            current = NocDesign(placement=design.placement, links=tuple(sorted(links)))
            candidates = [link for link in of_kind if link in links]
            redundant = [link for link in candidates if _is_redundant(link, current)]
            pool = redundant or candidates
            victim = pool[int(rng.integers(len(pool)))]
            links.discard(victim)
            excess -= 1
            changed = True
    if not changed:
        return design
    return NocDesign(placement=design.placement, links=tuple(sorted(links)))


def _directed_candidate(
    design: NocDesign,
    config: PlatformConfig,
    report: ViolationReport,
    checker: ConstraintChecker,
    rng,
) -> tuple[NocDesign, tuple[str, ...]]:
    """Build one repair candidate by applying operators targeted at ``report``.

    Returns the candidate and the names of the operators that actually
    changed the design, in application order.
    """
    actions: list[str] = []
    current = design
    codes = set(report.codes)

    if "llc-edge" in codes:
        swapped = _swap_llcs_to_edge(current, config, rng)
        if swapped is not current:
            actions.append("llc-edge-swap")
            current = swapped

    if codes & LINK_CODES:
        dropped = _drop_invalid_links(current, config)
        if dropped is not current:
            actions.append("drop-invalid-links")
            current = dropped
        capped = _enforce_degree_cap(current, config, rng)
        if capped is not current:
            actions.append("degree-trim")
            current = capped
        trimmed = _trim_budgets(current, config, rng)
        if trimmed is not current:
            actions.append("budget-trim")
            current = trimmed
        filled = _fill_budgets(current, config, rng)
        if filled.links != current.links:
            actions.append("budget-fill")
            current = filled
        if not is_connected(current):
            bridged = _restore_connectivity(current, config, rng)
            if bridged.links != current.links:
                actions.append("restore-connectivity")
                current = bridged

    remaining = checker.report(current)
    if not remaining.feasible and not remaining.fatal and set(remaining.codes) <= LINK_CODES:
        # Piecemeal operators could not land a feasible link set; regrow one
        # from scratch on the (now valid) placement — total-function fallback.
        current = NocDesign(
            placement=current.placement, links=random_link_placement(config, rng)
        )
        actions.append("regenerate-links")

    return current, tuple(actions)


def _candidate_scores(values: np.ndarray) -> np.ndarray:
    """Min-max-normalised objective sum per candidate (all objectives minimised)."""
    lo = values.min(axis=0)
    hi = values.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    return ((values - lo) / span).sum(axis=1)


def repair_design(
    design: NocDesign,
    config: PlatformConfig,
    *,
    seed: int,
    evaluator: "ObjectiveEvaluator | None" = None,
    budget: RepairBudget | None = None,
    checker: ConstraintChecker | None = None,
) -> RepairPlan:
    """Run the directed repair walk on ``design`` and return its :class:`RepairPlan`.

    The walk refuses fatal reports (wrong tile count, placement not a
    permutation): no link/placement operator can restore structural identity,
    so the plan comes back ``feasible=False`` with zero rounds.  For
    repairable reports each round builds ``budget.candidates_per_round``
    candidates from independent seeded substreams; the first round that
    yields feasible candidates selects one — the lowest normalised objective
    sum when an ``evaluator`` is given and evaluation budget remains, the
    first feasible candidate otherwise — and the walk stops.  Rounds that
    yield none adopt the candidate with the fewest violations (when it
    improves on the current design) and continue.
    """
    budget = budget if budget is not None else RepairBudget()
    checker = checker if checker is not None else ConstraintChecker(config)
    initial = checker.report(design)
    if initial.feasible or initial.fatal:
        return RepairPlan(
            seed=seed,
            budget=budget,
            feasible=initial.feasible,
            design=design,
            initial_report=initial,
            final_report=initial,
            steps=(),
            evaluations_used=0,
        )

    steps: list[RepairStep] = []
    evaluations_used = 0
    current = design
    current_report = initial

    for round_idx in range(budget.max_rounds):
        candidates: list[NocDesign] = []
        actions: list[tuple[str, ...]] = []
        for index in range(budget.candidates_per_round):
            rng = ensure_rng(_candidate_seed(seed, round_idx, index))
            candidate, applied = _directed_candidate(
                current, config, current_report, checker, rng
            )
            candidates.append(candidate)
            actions.append(applied)

        reports = [checker.report(candidate) for candidate in candidates]
        feasible_idx = [i for i, rep in enumerate(reports) if rep.feasible]

        if feasible_idx:
            scored = 0
            remaining = budget.max_evaluations - evaluations_used
            if evaluator is not None and remaining > 0 and len(feasible_idx) > 1:
                to_score = feasible_idx[:remaining]
                values = evaluator.evaluate_many([candidates[i] for i in to_score])
                scored = len(to_score)
                evaluations_used += scored
                chosen = to_score[int(np.argmin(_candidate_scores(values)))]
            else:
                chosen = feasible_idx[0]
            steps.append(
                RepairStep(
                    round=round_idx,
                    actions=actions[chosen],
                    candidates=len(candidates),
                    feasible_candidates=len(feasible_idx),
                    scored=scored,
                    selected=chosen,
                    codes_before=current_report.codes,
                    codes_after=(),
                )
            )
            return RepairPlan(
                seed=seed,
                budget=budget,
                feasible=True,
                design=candidates[chosen],
                initial_report=initial,
                final_report=reports[chosen],
                steps=tuple(steps),
                evaluations_used=evaluations_used,
            )

        # No feasible candidate this round: keep the best partial progress
        # (fewest violations, ties broken by candidate index) and iterate.
        best = min(
            range(len(candidates)), key=lambda i: (len(reports[i].violations), i)
        )
        steps.append(
            RepairStep(
                round=round_idx,
                actions=actions[best],
                candidates=len(candidates),
                feasible_candidates=0,
                scored=0,
                selected=best,
                codes_before=current_report.codes,
                codes_after=reports[best].codes,
            )
        )
        if len(reports[best].violations) < len(current_report.violations):
            current = candidates[best]
            current_report = reports[best]

    return RepairPlan(
        seed=seed,
        budget=budget,
        feasible=False,
        design=current,
        initial_report=initial,
        final_report=current_report,
        steps=tuple(steps),
        evaluations_used=evaluations_used,
    )
