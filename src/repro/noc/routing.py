"""Deterministic shortest-path routing over a design's link placement.

All objectives of Section III need, for every communicating tile pair
``(i, j)``, the set of links (``p_ijk``) and routers (``r_ijk``) used by the
route.  We use deterministic minimal routing: paths minimise hop count, with
ties broken by physical path length and then lexicographically (the
smallest-id predecessor wins at every step), so a design always maps to the
same routes (and therefore the same objective vector).

Construction vs queries
-----------------------
Table construction is split from path queries so tables can be shared
read-only across designs and repaired incrementally:

* ``scipy.sparse.csgraph`` computes only the all-pairs *distance* matrix;
* predecessors are then derived canonically from the distances
  (:meth:`RoutingTables._canonical_predecessors`): the predecessor of ``v`` on
  the route from ``i`` is the smallest-id neighbour ``u`` with
  ``dist(i, u) + w(u, v) == dist(i, v)``.  Link weights are
  ``1 + epsilon * length`` with integer lengths, so distinct
  ``(hops, length)`` combinations differ by at least ``epsilon`` and the tie
  test is a pure function of the distance matrix — immune to heap-order
  artefacts of the Dijkstra implementation.  That property is what makes
  :meth:`RoutingTables.incremental_update` exact: sources whose route tree
  does not cross a changed link provably keep identical routes, so only the
  affected sources re-run Dijkstra.

Tables depend only on the *link set* (plus the grid), never on the PE
placement, which is why :class:`repro.noc.routing_engine.RoutingEngine` can
key a cross-design route cache on the link tuple alone.
:meth:`RoutingTables.from_links` builds tables without a design object.

Batch path tables
-----------------
Besides the per-pair query API, :class:`RoutingTables` exposes sparse batch
structures used by the vectorized objective engine in :mod:`repro.objectives`.
They are reconstructed lazily, in a single vectorized sweep over the
predecessor matrix (one iteration per path-length step, all pairs at once),
instead of walking predecessors pair-by-pair:

* :meth:`pair_link_incidence` — CSR matrix ``P`` of shape
  ``(num_tiles**2, num_links)``; ``P[p, k] = 1`` iff the route of the ordered
  tile pair ``p = src * num_tiles + dst`` traverses link ``k``.  Link
  utilisation for a pair-frequency vector ``f`` is then ``P.T @ f``.
* :meth:`pair_tile_incidence` — CSR matrix ``R`` of shape
  ``(num_tiles**2, num_tiles)``; ``R[p, t] = 1`` iff tile (router) ``t`` lies
  on the route of pair ``p``, endpoints included (a self pair visits only its
  own tile).  Router-energy sums are ``R @ ports``.
* :meth:`pair_hops` / :meth:`pair_lengths` — dense per-pair hop counts
  ``h_ij`` and physical route lengths ``d_ij``.
* :meth:`reachable_pairs` — boolean per-pair reachability in the same flat
  ``src * num_tiles + dst`` order.

Minimal routes are simple paths, so every incidence entry is 0/1 and
``pair_hops`` equals the per-row sums of ``P``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.noc.design import NocDesign
from repro.noc.geometry import Grid3D
from repro.noc.links import Link, link_lengths_array

#: scipy's "no predecessor" sentinel (source itself or unreachable pair).
NO_PREDECESSOR = -9999


class RoutingTables:
    """All-pairs deterministic shortest-path routes for one link placement.

    Parameters
    ----------
    design:
        The design whose link placement defines the network graph.
    grid:
        The tile grid (used for physical link lengths).

    Notes
    -----
    The edge weight used for the search is ``1 + epsilon * length`` so that
    hop count dominates and physical length breaks ties; ``epsilon`` is small
    enough that no sum of length terms can outweigh a single hop.  Tables are
    a function of ``(links, num_tiles, grid)`` only — the placement never
    enters — so one instance can serve every design sharing a link set.
    """

    _LENGTH_EPSILON = 1e-3
    #: Distances are ``hops + epsilon * length`` with integer hops/lengths, so
    #: genuinely different values are at least ``epsilon`` apart (up to ~1e-13
    #: of float accumulation noise); anything closer than this tolerance is
    #: the same value computed along a different equal-cost path.
    _TIE_TOLERANCE = 1e-6

    def __init__(self, design: NocDesign, grid: Grid3D):
        self._build(design.links, design.num_tiles, grid)

    @classmethod
    def from_links(
        cls, links: "Sequence[Link] | Iterable[Link]", num_tiles: int, grid: Grid3D
    ) -> "RoutingTables":
        """Build tables directly from a link set (no design object needed)."""
        tables = object.__new__(cls)
        tables._build(tuple(sorted(links)), int(num_tiles), grid)
        return tables

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build(self, links: tuple[Link, ...], num_tiles: int, grid: Grid3D) -> None:
        """Full fresh build: graph setup, all-pairs Dijkstra, canonical routes."""
        self._setup_static(links, num_tiles, grid)
        self._distance = shortest_path(self._graph, method="D", directed=False)
        self._predecessors = self._canonical_predecessors(self._distance)
        self._reset_lazy()

    def _setup_static(self, links: tuple[Link, ...], num_tiles: int, grid: Grid3D) -> None:
        """Set up everything that derives directly from the link set."""
        self.links = links
        self.grid = grid
        self.num_tiles = num_tiles
        self.num_links = len(links)
        ends_a = np.fromiter((link.a for link in links), dtype=np.int64, count=self.num_links)
        ends_b = np.fromiter((link.b for link in links), dtype=np.int64, count=self.num_links)
        self._ends_a = ends_a
        self._ends_b = ends_b
        # Links are lexicographically sorted and a*num_tiles+b is monotone in
        # (a, b), so these keys are ascending — searchsorted-friendly.
        self._link_keys = ends_a * np.int64(num_tiles) + ends_b
        self._link_index: dict[tuple[int, int], int] | None = None
        self.link_lengths = link_lengths_array(links, grid)
        self._weights = 1.0 + self._LENGTH_EPSILON * self.link_lengths
        # Directed edge lists (both orientations) shared by the graph and the
        # canonical predecessor derivation.
        self._edge_u = np.concatenate((ends_a, ends_b))
        self._edge_v = np.concatenate((ends_b, ends_a))
        self._edge_w = np.concatenate((self._weights, self._weights))
        self._graph = csr_matrix(
            (self._edge_w, (self._edge_u, self._edge_v)),
            shape=(num_tiles, num_tiles),
        )

    @property
    def link_index(self) -> dict[tuple[int, int], int]:
        """Endpoint pair -> link index lookup (built lazily, query path only)."""
        if self._link_index is None:
            index: dict[tuple[int, int], int] = {}
            for idx, (a, b) in enumerate(zip(self._ends_a.tolist(), self._ends_b.tolist())):
                index[(a, b)] = idx
                index[(b, a)] = idx
            self._link_index = index
        return self._link_index

    def _reset_lazy(self) -> None:
        self._path_cache: dict[tuple[int, int], tuple[list[int], list[int]]] = {}
        # Lazily built batch structures (see _build_pair_tables).
        self._pair_links: csr_matrix | None = None
        self._pair_tiles: csr_matrix | None = None
        self._pair_hops: np.ndarray | None = None
        self._pair_lengths: np.ndarray | None = None
        self._reachable: np.ndarray | None = None
        self._edge_link: np.ndarray | None = None

    def _canonical_predecessors(self, distance_rows: np.ndarray) -> np.ndarray:
        """Derive lexicographic-minimal predecessors from a distance block.

        For every (source row, node ``v``) the predecessor is the smallest-id
        neighbour ``u`` of ``v`` with ``dist(u) + w(u, v) == dist(v)`` (within
        the tie tolerance).  Because edge weights strictly decrease along the
        chain, the walk always terminates at the source.  The result depends
        only on the distances and the graph — not on how Dijkstra happened to
        visit equal-cost alternatives — which makes routes reproducible across
        fresh builds and incremental repairs.
        """
        num_sources = distance_rows.shape[0]
        num_tiles = self.num_tiles
        predecessors = np.full((num_sources, num_tiles), num_tiles, dtype=np.int64)
        if self.num_links:
            # Sort directed edges by head node so a single reduceat computes,
            # per (source, head), the minimum tail satisfying the tie test.
            order = np.argsort(self._edge_v, kind="stable")
            tails = self._edge_u[order]
            heads = self._edge_v[order]
            weights = self._edge_w[order]
            # inf - inf (both endpoints unreachable) yields nan, which the
            # comparison correctly rejects — suppress the noise warning.
            with np.errstate(invalid="ignore"):
                candidate = distance_rows[:, tails] + weights[None, :]
                on_route = np.abs(candidate - distance_rows[:, heads]) <= self._TIE_TOLERANCE
            tail_ids = np.where(on_route, tails[None, :], num_tiles)
            starts = np.flatnonzero(np.r_[True, heads[1:] != heads[:-1]])
            minima = np.minimum.reduceat(tail_ids, starts, axis=1)
            predecessors[:, heads[starts]] = minima
        predecessors[predecessors == num_tiles] = NO_PREDECESSOR
        return predecessors

    def incremental_update(self, new_links: "Sequence[Link] | Iterable[Link]") -> "RoutingTables":
        """New tables for a changed link set, re-routing only affected sources.

        A source must be re-run when its canonical route tree crosses a
        removed link, or when an added link strictly improves — or ties —
        the distance to one of its endpoints (a tie can change the canonical
        predecessor choice).  Every other source provably keeps identical
        distances and canonical routes, so its rows are copied.  Cached
        tables stay untouched ("repair" returns a new instance), because the
        parent's entry remains live under its own topology key.

        The result is bit-identical (routes, hops, incidence matrices) to a
        fresh :class:`RoutingTables` build for ``new_links``.
        """
        updated = object.__new__(RoutingTables)
        updated._setup_static(tuple(sorted(new_links)), self.num_tiles, self.grid)

        removed = np.isin(self._link_keys, updated._link_keys, invert=True)
        added = np.isin(updated._link_keys, self._link_keys, invert=True)
        affected = np.zeros(self.num_tiles, dtype=bool)
        for idx in np.flatnonzero(removed):  # removed: sources whose tree used it
            a, b = int(self._ends_a[idx]), int(self._ends_b[idx])
            affected |= self._predecessors[:, b] == a
            affected |= self._predecessors[:, a] == b
        for idx in np.flatnonzero(added):  # added: sources it improves or ties
            a, b = int(updated._ends_a[idx]), int(updated._ends_b[idx])
            weight = float(updated._weights[idx])
            dist_a = self._distance[:, a]
            dist_b = self._distance[:, b]
            relevant = (dist_a + weight <= dist_b + self._TIE_TOLERANCE) | (
                dist_b + weight <= dist_a + self._TIE_TOLERANCE
            )
            # inf <= inf is a numpy truth but a no-op for routing: the new
            # link cannot connect tiles that are both unreachable.
            relevant &= ~(np.isinf(dist_a) & np.isinf(dist_b))
            affected |= relevant

        distance = self._distance.copy()
        predecessors = self._predecessors.copy()
        rows = np.flatnonzero(affected)
        if rows.size:
            distance[rows] = shortest_path(
                updated._graph, method="D", directed=False, indices=rows
            )
            predecessors[rows] = updated._canonical_predecessors(distance[rows])
        updated._distance = distance
        updated._predecessors = predecessors
        updated._reset_lazy()
        # Adoption splices surviving parent rows block-wise (no global sort),
        # so it wins whenever any source keeps its routes; with every source
        # re-routed there is nothing to splice and the lazy sweep is exact.
        if rows.size < self.num_tiles:
            updated._adopt_pair_tables(self, affected)
        return updated

    # ------------------------------------------------------------------ #
    # State round trip (disk warm-start stores)
    # ------------------------------------------------------------------ #
    def table_state(self) -> dict[str, np.ndarray]:
        """The arrays that determine every route: distance + predecessors.

        Together with the link set (and grid) these reconstruct the instance
        exactly via :meth:`from_state`; batch structures are not part of the
        state because they rebuild deterministically from the predecessors.
        """
        return {"distance": self._distance, "predecessors": self._predecessors}

    @classmethod
    def from_state(
        cls,
        links: "Sequence[Link] | Iterable[Link]",
        num_tiles: int,
        grid: Grid3D,
        distance: np.ndarray,
        predecessors: np.ndarray,
    ) -> "RoutingTables":
        """Rebuild tables from a :meth:`table_state` snapshot without Dijkstra.

        The caller vouches that ``distance``/``predecessors`` came from tables
        built for exactly this link set; the result is bit-identical to the
        instance that produced the snapshot (and therefore to a fresh build).
        """
        tables = object.__new__(cls)
        tables._setup_static(tuple(sorted(links)), int(num_tiles), grid)
        tables._distance = np.ascontiguousarray(distance, dtype=np.float64)
        tables._predecessors = np.ascontiguousarray(predecessors, dtype=np.int64)
        tables._reset_lazy()
        return tables

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def is_reachable(self, src: int, dst: int) -> bool:
        """True when a route exists from ``src`` to ``dst``."""
        return np.isfinite(self._distance[src, dst])

    def hops(self, src: int, dst: int) -> int:
        """Number of links traversed on the route (``h_ij``).

        Answers from the batch tables when they are already built; a single
        query on a fresh instance uses the cheap cached predecessor walk
        instead of triggering the whole-network sweep.
        """
        if src == dst:
            return 0
        if self._pair_hops is not None:
            if not self.is_reachable(src, dst):
                raise ValueError(
                    f"no route from tile {src} to tile {dst}: network is disconnected"
                )
            return int(self._pair_hops[src * self.num_tiles + dst])
        return len(self.path_links(src, dst))

    def path_length(self, src: int, dst: int) -> float:
        """Total physical length of the route (``d_ij``), in tile units."""
        if src == dst:
            return 0.0
        if self._pair_lengths is not None:
            if not self.is_reachable(src, dst):
                raise ValueError(
                    f"no route from tile {src} to tile {dst}: network is disconnected"
                )
            return float(self._pair_lengths[src * self.num_tiles + dst])
        links = self.path_links(src, dst)
        return float(self.link_lengths[links].sum()) if links else 0.0

    def path_tiles(self, src: int, dst: int) -> list[int]:
        """The ordered tiles (routers) visited by the route, endpoints included."""
        return self._path(src, dst)[0]

    def path_links(self, src: int, dst: int) -> list[int]:
        """The ordered link indices traversed by the route."""
        return self._path(src, dst)[1]

    # ------------------------------------------------------------------ #
    # Batch structures (vectorized objective engine)
    # ------------------------------------------------------------------ #
    def pair_index(self, src: int, dst: int) -> int:
        """Flat index of the ordered tile pair ``(src, dst)`` in the batch tables."""
        return src * self.num_tiles + dst

    def pair_link_incidence(self) -> csr_matrix:
        """Sparse 0/1 path-link incidence ``P`` of shape ``(num_tiles**2, num_links)``."""
        if self._pair_links is None:
            self._build_pair_tables()
        return self._pair_links

    def pair_tile_incidence(self) -> csr_matrix:
        """Sparse 0/1 path-router incidence ``R`` of shape ``(num_tiles**2, num_tiles)``."""
        if self._pair_tiles is None:
            self._build_pair_tables()
        return self._pair_tiles

    def pair_hops(self) -> np.ndarray:
        """Per-pair hop counts ``h_ij`` (0 for self pairs and unreachable pairs)."""
        if self._pair_hops is None:
            self._build_pair_tables()
        return self._pair_hops

    def pair_lengths(self) -> np.ndarray:
        """Per-pair physical route lengths ``d_ij`` (0 where no route exists)."""
        if self._pair_lengths is None:
            self._build_pair_tables()
        return self._pair_lengths

    def reachable_pairs(self) -> np.ndarray:
        """Boolean per-pair reachability, flattened in ``src * num_tiles + dst`` order."""
        if self._reachable is None:
            self._reachable = np.isfinite(self._distance).ravel()
            self._reachable.setflags(write=False)
        return self._reachable

    def reachable_matrix(self) -> np.ndarray:
        """Boolean tile-to-tile reachability matrix."""
        return self.reachable_pairs().reshape(self.num_tiles, self.num_tiles)

    def _build_pair_tables(self) -> None:
        """Reconstruct every route at once from the predecessor matrix."""
        entries = self._pair_table_entries(np.arange(self.num_tiles))
        self._assemble_pair_tables(*entries)

    def _edge_link_lookup(self) -> np.ndarray:
        """Dense edge -> link-index lookup (num_tiles is at most a few dozen)."""
        if self._edge_link is None:
            edge_link = np.full((self.num_tiles, self.num_tiles), -1, dtype=np.int64)
            indices = np.arange(self.num_links, dtype=np.int64)
            edge_link[self._ends_a, self._ends_b] = indices
            edge_link[self._ends_b, self._ends_a] = indices
            self._edge_link = edge_link
        return self._edge_link

    def _pair_table_entries(
        self, sources: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Route reconstruction sweep for every pair whose source is in ``sources``.

        Walks all destination-to-source chains simultaneously: iteration ``s``
        advances every still-active pair one predecessor step, emitting the
        traversed ``(prev, cur)`` edge and the visited router.  The loop runs
        ``max_ij h_ij`` times (the network diameter), with all per-pair work
        vectorized.  Returns ``(link_row, link_col, tile_row, tile_col)``
        with *global* flat pair rows (``src * num_tiles + dst``), so callers
        can mix swept entries with rows adopted from a parent table.
        """
        num_tiles = self.num_tiles
        sources = np.asarray(sources, dtype=np.int64)
        src = np.repeat(sources, num_tiles)
        dst = np.tile(np.arange(num_tiles), len(sources))
        rows = src * num_tiles + dst
        reachable = np.isfinite(self._distance[src, dst])
        edge_link = self._edge_link_lookup()

        tile_rows = [rows[reachable]]
        tile_cols = [dst[reachable]]
        link_rows: list[np.ndarray] = []
        link_cols: list[np.ndarray] = []
        cur = dst.copy()
        active = np.nonzero(reachable & (src != dst))[0]
        while active.size:
            prev = self._predecessors[src[active], cur[active]]
            link_rows.append(rows[active])
            link_cols.append(edge_link[prev, cur[active]])
            tile_rows.append(rows[active])
            tile_cols.append(prev)
            cur[active] = prev
            active = active[prev != src[active]]

        empty = np.empty(0, dtype=np.int64)
        link_row = np.concatenate(link_rows) if link_rows else empty
        link_col = np.concatenate(link_cols) if link_cols else empty
        return link_row, link_col, np.concatenate(tile_rows), np.concatenate(tile_cols)

    @staticmethod
    def _canonical_csr(
        rows: np.ndarray, cols: np.ndarray, num_rows: int, num_cols: int
    ) -> csr_matrix:
        """Canonical (row-major, sorted-indices) CSR straight from entry lists.

        Bypasses the COO round trip: one lexsort puts the entries into
        canonical order, the index pointer comes from a bincount.  Canonical
        form matters beyond speed — a repaired table and a fresh build hold
        bit-identical arrays, so sparse products over them sum in the same
        order and produce bit-identical objective values.
        """
        # One combined scalar key sorts rows and columns together (cheaper
        # than a lexsort plus two gathers at this entry count).
        key = np.sort(rows * np.int64(num_cols) + cols)
        sorted_rows = key // num_cols
        sorted_cols = key % num_cols
        indptr = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(np.bincount(sorted_rows, minlength=num_rows), out=indptr[1:])
        return csr_matrix(
            (np.ones(sorted_cols.size, dtype=np.float64), sorted_cols, indptr),
            shape=(num_rows, num_cols),
        )

    def _assemble_pair_tables(
        self,
        link_row: np.ndarray,
        link_col: np.ndarray,
        tile_row: np.ndarray,
        tile_col: np.ndarray,
    ) -> None:
        """Assemble the batch structures from (pair row, column) entry lists."""
        num_pairs = self.num_tiles * self.num_tiles
        self._pair_links = self._canonical_csr(link_row, link_col, num_pairs, self.num_links)
        self._pair_tiles = self._canonical_csr(tile_row, tile_col, num_pairs, self.num_tiles)
        # Minimal routes are simple paths, so h_ij is exactly the number of
        # incidence entries in the pair's row.
        self._pair_hops = np.diff(self._pair_links.indptr)
        self._pair_lengths = self._pair_links @ self.link_lengths
        self._pair_hops.setflags(write=False)
        self._pair_lengths.setflags(write=False)

    @staticmethod
    def _spliced_csr(
        parent: csr_matrix,
        affected: np.ndarray,
        num_tiles: int,
        col_remap: "np.ndarray | None",
        new_rows: np.ndarray,
        new_cols: np.ndarray,
        num_cols: int,
    ) -> csr_matrix:
        """Canonical CSR from kept parent rows plus re-swept replacement rows.

        All ``num_tiles`` pair rows of an unaffected source are consecutive in
        the source-major row order, so each run of unaffected sources is one
        contiguous block of the parent's index array — kept entries move with
        a handful of slice copies instead of per-entry gathers.  In-row order
        survives the move because the column remap is monotone over surviving
        columns (both link-key arrays are ascending).  Replacement rows arrive
        as unsorted entry lists and are the only part that pays a sort.  The
        result is bit-identical to :meth:`_canonical_csr` over the union of
        the entries.
        """
        num_rows = parent.shape[0]
        parent_counts = np.diff(parent.indptr)
        new_counts = np.bincount(new_rows, minlength=num_rows)
        keep_row = np.repeat(~affected, num_tiles)
        counts = np.where(keep_row, parent_counts, new_counts)
        indptr = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int64)
        unaffected = np.flatnonzero(~affected)
        if unaffected.size:
            breaks = np.flatnonzero(np.diff(unaffected) > 1)
            run_starts = np.r_[unaffected[0], unaffected[breaks + 1]]
            run_ends = np.r_[unaffected[breaks], unaffected[-1]] + 1
            parent_indptr = parent.indptr
            for start, end in zip(run_starts.tolist(), run_ends.tolist()):
                block = parent.indices[
                    parent_indptr[start * num_tiles] : parent_indptr[end * num_tiles]
                ]
                if col_remap is not None:
                    block = col_remap[block]
                indices[indptr[start * num_tiles] : indptr[end * num_tiles]] = block
        if new_rows.size:
            # One combined scalar key sorts the replacement entries into
            # canonical order; their within-row rank then places them.
            key = np.sort(new_rows * np.int64(num_cols) + new_cols)
            sorted_rows = key // num_cols
            starts = np.zeros(num_rows + 1, dtype=np.int64)
            np.cumsum(new_counts, out=starts[1:])
            rank = np.arange(sorted_rows.size, dtype=np.int64) - starts[sorted_rows]
            indices[indptr[sorted_rows] + rank] = key % num_cols
        if col_remap is not None:
            assert indices.size == 0 or indices.min() >= 0, (
                "route of an unaffected source crossed a removed link"
            )
        return csr_matrix(
            (np.ones(indices.size, dtype=np.float64), indices, indptr),
            shape=(num_rows, num_cols),
        )

    def _adopt_pair_tables(self, parent: "RoutingTables", affected: np.ndarray) -> None:
        """Repair the batch structures from a parent's, re-sweeping only affected rows.

        An unaffected source keeps its canonical routes, and those routes
        never traverse a removed link, so its incidence rows survive verbatim
        with the link columns remapped to the new link indexing; they are
        spliced row-block-wise around the re-swept rows of affected sources
        (:meth:`_spliced_csr`) instead of re-sorting every entry.  No-op
        (tables stay lazy) when the parent never built its batch structures.
        """
        if parent._pair_links is None:
            return
        num_tiles = self.num_tiles
        # Both key arrays are ascending, so surviving parent links map to new
        # indices with one searchsorted (no per-link Python lookups).
        if self.num_links:
            positions = np.searchsorted(self._link_keys, parent._link_keys)
            positions = np.minimum(positions, self.num_links - 1)
            old_to_new = np.where(self._link_keys[positions] == parent._link_keys, positions, -1)
        else:
            old_to_new = np.full(parent.num_links, -1, dtype=np.int64)
        link_row, link_col, tile_row, tile_col = self._pair_table_entries(
            np.flatnonzero(affected)
        )
        self._pair_links = self._spliced_csr(
            parent._pair_links, affected, num_tiles, old_to_new, link_row, link_col, self.num_links
        )
        self._pair_tiles = self._spliced_csr(
            parent._pair_tiles, affected, num_tiles, None, tile_row, tile_col, num_tiles
        )
        # Finalisation mirrors _assemble_pair_tables: hops from the row
        # pointer, lengths via the same sparse product (bit-identical because
        # per-row summation order equals the canonical column order).
        self._pair_hops = np.diff(self._pair_links.indptr)
        self._pair_lengths = self._pair_links @ self.link_lengths
        self._pair_hops.setflags(write=False)
        self._pair_lengths.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _path(self, src: int, dst: int) -> tuple[list[int], list[int]]:
        key = (src, dst)
        if key in self._path_cache:
            return self._path_cache[key]
        if src == dst:
            result = ([src], [])
            self._path_cache[key] = result
            return result
        if not self.is_reachable(src, dst):
            raise ValueError(f"no route from tile {src} to tile {dst}: network is disconnected")
        tiles = [dst]
        node = dst
        while node != src:
            node = int(self._predecessors[src, node])
            if node < 0:
                raise ValueError(f"no route from tile {src} to tile {dst}")
            tiles.append(node)
        tiles.reverse()
        links = [self.link_index[(a, b)] for a, b in zip(tiles[:-1], tiles[1:])]
        result = (tiles, links)
        self._path_cache[key] = result
        return result
