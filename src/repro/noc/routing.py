"""Deterministic shortest-path routing over a design's link placement.

All objectives of Section III need, for every communicating tile pair
``(i, j)``, the set of links (``p_ijk``) and routers (``r_ijk``) used by the
route.  We use deterministic minimal routing: paths minimise hop count, with
ties broken by physical path length and then lexicographically, so a design
always maps to the same routes (and therefore the same objective vector).

Route computation uses ``scipy.sparse.csgraph`` for the all-pairs search and
is cached per design by the objective evaluator.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.noc.design import NocDesign
from repro.noc.geometry import Grid3D
from repro.noc.links import link_length


class RoutingTables:
    """All-pairs deterministic shortest-path routes for one design.

    Parameters
    ----------
    design:
        The design whose link placement defines the network graph.
    grid:
        The tile grid (used for physical link lengths).

    Notes
    -----
    The edge weight used for the search is ``1 + epsilon * length`` so that
    hop count dominates and physical length breaks ties; ``epsilon`` is small
    enough that no sum of length terms can outweigh a single hop.
    """

    _LENGTH_EPSILON = 1e-3

    def __init__(self, design: NocDesign, grid: Grid3D):
        self.design = design
        self.grid = grid
        self.num_tiles = design.num_tiles
        self.link_index: dict[tuple[int, int], int] = {}
        lengths = []
        rows, cols, data = [], [], []
        for idx, link in enumerate(design.links):
            length = link_length(link, grid)
            lengths.append(length)
            self.link_index[(link.a, link.b)] = idx
            self.link_index[(link.b, link.a)] = idx
            weight = 1.0 + self._LENGTH_EPSILON * length
            rows.extend((link.a, link.b))
            cols.extend((link.b, link.a))
            data.extend((weight, weight))
        self.link_lengths = np.asarray(lengths, dtype=np.float64)
        graph = csr_matrix(
            (np.asarray(data), (np.asarray(rows), np.asarray(cols))),
            shape=(self.num_tiles, self.num_tiles),
        )
        dist, predecessors = shortest_path(
            graph, method="D", directed=False, return_predecessors=True
        )
        self._distance = dist
        self._predecessors = predecessors
        self._path_cache: dict[tuple[int, int], tuple[list[int], list[int]]] = {}

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def is_reachable(self, src: int, dst: int) -> bool:
        """True when a route exists from ``src`` to ``dst``."""
        return np.isfinite(self._distance[src, dst])

    def hops(self, src: int, dst: int) -> int:
        """Number of links traversed on the route (``h_ij``)."""
        if src == dst:
            return 0
        return len(self.path_links(src, dst))

    def path_length(self, src: int, dst: int) -> float:
        """Total physical length of the route (``d_ij``), in tile units."""
        links = self.path_links(src, dst)
        return float(self.link_lengths[links].sum()) if links else 0.0

    def path_tiles(self, src: int, dst: int) -> list[int]:
        """The ordered tiles (routers) visited by the route, endpoints included."""
        return self._path(src, dst)[0]

    def path_links(self, src: int, dst: int) -> list[int]:
        """The ordered link indices traversed by the route."""
        return self._path(src, dst)[1]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _path(self, src: int, dst: int) -> tuple[list[int], list[int]]:
        key = (src, dst)
        if key in self._path_cache:
            return self._path_cache[key]
        if src == dst:
            result = ([src], [])
            self._path_cache[key] = result
            return result
        if not self.is_reachable(src, dst):
            raise ValueError(f"no route from tile {src} to tile {dst}: network is disconnected")
        tiles = [dst]
        node = dst
        while node != src:
            node = int(self._predecessors[src, node])
            if node < 0:
                raise ValueError(f"no route from tile {src} to tile {dst}")
            tiles.append(node)
        tiles.reverse()
        links = [self.link_index[(a, b)] for a, b in zip(tiles[:-1], tiles[1:])]
        result = (tiles, links)
        self._path_cache[key] = result
        return result
