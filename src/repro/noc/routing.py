"""Deterministic shortest-path routing over a design's link placement.

All objectives of Section III need, for every communicating tile pair
``(i, j)``, the set of links (``p_ijk``) and routers (``r_ijk``) used by the
route.  We use deterministic minimal routing: paths minimise hop count, with
ties broken by physical path length and then lexicographically, so a design
always maps to the same routes (and therefore the same objective vector).

Route computation uses ``scipy.sparse.csgraph`` for the all-pairs search and
is cached per design by the objective evaluator.

Batch path tables
-----------------
Besides the per-pair query API, :class:`RoutingTables` exposes sparse batch
structures used by the vectorized objective engine in :mod:`repro.objectives`.
They are reconstructed lazily, in a single vectorized sweep over the
predecessor matrix (one iteration per path-length step, all pairs at once),
instead of walking predecessors pair-by-pair:

* :meth:`pair_link_incidence` — CSR matrix ``P`` of shape
  ``(num_tiles**2, num_links)``; ``P[p, k] = 1`` iff the route of the ordered
  tile pair ``p = src * num_tiles + dst`` traverses link ``k``.  Link
  utilisation for a pair-frequency vector ``f`` is then ``P.T @ f``.
* :meth:`pair_tile_incidence` — CSR matrix ``R`` of shape
  ``(num_tiles**2, num_tiles)``; ``R[p, t] = 1`` iff tile (router) ``t`` lies
  on the route of pair ``p``, endpoints included (a self pair visits only its
  own tile).  Router-energy sums are ``R @ ports``.
* :meth:`pair_hops` / :meth:`pair_lengths` — dense per-pair hop counts
  ``h_ij`` and physical route lengths ``d_ij``.
* :meth:`reachable_pairs` — boolean per-pair reachability in the same flat
  ``src * num_tiles + dst`` order.

Minimal routes are simple paths, so every incidence entry is 0/1 and
``pair_hops`` equals the per-row sums of ``P``.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.noc.design import NocDesign
from repro.noc.geometry import Grid3D
from repro.noc.links import link_lengths_array


class RoutingTables:
    """All-pairs deterministic shortest-path routes for one design.

    Parameters
    ----------
    design:
        The design whose link placement defines the network graph.
    grid:
        The tile grid (used for physical link lengths).

    Notes
    -----
    The edge weight used for the search is ``1 + epsilon * length`` so that
    hop count dominates and physical length breaks ties; ``epsilon`` is small
    enough that no sum of length terms can outweigh a single hop.
    """

    _LENGTH_EPSILON = 1e-3

    def __init__(self, design: NocDesign, grid: Grid3D):
        self.design = design
        self.grid = grid
        self.num_tiles = design.num_tiles
        num_links = design.num_links
        ends_a = np.fromiter((link.a for link in design.links), dtype=np.int64, count=num_links)
        ends_b = np.fromiter((link.b for link in design.links), dtype=np.int64, count=num_links)
        self.link_index: dict[tuple[int, int], int] = {}
        for idx, (a, b) in enumerate(zip(ends_a.tolist(), ends_b.tolist())):
            self.link_index[(a, b)] = idx
            self.link_index[(b, a)] = idx
        self.link_lengths = link_lengths_array(design.links, grid)
        weights = 1.0 + self._LENGTH_EPSILON * self.link_lengths
        graph = csr_matrix(
            (
                np.concatenate((weights, weights)),
                (np.concatenate((ends_a, ends_b)), np.concatenate((ends_b, ends_a))),
            ),
            shape=(self.num_tiles, self.num_tiles),
        )
        dist, predecessors = shortest_path(
            graph, method="D", directed=False, return_predecessors=True
        )
        self._distance = dist
        self._predecessors = predecessors
        self._path_cache: dict[tuple[int, int], tuple[list[int], list[int]]] = {}
        # Lazily built batch structures (see _build_pair_tables).
        self._pair_links: csr_matrix | None = None
        self._pair_tiles: csr_matrix | None = None
        self._pair_hops: np.ndarray | None = None
        self._pair_lengths: np.ndarray | None = None
        self._reachable: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def is_reachable(self, src: int, dst: int) -> bool:
        """True when a route exists from ``src`` to ``dst``."""
        return np.isfinite(self._distance[src, dst])

    def hops(self, src: int, dst: int) -> int:
        """Number of links traversed on the route (``h_ij``).

        Answers from the batch tables when they are already built; a single
        query on a fresh instance uses the cheap cached predecessor walk
        instead of triggering the whole-network sweep.
        """
        if src == dst:
            return 0
        if self._pair_hops is not None:
            if not self.is_reachable(src, dst):
                raise ValueError(
                    f"no route from tile {src} to tile {dst}: network is disconnected"
                )
            return int(self._pair_hops[src * self.num_tiles + dst])
        return len(self.path_links(src, dst))

    def path_length(self, src: int, dst: int) -> float:
        """Total physical length of the route (``d_ij``), in tile units."""
        if src == dst:
            return 0.0
        if self._pair_lengths is not None:
            if not self.is_reachable(src, dst):
                raise ValueError(
                    f"no route from tile {src} to tile {dst}: network is disconnected"
                )
            return float(self._pair_lengths[src * self.num_tiles + dst])
        links = self.path_links(src, dst)
        return float(self.link_lengths[links].sum()) if links else 0.0

    def path_tiles(self, src: int, dst: int) -> list[int]:
        """The ordered tiles (routers) visited by the route, endpoints included."""
        return self._path(src, dst)[0]

    def path_links(self, src: int, dst: int) -> list[int]:
        """The ordered link indices traversed by the route."""
        return self._path(src, dst)[1]

    # ------------------------------------------------------------------ #
    # Batch structures (vectorized objective engine)
    # ------------------------------------------------------------------ #
    def pair_index(self, src: int, dst: int) -> int:
        """Flat index of the ordered tile pair ``(src, dst)`` in the batch tables."""
        return src * self.num_tiles + dst

    def pair_link_incidence(self) -> csr_matrix:
        """Sparse 0/1 path-link incidence ``P`` of shape ``(num_tiles**2, num_links)``."""
        if self._pair_links is None:
            self._build_pair_tables()
        return self._pair_links

    def pair_tile_incidence(self) -> csr_matrix:
        """Sparse 0/1 path-router incidence ``R`` of shape ``(num_tiles**2, num_tiles)``."""
        if self._pair_tiles is None:
            self._build_pair_tables()
        return self._pair_tiles

    def pair_hops(self) -> np.ndarray:
        """Per-pair hop counts ``h_ij`` (0 for self pairs and unreachable pairs)."""
        if self._pair_hops is None:
            self._build_pair_tables()
        return self._pair_hops

    def pair_lengths(self) -> np.ndarray:
        """Per-pair physical route lengths ``d_ij`` (0 where no route exists)."""
        if self._pair_lengths is None:
            self._build_pair_tables()
        return self._pair_lengths

    def reachable_pairs(self) -> np.ndarray:
        """Boolean per-pair reachability, flattened in ``src * num_tiles + dst`` order."""
        if self._reachable is None:
            self._reachable = np.isfinite(self._distance).ravel()
            self._reachable.setflags(write=False)
        return self._reachable

    def reachable_matrix(self) -> np.ndarray:
        """Boolean tile-to-tile reachability matrix."""
        return self.reachable_pairs().reshape(self.num_tiles, self.num_tiles)

    def _build_pair_tables(self) -> None:
        """Reconstruct every route at once from the predecessor matrix.

        Walks all destination-to-source chains simultaneously: iteration ``s``
        advances every still-active pair one predecessor step, emitting the
        traversed ``(prev, cur)`` edge and the visited router.  The loop runs
        ``max_ij h_ij`` times (the network diameter), with all per-pair work
        vectorized.
        """
        num_tiles = self.num_tiles
        num_links = self.design.num_links
        num_pairs = num_tiles * num_tiles
        # Dense edge -> link-index lookup (num_tiles is at most a few dozen).
        edge_link = np.full((num_tiles, num_tiles), -1, dtype=np.int64)
        for (a, b), idx in self.link_index.items():
            edge_link[a, b] = idx
        src = np.repeat(np.arange(num_tiles), num_tiles)
        dst = np.tile(np.arange(num_tiles), num_tiles)
        reachable = np.isfinite(self._distance).ravel()

        tile_rows = [np.nonzero(reachable)[0]]
        tile_cols = [dst[reachable]]
        link_rows: list[np.ndarray] = []
        link_cols: list[np.ndarray] = []
        cur = dst.copy()
        active = np.nonzero(reachable & (src != dst))[0]
        while active.size:
            prev = self._predecessors[src[active], cur[active]].astype(np.int64)
            link_rows.append(active)
            link_cols.append(edge_link[prev, cur[active]])
            tile_rows.append(active)
            tile_cols.append(prev)
            cur[active] = prev
            active = active[prev != src[active]]

        link_row = np.concatenate(link_rows) if link_rows else np.empty(0, dtype=np.int64)
        link_col = np.concatenate(link_cols) if link_cols else np.empty(0, dtype=np.int64)
        self._pair_links = csr_matrix(
            (np.ones(link_row.size, dtype=np.float64), (link_row, link_col)),
            shape=(num_pairs, num_links),
        )
        tile_row = np.concatenate(tile_rows)
        tile_col = np.concatenate(tile_cols)
        self._pair_tiles = csr_matrix(
            (np.ones(tile_row.size, dtype=np.float64), (tile_row, tile_col)),
            shape=(num_pairs, num_tiles),
        )
        hops = np.zeros(num_pairs, dtype=np.int64)
        np.add.at(hops, link_row, 1)
        self._pair_hops = hops
        self._pair_lengths = self._pair_links @ self.link_lengths
        self._pair_hops.setflags(write=False)
        self._pair_lengths.setflags(write=False)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _path(self, src: int, dst: int) -> tuple[list[int], list[int]]:
        key = (src, dst)
        if key in self._path_cache:
            return self._path_cache[key]
        if src == dst:
            result = ([src], [])
            self._path_cache[key] = result
            return result
        if not self.is_reachable(src, dst):
            raise ValueError(f"no route from tile {src} to tile {dst}: network is disconnected")
        tiles = [dst]
        node = dst
        while node != src:
            node = int(self._predecessors[src, node])
            if node < 0:
                raise ValueError(f"no route from tile {src} to tile {dst}")
            tiles.append(node)
        tiles.reverse()
        links = [self.link_index[(a, b)] for a, b in zip(tiles[:-1], tiles[1:])]
        result = (tiles, links)
        self._path_cache[key] = result
        return result
