"""Reference 3D-mesh topology.

The paper allocates "the same number of planar links as an equivalent 3D
mesh"; the mesh is therefore both the natural starting topology and a useful
baseline design.  :func:`mesh_links` produces the canonical mesh link set and
:func:`mesh_design` a full design with a deterministic type-aware placement.
"""

from __future__ import annotations

from repro.noc.design import NocDesign
from repro.noc.links import Link
from repro.noc.platform import PlatformConfig
from repro.utils.rng import RngLike, ensure_rng


def mesh_links(config: PlatformConfig) -> tuple[Link, ...]:
    """Link set of the full 3D mesh (NSEW planar links + all vertical links).

    Raises ``ValueError`` if the platform's link budget cannot accommodate the
    full mesh (the paper's budgets are exactly the mesh counts).
    """
    grid = config.grid
    links: set[Link] = set()
    for tile_id in grid.tiles():
        for neighbor in grid.planar_neighbors(tile_id):
            links.add(Link.make(tile_id, neighbor))
        for neighbor in grid.vertical_neighbors(tile_id):
            links.add(Link.make(tile_id, neighbor))
    num_planar = sum(1 for l in links if grid.coord(l.a).same_layer(grid.coord(l.b)))
    num_vertical = len(links) - num_planar
    if num_planar > config.num_planar_links:
        raise ValueError(
            f"platform planar budget {config.num_planar_links} is smaller than the "
            f"mesh requirement {num_planar}"
        )
    if num_vertical > config.num_vertical_links:
        raise ValueError(
            f"platform vertical budget {config.num_vertical_links} is smaller than the "
            f"mesh requirement {num_vertical}"
        )
    return tuple(sorted(links))


def mesh_placement(config: PlatformConfig, rng: RngLike = None) -> tuple[int, ...]:
    """A deterministic (or lightly randomised) placement for the mesh design.

    LLCs are assigned to edge tiles spread across layers; CPUs are grouped on
    the layer closest to the sink (a common thermal-aware heuristic); GPUs
    fill the remaining tiles.
    """
    rng = ensure_rng(rng)
    grid = config.grid
    edge = grid.edge_tiles()
    llc_tiles = edge[:: max(1, len(edge) // config.num_llcs)][: config.num_llcs]
    if len(llc_tiles) < config.num_llcs:
        extra = [t for t in edge if t not in llc_tiles]
        llc_tiles = llc_tiles + extra[: config.num_llcs - len(llc_tiles)]
    llc_tiles_set = set(llc_tiles)
    other_tiles = [t for t in range(config.num_tiles) if t not in llc_tiles_set]
    placement = [0] * config.num_tiles
    for tile_id, pe_id in zip(sorted(llc_tiles_set), config.llc_ids):
        placement[tile_id] = int(pe_id)
    cpu_then_gpu = list(config.cpu_ids) + list(config.gpu_ids)
    for tile_id, pe_id in zip(other_tiles, cpu_then_gpu):
        placement[tile_id] = int(pe_id)
    return tuple(placement)


def mesh_design(config: PlatformConfig, rng: RngLike = None) -> NocDesign:
    """Full-mesh design with a deterministic type-aware placement.

    When the link budget exceeds the mesh requirement the remaining planar
    budget is filled with short express links chosen deterministically.
    """
    links = set(mesh_links(config))
    design = NocDesign(placement=mesh_placement(config, rng), links=tuple(sorted(links)))
    grid = config.grid
    planar_now = sum(1 for l in links if grid.coord(l.a).same_layer(grid.coord(l.b)))
    missing = config.num_planar_links - planar_now
    if missing > 0:
        from repro.noc.links import candidate_planar_links

        degrees = design.degrees()
        for link in candidate_planar_links(config):
            if missing == 0:
                break
            if link in links:
                continue
            if degrees[link.a] >= config.max_router_degree or degrees[link.b] >= config.max_router_degree:
                continue
            links.add(link)
            degrees[link.a] += 1
            degrees[link.b] += 1
            missing -= 1
        design = NocDesign(placement=design.placement, links=tuple(sorted(links)))
    return design
