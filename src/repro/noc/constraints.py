"""Constraint checking, feasible-design generation and repair.

Section III of the paper defines the feasibility constraints of the design
problem:

1. every tile must be able to reach every other tile (connectivity);
2. the total number of links is fixed (planar and vertical budgets);
3. planar links are at most ``max_planar_length`` units long and every router
   has at most ``max_router_degree`` links attached;
4. at most one vertical link exists between vertically adjacent tiles (links
   between non-adjacent layers or diagonal links are not allowed);
5. LLC tiles must sit on the perimeter of their die (memory-controller
   interfacing).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.noc.design import NocDesign
from repro.noc.links import (
    Link,
    LinkKind,
    candidate_planar_links,
    candidate_vertical_links,
    is_feasible_link,
    link_kind,
)
from repro.noc.platform import PEType, PlatformConfig
from repro.utils.rng import RngLike, ensure_rng

#: Violation severities.  ``fatal`` marks structural-identity breakage (wrong
#: tile count, placement not a permutation) that no link/placement operator
#: can repair; every other constraint is a repairable ``error``.
SEVERITY_FATAL = "fatal"
SEVERITY_ERROR = "error"

_SEVERITY_RANK = {SEVERITY_FATAL: 0, SEVERITY_ERROR: 1}


def _canonical_value(value: Any) -> Any:
    """Normalise a detail value into plain, hashable, JSON-friendly data.

    Links become ``(a, b)`` endpoint tuples, numpy scalars become Python ints
    and floats, and nested sequences are canonicalised recursively so two
    reports built from equal designs compare (and serialise) identically.
    """
    if isinstance(value, Link):
        return (int(value.a), int(value.b))
    if isinstance(value, (np.integer, np.bool_)):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(item) for item in value)
    return value


def violation_details(**values: Any) -> tuple[tuple[str, Any], ...]:
    """Canonical machine-readable detail pairs, sorted by key.

    Details are stored as a sorted tuple of ``(key, value)`` pairs rather
    than a dict so violations stay frozen/hashable and two reports over the
    same design are structurally identical (REP003: no dict/set iteration
    order leaks into serialised output).
    """
    return tuple(sorted((key, _canonical_value(value)) for key, value in values.items()))


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(item) for item in value]
    return value


@dataclass(frozen=True)
class ConstraintViolation:
    """A single constraint violation.

    ``code`` is a stable machine-readable identifier, ``severity`` is one of
    :data:`SEVERITY_FATAL` / :data:`SEVERITY_ERROR`, and ``details`` carries
    the offending tiles/links/budget deltas as canonical ``(key, value)``
    pairs (see :func:`violation_details`) so the directed repair walk can act
    on a violation without re-parsing its message.
    """

    code: str
    message: str
    severity: str = SEVERITY_ERROR
    details: tuple[tuple[str, Any], ...] = ()

    def detail(self, key: str, default: Any = None) -> Any:
        """Look up one detail value by key."""
        for name, value in self.details:
            if name == key:
                return value
        return default

    def to_dict(self) -> dict[str, Any]:
        """JSON representation (details become a key-sorted object)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "details": {key: _jsonable(value) for key, value in self.details},
        }

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


def _violation_sort_key(violation: ConstraintViolation) -> tuple:
    return (
        _SEVERITY_RANK.get(violation.severity, len(_SEVERITY_RANK)),
        violation.code,
        violation.message,
    )


@dataclass(frozen=True)
class ViolationReport:
    """Structured feasibility verdict for one design on one platform.

    Violations are held in deterministic order (severity rank, then code,
    then message), so the report of a given design is a pure function of the
    design and platform: building it twice yields byte-identical
    :meth:`to_json` output.
    """

    platform: str
    num_tiles: int
    num_links: int
    violations: tuple[ConstraintViolation, ...]

    @property
    def feasible(self) -> bool:
        """True when the design satisfies every constraint."""
        return not self.violations

    @property
    def fatal(self) -> bool:
        """True when any violation is unrepairable (structural identity broken)."""
        return any(v.severity == SEVERITY_FATAL for v in self.violations)

    @property
    def codes(self) -> tuple[str, ...]:
        """Violation codes in report order (duplicates preserved)."""
        return tuple(v.code for v in self.violations)

    def by_code(self, code: str) -> tuple[ConstraintViolation, ...]:
        """All violations carrying ``code``, in report order."""
        return tuple(v for v in self.violations if v.code == code)

    def to_dict(self) -> dict[str, Any]:
        """JSON representation of the full report."""
        return {
            "platform": self.platform,
            "num_tiles": self.num_tiles,
            "num_links": self.num_links,
            "feasible": self.feasible,
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self) -> str:
        """Canonical compact JSON encoding (byte-identical for equal reports)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def format(self) -> str:
        """Multi-line human-readable rendering of the report."""
        header = (
            f"design on {self.platform}: {self.num_tiles} tiles, {self.num_links} links — "
            + ("feasible" if self.feasible else f"{len(self.violations)} violation(s)")
        )
        lines = [header]
        for violation in self.violations:
            lines.append(f"  {violation.severity:<5} [{violation.code}] {violation.message}")
            for key, value in violation.details:
                lines.append(f"        {key} = {_jsonable(value)}")
        return "\n".join(lines)


class InfeasibleDesignError(ValueError):
    """Raised by :meth:`ConstraintChecker.check` for infeasible designs.

    Subclasses ``ValueError`` and keeps the historical
    ``"infeasible design: ..."`` message prefix, so callers that matched on
    the string keep working; new callers should catch this type and read the
    structured :attr:`report` instead.
    """

    def __init__(self, report: ViolationReport):
        self.report = report
        details = "; ".join(str(v) for v in report.violations)
        super().__init__(f"infeasible design: {details}")


def is_connected(design: NocDesign) -> bool:
    """True when the link placement connects every tile to every other tile."""
    if design.num_tiles == 0:
        return True
    adjacency = design.adjacency()
    seen = {0}
    stack = [0]
    while stack:
        node = stack.pop()
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                stack.append(neighbor)
    return len(seen) == design.num_tiles


class ConstraintChecker:
    """Validate designs against the platform constraints of Section III."""

    def __init__(self, config: PlatformConfig):
        self.config = config
        self.grid = config.grid

    def violations(self, design: NocDesign) -> list[ConstraintViolation]:
        """Return every constraint violation of ``design`` (empty list == feasible).

        Violations are returned in the deterministic report order (severity
        rank, code, message) — see :meth:`report`.
        """
        return list(self.report(design).violations)

    def report(self, design: NocDesign) -> ViolationReport:
        """Structured feasibility report for ``design`` (pure and deterministic)."""
        found: list[ConstraintViolation] = []
        found.extend(self._placement_violations(design))
        found.extend(self._link_violations(design))
        if not is_connected(design):
            components = _components(design)
            main = components[0] if components else []
            stranded = tuple(
                tile for component in components[1:] for tile in component
            )
            found.append(
                ConstraintViolation(
                    "connectivity",
                    "the link placement is not a connected network",
                    details=violation_details(
                        num_components=len(components),
                        component_sizes=tuple(len(c) for c in components),
                        main_component_size=len(main),
                        stranded_tiles=tuple(sorted(stranded)),
                    ),
                )
            )
        return ViolationReport(
            platform=self.config.name,
            num_tiles=design.num_tiles,
            num_links=design.num_links,
            violations=tuple(sorted(found, key=_violation_sort_key)),
        )

    def is_feasible(self, design: NocDesign) -> bool:
        """True when the design satisfies every constraint."""
        return not self.report(design).violations

    def check(self, design: NocDesign) -> None:
        """Raise :class:`InfeasibleDesignError` if the design is infeasible.

        The exception subclasses ``ValueError`` (the historical contract) and
        carries the structured :class:`ViolationReport` as ``.report``.
        """
        report = self.report(design)
        if report.violations:
            raise InfeasibleDesignError(report)

    # ------------------------------------------------------------------ #
    # Individual checks
    # ------------------------------------------------------------------ #
    def _placement_violations(self, design: NocDesign) -> list[ConstraintViolation]:
        config = self.config
        found: list[ConstraintViolation] = []
        if design.num_tiles != config.num_tiles:
            found.append(
                ConstraintViolation(
                    "placement-size",
                    f"placement has {design.num_tiles} tiles, platform has {config.num_tiles}",
                    severity=SEVERITY_FATAL,
                    details=violation_details(
                        num_tiles=design.num_tiles, expected=config.num_tiles
                    ),
                )
            )
            return found
        placement = design.placement_array()
        if sorted(placement.tolist()) != list(range(config.num_tiles)):
            ids = [int(p) for p in placement]
            counts: dict[int, int] = {}
            for pe_id in ids:
                counts[pe_id] = counts.get(pe_id, 0) + 1
            duplicates = tuple(sorted(pe for pe, n in counts.items() if n > 1))
            missing = tuple(sorted(set(range(config.num_tiles)) - set(ids)))
            found.append(
                ConstraintViolation(
                    "placement-permutation",
                    "placement is not a permutation of the logical PE ids",
                    severity=SEVERITY_FATAL,
                    details=violation_details(duplicate_pes=duplicates, missing_pes=missing),
                )
            )
            return found
        for tile_id, pe_id in enumerate(placement):
            if config.pe_type(int(pe_id)) is PEType.LLC and not self.grid.is_edge_tile(tile_id):
                found.append(
                    ConstraintViolation(
                        "llc-edge",
                        f"LLC PE {int(pe_id)} is placed on interior tile {tile_id}",
                        details=violation_details(tile=tile_id, pe=int(pe_id)),
                    )
                )
        return found

    def _link_violations(self, design: NocDesign) -> list[ConstraintViolation]:
        config = self.config
        found: list[ConstraintViolation] = []
        if len(set(design.links)) != len(design.links):
            link_counts: dict[Link, int] = {}
            for link in design.links:
                link_counts[link] = link_counts.get(link, 0) + 1
            duplicated = tuple(sorted(link for link, n in link_counts.items() if n > 1))
            found.append(
                ConstraintViolation(
                    "duplicate-link",
                    "duplicate links present",
                    details=violation_details(links=duplicated),
                )
            )
        planar = 0
        vertical = 0
        for link in design.links:
            if link.a >= config.num_tiles or link.b >= config.num_tiles:
                found.append(
                    ConstraintViolation(
                        "link-range",
                        f"{link} references a tile outside the grid",
                        details=violation_details(link=link, num_tiles=config.num_tiles),
                    )
                )
                continue
            if not is_feasible_link(link, config):
                found.append(
                    ConstraintViolation(
                        "link-shape",
                        f"{link} violates the planar-length/vertical-adjacency rules",
                        details=violation_details(
                            link=link, max_planar_length=config.max_planar_length
                        ),
                    )
                )
                continue
            if link_kind(link, self.grid) is LinkKind.PLANAR:
                planar += 1
            else:
                vertical += 1
        if planar != config.num_planar_links:
            found.append(
                ConstraintViolation(
                    "planar-budget",
                    f"design uses {planar} planar links, budget is {config.num_planar_links}",
                    details=violation_details(
                        used=planar,
                        budget=config.num_planar_links,
                        delta=planar - config.num_planar_links,
                    ),
                )
            )
        if vertical != config.num_vertical_links:
            found.append(
                ConstraintViolation(
                    "vertical-budget",
                    f"design uses {vertical} vertical links, budget is {config.num_vertical_links}",
                    details=violation_details(
                        used=vertical,
                        budget=config.num_vertical_links,
                        delta=vertical - config.num_vertical_links,
                    ),
                )
            )
        degrees = design.degrees()
        for tile_id in np.flatnonzero(degrees > config.max_router_degree):
            found.append(
                ConstraintViolation(
                    "router-degree",
                    f"router at tile {int(tile_id)} has degree {int(degrees[tile_id])} "
                    f"(max {config.max_router_degree})",
                    details=violation_details(
                        tile=int(tile_id),
                        degree=int(degrees[tile_id]),
                        max_degree=config.max_router_degree,
                    ),
                )
            )
        return found


# ---------------------------------------------------------------------- #
# Feasible design generation
# ---------------------------------------------------------------------- #
def random_placement(config: PlatformConfig, rng: RngLike = None) -> tuple[int, ...]:
    """Generate a random PE placement with LLCs restricted to edge tiles."""
    rng = ensure_rng(rng)
    grid = config.grid
    edge_tiles = grid.edge_tiles()
    llc_tiles = rng.choice(edge_tiles, size=config.num_llcs, replace=False)
    llc_tiles_set = set(int(t) for t in llc_tiles)
    other_tiles = [t for t in range(config.num_tiles) if t not in llc_tiles_set]
    other_pes = np.concatenate([config.cpu_ids, config.gpu_ids])
    rng.shuffle(other_pes)
    placement = np.empty(config.num_tiles, dtype=np.int64)
    llc_pes = config.llc_ids.copy()
    rng.shuffle(llc_pes)
    for tile_id, pe_id in zip(sorted(llc_tiles_set), llc_pes):
        placement[tile_id] = pe_id
    for tile_id, pe_id in zip(other_tiles, other_pes):
        placement[tile_id] = pe_id
    return tuple(int(p) for p in placement)


def random_link_placement(config: PlatformConfig, rng: RngLike = None) -> tuple[Link, ...]:
    """Generate a random feasible link placement.

    The generator first grows a random spanning tree over all tiles (which
    guarantees connectivity), then fills the remaining planar/vertical budgets
    with random unused candidate links, always respecting the router-degree
    cap.
    """
    rng = ensure_rng(rng)
    grid = config.grid
    planar_candidates = candidate_planar_links(config)
    vertical_candidates = candidate_vertical_links(config)

    by_endpoint: dict[int, list[Link]] = {t: [] for t in range(config.num_tiles)}
    for link in planar_candidates + vertical_candidates:
        by_endpoint[link.a].append(link)
        by_endpoint[link.b].append(link)

    # Degree caps can occasionally starve the budget fill; retry with a
    # different spanning tree rather than returning an infeasible design.
    # The retry is a loop (not recursion) so tightly-budgeted big platforms
    # cannot overflow the interpreter stack before a feasible draw lands.
    while True:
        degrees = np.zeros(config.num_tiles, dtype=np.int64)
        chosen: set[Link] = set()
        planar_used = 0
        vertical_used = 0

        # -- random spanning tree (randomised Prim) --------------------- #
        root = int(rng.integers(config.num_tiles))
        in_tree = {root}
        frontier: list[Link] = list(by_endpoint[root])
        while len(in_tree) < config.num_tiles:
            if not frontier:
                raise RuntimeError("candidate link set cannot connect all tiles")
            idx = int(rng.integers(len(frontier)))
            link = frontier.pop(idx)
            inside_a, inside_b = link.a in in_tree, link.b in in_tree
            if inside_a == inside_b:
                continue
            if degrees[link.a] >= config.max_router_degree or degrees[link.b] >= config.max_router_degree:
                continue
            kind = link_kind(link, grid)
            if kind is LinkKind.PLANAR and planar_used >= config.num_planar_links:
                continue
            if kind is LinkKind.VERTICAL and vertical_used >= config.num_vertical_links:
                continue
            chosen.add(link)
            degrees[link.a] += 1
            degrees[link.b] += 1
            if kind is LinkKind.PLANAR:
                planar_used += 1
            else:
                vertical_used += 1
            new_node = link.b if inside_a else link.a
            in_tree.add(new_node)
            frontier.extend(by_endpoint[new_node])

        # -- fill the remaining budgets ---------------------------------- #
        def fill(candidates: list[Link], remaining: int) -> int:
            order = rng.permutation(len(candidates))
            added = 0
            for idx in order:
                if added >= remaining:
                    break
                link = candidates[int(idx)]
                if link in chosen:
                    continue
                if degrees[link.a] >= config.max_router_degree or degrees[link.b] >= config.max_router_degree:
                    continue
                chosen.add(link)
                degrees[link.a] += 1
                degrees[link.b] += 1
                added += 1
            return added

        planar_used += fill(planar_candidates, config.num_planar_links - planar_used)
        vertical_used += fill(vertical_candidates, config.num_vertical_links - vertical_used)

        if planar_used == config.num_planar_links and vertical_used == config.num_vertical_links:
            return tuple(sorted(chosen))


def random_design(config: PlatformConfig, rng: RngLike = None) -> NocDesign:
    """Generate a random design satisfying every constraint of Section III."""
    rng = ensure_rng(rng)
    design = NocDesign(
        placement=random_placement(config, rng),
        links=random_link_placement(config, rng),
    )
    return design


def random_designs(config: PlatformConfig, count: int, rng: RngLike = None) -> list[NocDesign]:
    """Generate ``count`` independent random feasible designs."""
    rng = ensure_rng(rng)
    return [random_design(config, rng) for _ in range(count)]


def repair_links(
    design: NocDesign, config: PlatformConfig, rng: RngLike = None
) -> NocDesign:
    """Repair a design whose link placement violates budgets/degree/connectivity.

    The repair keeps as many of the existing links as possible: infeasible
    links are dropped, budget overshoot is trimmed at random, missing links
    are added from the candidate pools, and connectivity is restored by
    swapping in bridging links.  The placement is left untouched.
    """
    rng = ensure_rng(rng)
    grid = config.grid
    checker = ConstraintChecker(config)

    kept: list[Link] = [link for link in sorted(set(design.links)) if is_feasible_link(link, config)]
    planar = [link for link in kept if link_kind(link, grid) is LinkKind.PLANAR]
    vertical = [link for link in kept if link_kind(link, grid) is LinkKind.VERTICAL]

    def trim(links: list[Link], budget: int) -> list[Link]:
        if len(links) <= budget:
            return links
        order = rng.permutation(len(links))
        return [links[int(i)] for i in order[:budget]]

    planar = trim(planar, config.num_planar_links)
    vertical = trim(vertical, config.num_vertical_links)

    candidate = NocDesign(placement=design.placement, links=tuple(planar + vertical))
    candidate = _enforce_degree_cap(candidate, config, rng)
    candidate = _fill_budgets(candidate, config, rng)
    candidate = _restore_connectivity(candidate, config, rng)

    if not checker.is_feasible(candidate):
        # Fall back to a fresh random link placement; this keeps the repair
        # total-function even for pathological inputs.
        candidate = NocDesign(
            placement=design.placement, links=random_link_placement(config, rng)
        )
    return candidate


def _enforce_degree_cap(design: NocDesign, config: PlatformConfig, rng) -> NocDesign:
    links = list(design.links)
    degrees = design.degrees()
    over = [int(t) for t in np.flatnonzero(degrees > config.max_router_degree)]
    if not over:
        return design
    rng.shuffle(links)
    kept: list[Link] = []
    counts = np.zeros(config.num_tiles, dtype=np.int64)
    for link in links:
        if counts[link.a] >= config.max_router_degree or counts[link.b] >= config.max_router_degree:
            continue
        kept.append(link)
        counts[link.a] += 1
        counts[link.b] += 1
    return NocDesign(placement=design.placement, links=tuple(kept))


def _fill_budgets(design: NocDesign, config: PlatformConfig, rng) -> NocDesign:
    grid = config.grid
    links = set(design.links)
    degrees = design.degrees()
    partition = design.links_by_kind(grid)
    needs = {
        LinkKind.PLANAR: config.num_planar_links - len(partition[LinkKind.PLANAR]),
        LinkKind.VERTICAL: config.num_vertical_links - len(partition[LinkKind.VERTICAL]),
    }
    pools = {
        LinkKind.PLANAR: candidate_planar_links(config),
        LinkKind.VERTICAL: candidate_vertical_links(config),
    }
    for kind, needed in needs.items():
        if needed <= 0:
            continue
        pool = pools[kind]
        order = rng.permutation(len(pool))
        added = 0
        for idx in order:
            if added >= needed:
                break
            link = pool[int(idx)]
            if link in links:
                continue
            if degrees[link.a] >= config.max_router_degree or degrees[link.b] >= config.max_router_degree:
                continue
            links.add(link)
            degrees[link.a] += 1
            degrees[link.b] += 1
            added += 1
    return NocDesign(placement=design.placement, links=tuple(sorted(links)))


def _restore_connectivity(design: NocDesign, config: PlatformConfig, rng) -> NocDesign:
    """Swap links until the network is connected, preserving per-kind budgets."""
    grid = config.grid
    max_attempts = 4 * config.num_links
    current = design
    attempts = 0
    while not is_connected(current) and attempts < max_attempts:
        attempts += 1
        components = _components(current)
        # Pick the component containing tile 0 and try to bridge it to any other.
        main = components[0]
        others = [tile for comp in components[1:] for tile in comp]
        bridge = _find_bridge(main, others, current, config, rng)
        if bridge is None:
            break
        kind = link_kind(bridge, grid)
        removable = [
            link
            for link in current.links
            if link_kind(link, grid) is kind and _is_redundant(link, current)
        ]
        if not removable:
            removable = [link for link in current.links if link_kind(link, grid) is kind]
        victim = removable[int(rng.integers(len(removable)))]
        links = set(current.links)
        links.discard(victim)
        links.add(bridge)
        current = NocDesign(placement=current.placement, links=tuple(sorted(links)))
    return current


def _components(design: NocDesign) -> list[list[int]]:
    adjacency = design.adjacency()
    seen: set[int] = set()
    components: list[list[int]] = []
    for start in range(design.num_tiles):
        if start in seen:
            continue
        stack = [start]
        component = []
        seen.add(start)
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbor in adjacency[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    stack.append(neighbor)
        components.append(sorted(component))
    return components


def _find_bridge(main: Iterable[int], others: Iterable[int], design: NocDesign, config: PlatformConfig, rng):
    degrees = design.degrees()
    main_list = list(main)
    other_list = list(others)
    rng.shuffle(main_list)
    rng.shuffle(other_list)
    for a in main_list:
        for b in other_list:
            link = Link.make(a, b)
            if not is_feasible_link(link, config):
                continue
            if degrees[a] >= config.max_router_degree or degrees[b] >= config.max_router_degree:
                continue
            return link
    return None


def _is_redundant(link: Link, design: NocDesign) -> bool:
    """True when removing ``link`` keeps the network connected."""
    remaining = tuple(l for l in design.links if l != link)
    trimmed = NocDesign(placement=design.placement, links=remaining)
    return is_connected(trimmed)
