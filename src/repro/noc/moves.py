"""Neighbourhood move operators used by local search and mutation.

A *move* produces a new feasible design that differs from its parent by a
small structural change.  The moves mirror those used by MOO-STAGE / MOOS and
the MOELA local search:

* ``swap_pe`` — exchange the PEs of two tiles (respecting the LLC edge rule);
* ``rewire_link`` — remove one link and add another of the same kind
  (respecting budgets, length, degree and connectivity);
* ``swap_llc`` — exchange an LLC with a non-LLC PE on another edge tile, which
  specifically perturbs memory-controller placement.

When the generator is given the application workload it additionally offers
*traffic-aware* moves, which the ML-guided local-search literature for this
problem relies on to make single-design perturbations productive:

* ``pull_communicating_pair`` — move one endpoint of a heavily communicating
  PE pair next to the other endpoint;
* ``rewire_link_toward_traffic`` — replace a link with a direct link between
  the tiles of a heavily communicating pair.

Each generator yields feasible designs only; infeasible candidates are
silently skipped.

Every returned design is annotated with a structured
:class:`~repro.noc.design.MoveDelta` (move kind, links added/removed, tiles
swapped, parent link set) so downstream consumers — most importantly the
route cache of :class:`repro.noc.routing_engine.RoutingEngine` — can tell
placement-only moves (full routing reuse) from link-mutating moves
(incremental routing repair) without diffing the encodings.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.noc.constraints import ConstraintChecker, is_connected
from repro.noc.design import MoveDelta, NocDesign, annotate_move
from repro.noc.links import (
    Link,
    LinkKind,
    candidate_planar_links,
    candidate_vertical_links,
    is_feasible_link,
    link_kind,
)
from repro.noc.platform import PEType, PlatformConfig
from repro.utils.rng import RngLike, ensure_rng


class MoveGenerator:
    """Generates random feasible neighbour designs for a platform.

    Parameters
    ----------
    config:
        Platform configuration (constraints and candidate link pools).
    workload:
        Optional application workload; when given, traffic-aware moves are
        enabled and sampled alongside the blind structural moves.
    """

    def __init__(self, config: PlatformConfig, workload=None):
        self.config = config
        self.grid = config.grid
        self.checker = ConstraintChecker(config)
        self._planar_pool = candidate_planar_links(config)
        self._vertical_pool = candidate_vertical_links(config)
        self.workload = workload
        self._pair_sources: np.ndarray | None = None
        self._pair_targets: np.ndarray | None = None
        self._pair_probabilities: np.ndarray | None = None
        if workload is not None:
            self._prepare_traffic_pairs(workload)

    def _prepare_traffic_pairs(self, workload) -> None:
        traffic = np.asarray(workload.traffic, dtype=np.float64)
        symmetric = traffic + traffic.T
        sources, targets = np.nonzero(np.triu(symmetric, k=1))
        weights = symmetric[sources, targets]
        if len(weights) == 0 or weights.sum() <= 0:
            return
        self._pair_sources = sources
        self._pair_targets = targets
        self._pair_probabilities = weights / weights.sum()

    def _sample_traffic_pair(self, rng) -> "tuple[int, int] | None":
        if self._pair_probabilities is None:
            return None
        index = int(rng.choice(len(self._pair_probabilities), p=self._pair_probabilities))
        return int(self._pair_sources[index]), int(self._pair_targets[index])

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def random_neighbor(self, design: NocDesign, rng: RngLike = None) -> NocDesign:
        """Return one random feasible neighbour of ``design``.

        The move kind is chosen uniformly among the applicable kinds (with
        traffic-aware moves included when a workload is attached); the method
        retries internally and, as a last resort, returns the original design
        (which is always feasible).
        """
        rng = ensure_rng(rng)
        moves = [self.swap_pe, self.rewire_link, self.swap_llc]
        if self._pair_probabilities is not None:
            moves += [
                self.pull_communicating_pair,
                self.pull_communicating_pair,
                self.rewire_link_toward_traffic,
            ]
        for _ in range(16):
            move = moves[int(rng.integers(len(moves)))]
            candidate = move(design, rng)
            if candidate is not None:
                return candidate
        return design

    def neighbors(self, design: NocDesign, count: int, rng: RngLike = None) -> list[NocDesign]:
        """Return ``count`` random feasible neighbours (possibly with repeats)."""
        rng = ensure_rng(rng)
        return [self.random_neighbor(design, rng) for _ in range(count)]

    def iter_neighbors(self, design: NocDesign, rng: RngLike = None) -> Iterator[NocDesign]:
        """Yield an endless stream of random feasible neighbours."""
        rng = ensure_rng(rng)
        while True:
            yield self.random_neighbor(design, rng)

    # ------------------------------------------------------------------ #
    # Individual moves
    # ------------------------------------------------------------------ #
    def swap_pe(self, design: NocDesign, rng: RngLike = None) -> NocDesign | None:
        """Swap the PEs hosted by two tiles, keeping LLCs on edge tiles."""
        rng = ensure_rng(rng)
        config = self.config
        for _ in range(16):
            t1, t2 = rng.choice(config.num_tiles, size=2, replace=False)
            t1, t2 = int(t1), int(t2)
            pe1, pe2 = design.pe_at(t1), design.pe_at(t2)
            if pe1 == pe2:
                continue
            type1, type2 = config.pe_type(pe1), config.pe_type(pe2)
            if type1 is type2:
                # Swapping two PEs of the same type yields an equivalent design
                # under a symmetric traffic model only if their traffic rows are
                # equal; they generally are not, so the swap is still useful.
                pass
            if type1 is PEType.LLC and not self.grid.is_edge_tile(t2):
                continue
            if type2 is PEType.LLC and not self.grid.is_edge_tile(t1):
                continue
            placement = list(design.placement)
            placement[t1], placement[t2] = placement[t2], placement[t1]
            return annotate_move(
                NocDesign(placement=tuple(placement), links=design.links),
                MoveDelta(kind="swap_pe", tiles_swapped=(t1, t2), parent_links=design.links),
            )
        return None

    def swap_llc(self, design: NocDesign, rng: RngLike = None) -> NocDesign | None:
        """Swap one LLC with a non-LLC PE hosted on another edge tile."""
        rng = ensure_rng(rng)
        config = self.config
        llc_tiles = design.tiles_of_type(config, PEType.LLC)
        edge_non_llc = [
            t
            for t in self.grid.edge_tiles()
            if config.pe_type(design.pe_at(t)) is not PEType.LLC
        ]
        if not llc_tiles or not edge_non_llc:
            return None
        t1 = llc_tiles[int(rng.integers(len(llc_tiles)))]
        t2 = edge_non_llc[int(rng.integers(len(edge_non_llc)))]
        placement = list(design.placement)
        placement[t1], placement[t2] = placement[t2], placement[t1]
        return annotate_move(
            NocDesign(placement=tuple(placement), links=design.links),
            MoveDelta(kind="swap_llc", tiles_swapped=(t1, t2), parent_links=design.links),
        )

    def rewire_link(self, design: NocDesign, rng: RngLike = None) -> NocDesign | None:
        """Replace one link with a different feasible link of the same kind."""
        rng = ensure_rng(rng)
        config = self.config
        links = set(design.links)
        degrees = design.degrees()
        order = rng.permutation(design.num_links)
        for idx in order[: min(12, design.num_links)]:
            victim = design.links[int(idx)]
            kind = link_kind(victim, self.grid)
            pool = self._planar_pool if kind is LinkKind.PLANAR else self._vertical_pool
            if len(pool) <= sum(1 for l in links if link_kind(l, self.grid) is kind):
                continue
            for _ in range(16):
                replacement = pool[int(rng.integers(len(pool)))]
                if replacement in links or replacement == victim:
                    continue
                new_degrees = degrees.copy()
                new_degrees[victim.a] -= 1
                new_degrees[victim.b] -= 1
                new_degrees[replacement.a] += 1
                new_degrees[replacement.b] += 1
                if (
                    new_degrees[replacement.a] > config.max_router_degree
                    or new_degrees[replacement.b] > config.max_router_degree
                ):
                    continue
                new_links = set(links)
                new_links.discard(victim)
                new_links.add(replacement)
                candidate = NocDesign(placement=design.placement, links=tuple(sorted(new_links)))
                if is_connected(candidate):
                    return annotate_move(
                        candidate,
                        MoveDelta(
                            kind="rewire_link",
                            links_added=(replacement,),
                            links_removed=(victim,),
                            parent_links=design.links,
                        ),
                    )
        return None

    def add_remove_link_pair(self, design: NocDesign, rng: RngLike = None) -> NocDesign | None:
        """Alias of :meth:`rewire_link` kept for API compatibility with MOOS-style moves."""
        return self.rewire_link(design, rng)

    # ------------------------------------------------------------------ #
    # Traffic-aware moves (require a workload)
    # ------------------------------------------------------------------ #
    def pull_communicating_pair(self, design: NocDesign, rng: RngLike = None) -> NocDesign | None:
        """Move one endpoint of a heavily communicating PE pair next to the other.

        A PE pair is sampled with probability proportional to its traffic; the
        second PE is swapped onto a tile adjacent to the first PE's tile,
        shortening the pair's route while keeping the placement a permutation
        and LLCs on edge tiles.
        """
        rng = ensure_rng(rng)
        pair = self._sample_traffic_pair(rng)
        if pair is None:
            return None
        config = self.config
        grid = self.grid
        for _ in range(8):
            anchor_pe, moving_pe = pair if rng.random() < 0.5 else (pair[1], pair[0])
            anchor_tile = design.tile_of(anchor_pe)
            moving_tile = design.tile_of(moving_pe)
            if grid.manhattan_distance(anchor_tile, moving_tile) <= 1:
                pair = self._sample_traffic_pair(rng)
                if pair is None:
                    return None
                continue
            targets = grid.planar_neighbors(anchor_tile) + grid.vertical_neighbors(anchor_tile)
            rng.shuffle(targets)
            for target in targets:
                if target == moving_tile:
                    break
                displaced_pe = design.pe_at(target)
                if displaced_pe == anchor_pe:
                    continue
                moving_is_llc = config.pe_type(moving_pe) is PEType.LLC
                displaced_is_llc = config.pe_type(displaced_pe) is PEType.LLC
                if moving_is_llc and not grid.is_edge_tile(target):
                    continue
                if displaced_is_llc and not grid.is_edge_tile(moving_tile):
                    continue
                placement = list(design.placement)
                placement[target], placement[moving_tile] = placement[moving_tile], placement[target]
                return annotate_move(
                    NocDesign(placement=tuple(placement), links=design.links),
                    MoveDelta(
                        kind="pull_communicating_pair",
                        tiles_swapped=(target, moving_tile),
                        parent_links=design.links,
                    ),
                )
            pair = self._sample_traffic_pair(rng)
            if pair is None:
                return None
        return None

    def rewire_link_toward_traffic(self, design: NocDesign, rng: RngLike = None) -> NocDesign | None:
        """Replace a link with a direct link between a heavily communicating pair's tiles."""
        rng = ensure_rng(rng)
        config = self.config
        grid = self.grid
        degrees = design.degrees()
        links = design.link_set()
        for _ in range(8):
            pair = self._sample_traffic_pair(rng)
            if pair is None:
                return None
            tile_a = design.tile_of(pair[0])
            tile_b = design.tile_of(pair[1])
            if tile_a == tile_b:
                continue
            new_link = Link.make(tile_a, tile_b)
            if new_link in links or not is_feasible_link(new_link, config):
                continue
            if (
                degrees[new_link.a] >= config.max_router_degree
                or degrees[new_link.b] >= config.max_router_degree
            ):
                continue
            kind = link_kind(new_link, grid)
            same_kind = [l for l in design.links if link_kind(l, grid) is kind and l != new_link]
            order = rng.permutation(len(same_kind))
            for idx in order[: min(12, len(same_kind))]:
                victim = same_kind[int(idx)]
                new_links = set(links)
                new_links.discard(victim)
                new_links.add(new_link)
                candidate = NocDesign(placement=design.placement, links=tuple(sorted(new_links)))
                if is_connected(candidate):
                    return annotate_move(
                        candidate,
                        MoveDelta(
                            kind="rewire_link_toward_traffic",
                            links_added=(new_link,),
                            links_removed=(victim,),
                            parent_links=design.links,
                        ),
                    )
        return None


def mutate(
    design: NocDesign,
    config: PlatformConfig,
    rng: RngLike = None,
    strength: int = 1,
    generator: "MoveGenerator | None" = None,
) -> NocDesign:
    """Apply ``strength`` random moves to ``design`` (the EA mutation operator).

    Multi-move chains are re-annotated with one composite delta against the
    *original* design, so the routing engine repairs from a topology it has
    actually cached rather than from an unseen intermediate design.  Pass a
    ``generator`` to reuse a prepared :class:`MoveGenerator` (e.g. one with
    traffic-aware moves enabled) instead of building a blind one per call.
    """
    rng = ensure_rng(rng)
    generator = generator if generator is not None else MoveGenerator(config)
    current = design
    for _ in range(max(1, strength)):
        current = generator.random_neighbor(current, rng)
    if current is not design and max(1, strength) > 1:
        current = annotate_move(current, MoveDelta.between(design, current, "mutate"))
    return current
