"""Cross-design route cache with incremental updates (the RoutingEngine).

Per-design all-pairs Dijkstra dominates batch evaluation, yet most designs an
optimiser scores are one *move* away from a design it already scored: EA
children produced by ``swap_pe`` / ``swap_llc`` keep the parent's link set
unchanged, and ``rewire_link``-style moves touch only a couple of links.  The
:class:`RoutingEngine` exploits this by owning a route cache keyed on the
*link set alone* (routing never depends on the PE placement):

* **hit** — the design's link tuple is already cached; the full
  :class:`~repro.noc.routing.RoutingTables` (incidence matrices included) is
  shared read-only.  Every placement-only move lands here for free.
* **incremental repair** — the design carries a
  :class:`~repro.noc.design.MoveDelta` whose parent topology is cached and
  whose link delta is small; the parent's tables are repaired via
  :meth:`~repro.noc.routing.RoutingTables.incremental_update`, re-running
  Dijkstra only for sources whose route tree crosses a changed link.
* **miss** — anything else gets a fresh build.

Move deltas are *hints*, never trusted for correctness: the repair path
recomputes the actual link diff between the cached parent tables and the
design, so a stale or missing annotation can only cost a fresh build.  All
three outcomes produce bit-identical tables (see the routing-engine property
suite), which is what lets the evaluator's ``routing_cache`` flag toggle the
engine without perturbing any objective value.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.noc.design import NocDesign, move_delta_of
from repro.noc.geometry import Grid3D
from repro.noc.links import Link
from repro.noc.routing import RoutingTables


class RoutingEngine:
    """Link-set-keyed LRU cache of :class:`RoutingTables` with delta repair.

    Parameters
    ----------
    grid:
        The tile grid shared by every design the engine serves.
    cache_size:
        Maximum number of cached topologies (LRU eviction; must be >= 1).
    incremental:
        When False, cache misses always rebuild from scratch even when a
        usable parent delta is available (hits still apply).
    max_repair_fraction:
        A delta changing more than this fraction of the design's links falls
        back to a fresh build — with that many changed links most sources are
        affected anyway, so the repair bookkeeping would only add overhead.
        ``0.0`` disables incremental repairs entirely (every non-hit is a
        fresh build); any positive fraction always admits elementary
        two-link rewires.
    """

    def __init__(
        self,
        grid: Grid3D,
        cache_size: int = 256,
        incremental: bool = True,
        max_repair_fraction: float = 0.5,
    ):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if not (0.0 <= max_repair_fraction <= 1.0):
            raise ValueError("max_repair_fraction must lie in [0, 1]")
        self.grid = grid
        self.cache_size = int(cache_size)
        self.incremental = incremental
        self.max_repair_fraction = max_repair_fraction
        self._cache: OrderedDict[tuple[Link, ...], RoutingTables] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.incremental_repairs = 0

    def __len__(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def tables(self, design: NocDesign) -> RoutingTables:
        """Routing tables for ``design``, cached across designs by link set.

        The returned tables are shared: they must be treated as read-only
        (all public accessors already return read-only views).
        """
        key = design.links
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        tables = self._build(design)
        self._cache[key] = tables
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return tables

    def tables_for_links(self, links: tuple[Link, ...]) -> "RoutingTables | None":
        """The cached tables for a link tuple, or None (no build, no counting)."""
        return self._cache.get(links)

    def _build(self, design: NocDesign) -> RoutingTables:
        delta = move_delta_of(design)
        if (
            self.incremental
            and self.max_repair_fraction > 0.0
            and delta is not None
            and delta.parent_links != design.links
        ):
            parent = self._cache.get(delta.parent_links)
            if parent is not None:
                changed = len(frozenset(parent.links).symmetric_difference(design.links))
                # Elementary rewires change 2 links; never price them out on
                # small designs where the fraction alone would round to < 2.
                budget = max(2, int(self.max_repair_fraction * max(1, design.num_links)))
                if changed <= budget:
                    self.incremental_repairs += 1
                    return parent.incremental_update(design.links)
        self.misses += 1
        return RoutingTables(design, self.grid)

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def requests(self) -> int:
        """Total number of :meth:`tables` calls served."""
        return self.hits + self.misses + self.incremental_repairs

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cache without any Dijkstra."""
        requests = self.requests
        return self.hits / requests if requests else 0.0

    def stats(self) -> dict[str, "int | float"]:
        """Counters snapshot (used by evaluator reports and campaign shards)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "incremental_repairs": self.incremental_repairs,
            "requests": self.requests,
            "hit_rate": self.hit_rate,
            "cached_topologies": len(self._cache),
        }

    def clear(self) -> None:
        """Drop every cached topology (counters are kept)."""
        self._cache.clear()
