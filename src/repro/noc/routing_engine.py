"""Cross-design route cache with incremental updates (the RoutingEngine).

Per-design all-pairs Dijkstra dominates batch evaluation, yet most designs an
optimiser scores are one *move* away from a design it already scored: EA
children produced by ``swap_pe`` / ``swap_llc`` keep the parent's link set
unchanged, and ``rewire_link``-style moves touch only a couple of links.  The
:class:`RoutingEngine` exploits this by owning a route cache keyed on the
*link set alone* (routing never depends on the PE placement):

* **hit** — the design's link tuple is already cached; the full
  :class:`~repro.noc.routing.RoutingTables` (incidence matrices included) is
  shared read-only.  Every placement-only move lands here for free.
* **incremental repair** — the design carries a
  :class:`~repro.noc.design.MoveDelta` whose parent topology is cached and
  whose link delta is small; the parent's tables are repaired via
  :meth:`~repro.noc.routing.RoutingTables.incremental_update`, re-running
  Dijkstra only for sources whose route tree crosses a changed link.
* **miss** — anything else gets a fresh build.

Move deltas are *hints*, never trusted for correctness: the repair path
recomputes the actual link diff between the cached parent tables and the
design, so a stale or missing annotation can only cost a fresh build.  All
three outcomes produce bit-identical tables (see the routing-engine property
suite), which is what lets the evaluator's ``routing_cache`` flag toggle the
engine without perturbing any objective value.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.noc.design import NocDesign, move_delta_of
from repro.noc.geometry import Grid3D
from repro.noc.links import Link
from repro.noc.route_store import RouteStore
from repro.noc.routing import RoutingTables


class RoutingEngine:
    """Link-set-keyed LRU cache of :class:`RoutingTables` with delta repair.

    Parameters
    ----------
    grid:
        The tile grid shared by every design the engine serves.
    cache_size:
        Maximum number of cached topologies (LRU eviction; must be >= 1).
    incremental:
        When False, cache misses always rebuild from scratch even when a
        usable parent delta is available (hits still apply).
    max_repair_fraction:
        A delta changing more than this fraction of the design's links falls
        back to a fresh build — with that many changed links most sources are
        affected anyway, so the repair bookkeeping would only add overhead.
        ``0.0`` disables incremental repairs entirely (every non-hit is a
        fresh build); any positive fraction always admits elementary
        two-link rewires.
    store:
        Optional :class:`~repro.noc.route_store.RouteStore` consulted on
        cache misses before rebuilding, and fed with fresh builds.  The store
        crosses process boundaries (evaluation-pool workers, campaign cells),
        turning each sibling process's cold build into a single file read;
        loaded tables are bit-identical to fresh builds, so attaching a store
        never changes a route.
    """

    def __init__(
        self,
        grid: Grid3D,
        cache_size: int = 256,
        incremental: bool = True,
        max_repair_fraction: float = 0.5,
        store: "RouteStore | None" = None,
    ):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if not (0.0 <= max_repair_fraction <= 1.0):
            raise ValueError("max_repair_fraction must lie in [0, 1]")
        self.grid = grid
        self.cache_size = int(cache_size)
        self.incremental = incremental
        self.max_repair_fraction = max_repair_fraction
        self._store = store
        self._cache: OrderedDict[tuple[Link, ...], RoutingTables] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.incremental_repairs = 0
        self.store_hits = 0
        self.store_saves = 0

    def __len__(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def tables(self, design: NocDesign) -> RoutingTables:
        """Routing tables for ``design``, cached across designs by link set.

        The returned tables are shared: they must be treated as read-only
        (all public accessors already return read-only views).
        """
        key = design.links
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        tables = self._build(design)
        self._remember(key, tables)
        return tables

    def _remember(self, key: tuple[Link, ...], tables: RoutingTables) -> None:
        self._cache[key] = tables
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def tables_for_links(self, links: tuple[Link, ...]) -> "RoutingTables | None":
        """The cached tables for a link tuple, or None (no build, no counting)."""
        return self._cache.get(links)

    def attach_store(self, store: "RouteStore | None") -> None:
        """Attach (or detach, with ``None``) a disk-backed warm-start store."""
        self._store = store

    def share_to_store(self, links: tuple[Link, ...]) -> bool:
        """Persist already-cached tables for a link tuple to the store.

        Used to prime the store with a parent topology before fanning its
        children out to pool workers, so the workers can repair incrementally
        instead of cold-building.  True when a new entry was written.
        """
        if self._store is None:
            return False
        cached = self._cache.get(links)
        if cached is None:
            return False
        if self._store.save(cached):
            self.store_saves += 1
            return True
        return False

    def _build(self, design: NocDesign) -> RoutingTables:
        delta = move_delta_of(design)
        if (
            self.incremental
            and self.max_repair_fraction > 0.0
            and delta is not None
            and delta.parent_links != design.links
        ):
            parent = self._cache.get(delta.parent_links)
            if parent is None and self._store is not None:
                # A sibling process may have solved the parent already; a
                # store hit turns this miss into an incremental repair.
                parent = self._store.load(
                    delta.parent_links, design.num_tiles, self.grid
                )
                if parent is not None:
                    self.store_hits += 1
                    self._remember(delta.parent_links, parent)
            if parent is not None:
                changed = len(frozenset(parent.links).symmetric_difference(design.links))
                # Elementary rewires change 2 links; never price them out on
                # small designs where the fraction alone would round to < 2.
                budget = max(2, int(self.max_repair_fraction * max(1, design.num_links)))
                if changed <= budget:
                    self.incremental_repairs += 1
                    return parent.incremental_update(design.links)
        self.misses += 1
        if self._store is not None:
            stored = self._store.load(design.links, design.num_tiles, self.grid)
            if stored is not None:
                self.store_hits += 1
                return stored
        tables = RoutingTables(design, self.grid)
        if self._store is not None and self._store.save(tables):
            self.store_saves += 1
        return tables

    # ------------------------------------------------------------------ #
    # Bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def requests(self) -> int:
        """Total number of :meth:`tables` calls served."""
        return self.hits + self.misses + self.incremental_repairs

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the cache without any Dijkstra."""
        requests = self.requests
        return self.hits / requests if requests else 0.0

    def stats(self) -> dict[str, "int | float"]:
        """Counters snapshot (used by evaluator reports and campaign shards).

        Store counters appear only when a warm-start store is attached, so
        store-less engines keep their historical stats shape.
        """
        counters: dict[str, "int | float"] = {
            "hits": self.hits,
            "misses": self.misses,
            "incremental_repairs": self.incremental_repairs,
            "requests": self.requests,
            "hit_rate": self.hit_rate,
            "cached_topologies": len(self._cache),
        }
        if self._store is not None:
            counters["store_hits"] = self.store_hits
            counters["store_saves"] = self.store_saves
        return counters

    def clear(self) -> None:
        """Drop every cached topology (counters are kept)."""
        self._cache.clear()


class RoutingEnginePool:
    """Grid-keyed pool of shared :class:`RoutingEngine` instances.

    A campaign runs many cells (algorithm x application x scenario) over the
    same platform, and every cell re-routes topologies its siblings already
    solved — the initial random population alone is a fresh all-pairs build
    per design, per cell.  Handing every inline cell the *same* engine (one
    per grid, via this pool) turns those rebuilds into cache hits.  Sharing
    is safe because cached tables are read-only and bit-identical to fresh
    builds; only the hit/miss counters can differ between a shared and a
    cold-start campaign.

    Per-cell accounting still works: the evaluator snapshots the engine's
    counters at construction and reports deltas, so each shard records only
    its own traffic (see ``ObjectiveEvaluator.routing_cache_stats``).

    Parameters
    ----------
    cache_size:
        LRU capacity of every engine the pool creates.
    store:
        Optional :class:`~repro.noc.route_store.RouteStore` attached to every
        engine, warm-starting even the pool's first cell from a previous
        campaign run's builds.
    """

    def __init__(self, cache_size: int = 256, store: "RouteStore | None" = None):
        self.cache_size = int(cache_size)
        self._store = store
        self._engines: dict[tuple[int, int], RoutingEngine] = {}

    def __len__(self) -> int:
        return len(self._engines)

    def engine_for(self, grid: Grid3D) -> RoutingEngine:
        """The shared engine for a tile grid (created on first request)."""
        key = (grid.n, grid.layers)
        engine = self._engines.get(key)
        if engine is None:
            engine = RoutingEngine(grid, cache_size=self.cache_size, store=self._store)
            self._engines[key] = engine
        return engine

    def stats(self) -> dict[str, "int | float"]:
        """Pool-wide counter totals across every engine (sorted grid order)."""
        totals: dict[str, "int | float"] = {
            "engines": len(self._engines),
            "hits": 0,
            "misses": 0,
            "incremental_repairs": 0,
            "requests": 0,
            "cached_topologies": 0,
        }
        for key in sorted(self._engines):
            stats = self._engines[key].stats()
            for name in ("hits", "misses", "incremental_repairs", "requests", "cached_topologies"):
                totals[name] += stats[name]
            for name in ("store_hits", "store_saves"):
                if name in stats:
                    totals[name] = totals.get(name, 0) + stats[name]
        requests = totals["requests"]
        totals["hit_rate"] = totals["hits"] / requests if requests else 0.0
        return totals
